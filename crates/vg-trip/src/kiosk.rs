//! The registration kiosk: real and fake credential issuance (Fig 9).
//!
//! The kiosk sits in a privacy booth. For a **real** credential it follows
//! the sound Σ-protocol order — generate the credential, encrypt its public
//! key into the tag c_pc, *print the commitment first*, accept an envelope
//! (the challenge), then print the response. For a **fake** credential the
//! voter hands over the envelope *first*, so the kiosk can forge a
//! transcript for a statement it has no witness for. The only evidence of
//! which happened is the order of steps the voter observed in the booth;
//! the printed artifacts are indistinguishable (§4.3).
//!
//! [`KioskBehavior::StealsRealCredential`] models the integrity adversary
//! of §5.1: a compromised kiosk that runs the fake-credential process while
//! *claiming* to issue a real credential, keeping the real key for itself.
//! The observable difference — the kiosk asks for the envelope before
//! anything is printed — is exactly what the usability study measured
//! voters' ability to detect (§7.5).
//!
//! # Concurrency audit (kiosk-fleet hardening)
//!
//! [`Kiosk::begin_session`] hands out a [`KioskSession`] that borrows the
//! kiosk for the whole ceremony, and under a [`crate::fleet::KioskFleet`]
//! many sessions of *different* kiosks run on worker threads at once. The
//! invariants that keep this sound:
//!
//! - every per-ceremony mutable value (pending credential, used-challenge
//!   set, event trace) lives in the [`KioskSession`], never in the
//!   [`Kiosk`], so concurrent sessions cannot observe each other;
//! - the only shared mutable state a session touches is the kiosk's event
//!   **journal**, and it is appended exactly once, atomically, when the
//!   session is sealed by [`KioskSession::finish`] — traces from two
//!   sessions can therefore never interleave, and
//!   [`crate::protocol::trace_shows_honest_real_flow`] always judges a
//!   contiguous per-session trace;
//! - the fleet schedules each *individual* kiosk's sessions strictly
//!   sequentially (a booth serves one voter at a time), so a kiosk's
//!   journal order is its queue order, independent of thread scheduling.

use std::collections::HashSet;
use std::sync::Mutex;

use vg_crypto::chaum_pedersen::{forge_transcript, DlEqStatement, Prover};
use vg_crypto::drbg::Rng;
use vg_crypto::elgamal::Ciphertext;
use vg_crypto::schnorr::{NonceCoupon, SigningKey};
use vg_crypto::sync::lock_recover;
use vg_crypto::{CompressedPoint, EdwardsPoint, Scalar};
use vg_ledger::{RegistrationRecord, VoterId};

use crate::ceremony::{FakePrecursor, RealPrecursor};
use crate::error::TripError;
use crate::materials::{
    commit_message, response_message, CheckInTicket, CheckOutQr, CommitQr, Envelope, Receipt,
    ResponseQr, Symbol,
};
use crate::official::verify_ticket;

/// Honest or compromised kiosk behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KioskBehavior {
    /// Follows the protocol.
    Honest,
    /// Uses the fake-credential process for the "real" credential, keeping
    /// the real key: the integrity adversary of §5.1.
    StealsRealCredential,
}

/// A registration kiosk.
pub struct Kiosk {
    key: SigningKey,
    mac_key: [u8; 32],
    authority_pk: EdwardsPoint,
    behavior: KioskBehavior,
    /// Sealed per-session event traces, in the order sessions finished on
    /// this kiosk (see the module-level concurrency audit).
    journal: Mutex<Vec<SessionTrace>>,
}

/// One sealed session's observable trace, as recorded in a kiosk journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTrace {
    /// The session's voter.
    pub voter_id: VoterId,
    /// The booth events, in order.
    pub events: Vec<KioskEvent>,
}

/// Observable kiosk events, in booth order. The voter's mental model of
/// the correct sequence is what detects a compromised kiosk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KioskEvent {
    /// The session began (check-in ticket scanned).
    SessionStarted,
    /// The kiosk printed a symbol and the commit QR (real flow step 2).
    PrintedSymbolAndCommit {
        /// The symbol the voter must match.
        symbol: Symbol,
    },
    /// The kiosk scanned an envelope.
    ScannedEnvelope {
        /// The scanned envelope's symbol.
        symbol: Symbol,
    },
    /// The kiosk printed the check-out and response QRs (real flow step 4).
    PrintedCheckoutAndResponse,
    /// The kiosk printed an entire receipt at once (fake flow step 2).
    PrintedFullReceipt,
    /// The kiosk rejected an envelope whose symbol did not match.
    RejectedEnvelope,
}

/// State of a real-credential issuance between commit and challenge.
pub struct PendingRealCredential {
    credential: SigningKey,
    elgamal_secret: Scalar,
    c_pc: Ciphertext,
    prover: Prover,
    commit_qr: CommitQr,
    symbol: Symbol,
    /// Precomputed signing coupons for (σ_kot, σ_kr) when the session was
    /// started from ceremony-pool material; `None` on the classic
    /// rng-driven path, which signs deterministically.
    coupons: Option<(NonceCoupon, NonceCoupon)>,
}

impl PendingRealCredential {
    /// The symbol printed above the commit (the voter matches an envelope
    /// against it).
    pub fn symbol(&self) -> Symbol {
        self.symbol
    }

    /// The printed commit QR.
    pub fn commit_qr(&self) -> &CommitQr {
        &self.commit_qr
    }
}

/// A credential stolen by a compromised kiosk (test/experiment hook).
pub struct StolenCredential {
    /// The victim.
    pub voter_id: VoterId,
    /// The real credential key the kiosk retained.
    pub key: SigningKey,
}

/// An in-booth kiosk session for one checked-in voter.
pub struct KioskSession<'k> {
    kiosk: &'k Kiosk,
    voter_id: VoterId,
    /// Set once the real credential has been issued: (c_pc, σ_kot).
    checkout: Option<CheckOutQr>,
    pending: Option<PendingRealCredential>,
    used_challenges: HashSet<[u8; 32]>,
    /// The observable event trace.
    pub events: Vec<KioskEvent>,
}

impl Kiosk {
    /// Creates a kiosk holding the registrar MAC key and the authority's
    /// collective encryption key.
    pub fn new(
        mac_key: [u8; 32],
        authority_pk: EdwardsPoint,
        behavior: KioskBehavior,
        rng: &mut dyn Rng,
    ) -> Self {
        Self {
            key: SigningKey::generate(rng),
            mac_key,
            authority_pk,
            behavior,
            journal: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the sealed session traces recorded on this kiosk.
    pub fn journal(&self) -> Vec<SessionTrace> {
        lock_recover(&self.journal).clone()
    }

    /// The kiosk's public key (appears on receipts and the ledger).
    pub fn public_key(&self) -> CompressedPoint {
        self.key.public_key_compressed()
    }

    /// The configured behaviour.
    pub fn behavior(&self) -> KioskBehavior {
        self.behavior
    }

    /// Issues registrar evidence for a delegation target's public key
    /// (Appendix C.3): a σ_kr-style signature letting the party's ballots
    /// pass the registrar-issuance admission check. The (e, r) pair is a
    /// fresh synthetic binder — only its hash is signed, exactly as for
    /// ordinary credentials.
    pub fn issue_party_evidence(
        &self,
        party_pk: &CompressedPoint,
        rng: &mut dyn Rng,
    ) -> ([u8; 32], vg_crypto::schnorr::Signature, Scalar, Scalar) {
        let e = rng.scalar();
        let r = rng.scalar();
        let h = crate::materials::er_hash(&e, &r);
        let sig = self
            .key
            .sign(&crate::materials::response_message_from_hash(party_pk, &h));
        (h, sig, e, r)
    }

    /// Starts a session by validating the check-in ticket (Fig 8, kiosk
    /// side).
    pub fn begin_session(&self, ticket: &CheckInTicket) -> Result<KioskSession<'_>, TripError> {
        verify_ticket(&self.mac_key, ticket)?;
        Ok(KioskSession {
            kiosk: self,
            voter_id: ticket.voter_id,
            checkout: None,
            pending: None,
            used_challenges: HashSet::new(),
            events: vec![KioskEvent::SessionStarted],
        })
    }

    fn sign_checkout(&self, voter_id: VoterId, c_pc: &Ciphertext) -> CheckOutQr {
        let kiosk_sig = self
            .key
            .sign(&RegistrationRecord::kiosk_message(voter_id, c_pc));
        CheckOutQr {
            voter_id,
            c_pc: *c_pc,
            kiosk_pk: self.public_key(),
            kiosk_sig,
        }
    }
}

impl KioskSession<'_> {
    /// The session's voter.
    pub fn voter_id(&self) -> VoterId {
        self.voter_id
    }

    /// Whether the real credential has been issued.
    pub fn real_issued(&self) -> bool {
        self.checkout.is_some()
    }

    /// Real credential, step 2 (Fig 9a lines 2–8): generate the credential
    /// and the tag c_pc, compute the Σ-protocol commitment, print symbol +
    /// commit QR.
    ///
    /// The voter observes [`KioskEvent::PrintedSymbolAndCommit`] *before*
    /// being asked for an envelope — the soundness-critical ordering.
    pub fn begin_real_credential(
        &mut self,
        rng: &mut dyn Rng,
    ) -> Result<&PendingRealCredential, TripError> {
        if self.checkout.is_some() || self.pending.is_some() {
            return Err(TripError::WrongPhysicalState);
        }
        // (c_sk, c_pk) ← Sig.KGen (line 2).
        let credential = SigningKey::generate(rng);
        let c_pk = credential.verifying_key().0;
        // x ←$ Z_q; X ← A_pk^x; c_pc ← (g^x, X·c_pk) (lines 3–4).
        let x = rng.scalar();
        let big_x = self.kiosk.authority_pk * x;
        let c_pc = Ciphertext {
            c1: EdwardsPoint::mul_base(&x),
            c2: big_x + c_pk,
        };
        // ZKP commit (line 5): Y = (g^y, A_pk^y).
        let stmt = DlEqStatement {
            g1: EdwardsPoint::basepoint(),
            y1: c_pc.c1,
            g2: self.kiosk.authority_pk,
            y2: big_x,
        };
        let prover = Prover::commit(&stmt, rng);
        let commit = prover.commitment();
        // σ_kc ← Sig.Sign(K_sk, V_id ‖ c_pc ‖ Y_c) (line 6).
        let kiosk_sig = self
            .kiosk
            .key
            .sign(&commit_message(self.voter_id, &c_pc, &commit));
        let commit_qr = CommitQr {
            voter_id: self.voter_id,
            c_pc,
            commit,
            kiosk_sig,
        };
        let symbol = Symbol::random(rng);
        self.events
            .push(KioskEvent::PrintedSymbolAndCommit { symbol });
        self.pending = Some(PendingRealCredential {
            credential,
            elgamal_secret: x,
            c_pc,
            prover,
            commit_qr,
            symbol,
            coupons: None,
        });
        Ok(self.pending.as_ref().expect("just set"))
    }

    /// Real credential, step 2, from precomputed ceremony-pool material:
    /// identical protocol flow and event trace as
    /// [`KioskSession::begin_real_credential`], but all scalar
    /// multiplications (credential key, tag, Σ-commitment) happened before
    /// the voter arrived, and the printing step only signs — via a
    /// precomputed coupon, so it is hash-only.
    ///
    /// The soundness-critical ordering is preserved: the precursor was
    /// derived without reference to any envelope challenge, and the commit
    /// is printed before an envelope is accepted.
    pub fn begin_real_from(&mut self, pre: RealPrecursor) -> Result<Symbol, TripError> {
        if self.checkout.is_some() || self.pending.is_some() {
            return Err(TripError::WrongPhysicalState);
        }
        let RealPrecursor {
            credential,
            elgamal_secret,
            c_pc,
            nonce,
            commit,
            symbol,
            commit_coupon,
            checkout_coupon,
            response_coupon,
        } = pre;
        let kiosk_sig = self.kiosk.key.sign_with_coupon(
            &commit_message(self.voter_id, &c_pc, &commit),
            commit_coupon,
        );
        let commit_qr = CommitQr {
            voter_id: self.voter_id,
            c_pc,
            commit,
            kiosk_sig,
        };
        self.events
            .push(KioskEvent::PrintedSymbolAndCommit { symbol });
        self.pending = Some(PendingRealCredential {
            credential,
            elgamal_secret,
            c_pc,
            prover: Prover::from_parts(nonce, commit),
            commit_qr,
            symbol,
            coupons: Some((checkout_coupon, response_coupon)),
        });
        Ok(symbol)
    }

    /// Real credential, step 4 (Fig 9a lines 9–18): scan the voter's
    /// envelope, compute the response, print the check-out and response
    /// QRs.
    ///
    /// Rejects an envelope with the wrong symbol (the voter keeps their
    /// envelope and picks a matching one, §4.4) or a challenge already
    /// used in this session.
    pub fn finish_real_credential(&mut self, envelope: &Envelope) -> Result<Receipt, TripError> {
        let pending = self.pending.as_ref().ok_or(TripError::WrongPhysicalState)?;
        if envelope.symbol != pending.symbol {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::WrongSymbol);
        }
        if !self.used_challenges.insert(envelope.challenge.to_bytes()) {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::EnvelopeReused);
        }
        let pending = self.pending.take().expect("checked above");
        self.events.push(KioskEvent::ScannedEnvelope {
            symbol: envelope.symbol,
        });

        // r ← y − e·x (line 12).
        let transcript = pending
            .prover
            .respond(&pending.elgamal_secret, &envelope.challenge);
        let c_pk = pending.credential.public_key_compressed();
        // σ_kot, σ_kr (lines 13–14) — hash-only when the session started
        // from pool material, deterministic signing otherwise.
        let (checkout_qr, response_sig) = match pending.coupons {
            Some((checkout_coupon, response_coupon)) => {
                let kiosk_sig = self.kiosk.key.sign_with_coupon(
                    &RegistrationRecord::kiosk_message(self.voter_id, &pending.c_pc),
                    checkout_coupon,
                );
                let checkout_qr = CheckOutQr {
                    voter_id: self.voter_id,
                    c_pc: pending.c_pc,
                    kiosk_pk: self.kiosk.public_key(),
                    kiosk_sig,
                };
                let response_sig = self.kiosk.key.sign_with_coupon(
                    &response_message(&c_pk, &envelope.challenge, &transcript.response),
                    response_coupon,
                );
                (checkout_qr, response_sig)
            }
            None => (
                self.kiosk.sign_checkout(self.voter_id, &pending.c_pc),
                self.kiosk.key.sign(&response_message(
                    &c_pk,
                    &envelope.challenge,
                    &transcript.response,
                )),
            ),
        };
        let response_qr = ResponseQr {
            credential_sk: pending.credential.secret(),
            response: transcript.response,
            kiosk_pk: self.kiosk.public_key(),
            kiosk_sig: response_sig,
        };
        self.events.push(KioskEvent::PrintedCheckoutAndResponse);
        self.checkout = Some(checkout_qr.clone());
        Ok(Receipt {
            symbol: pending.symbol,
            commit_qr: pending.commit_qr,
            checkout_qr,
            response_qr,
        })
    }

    /// Fake credential (Fig 9b): the envelope arrives first, the kiosk
    /// forges an unsound transcript and prints the whole receipt at once.
    ///
    /// Requires the real credential to exist (the fake shares its c_pc and
    /// check-out ticket).
    pub fn create_fake_credential(
        &mut self,
        envelope: &Envelope,
        rng: &mut dyn Rng,
    ) -> Result<Receipt, TripError> {
        let checkout = self
            .checkout
            .clone()
            .ok_or(TripError::RealCredentialMissing)?;
        if !self.used_challenges.insert(envelope.challenge.to_bytes()) {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::EnvelopeReused);
        }
        self.events.push(KioskEvent::ScannedEnvelope {
            symbol: envelope.symbol,
        });
        let receipt = self.forge_receipt(&checkout, envelope, envelope.symbol, rng);
        self.events.push(KioskEvent::PrintedFullReceipt);
        Ok(receipt)
    }

    /// Fake credential from precomputed material: the same flow and event
    /// trace as [`KioskSession::create_fake_credential`], but the fake key
    /// pair and the challenge-independent halves y·g₁, y·g₂ of the forged
    /// commitment come from the pool, leaving two scalar multiplications
    /// (the challenge-dependent halves) plus hash-only coupon signing for
    /// the in-booth step.
    pub fn create_fake_from(
        &mut self,
        pre: FakePrecursor,
        envelope: &Envelope,
    ) -> Result<Receipt, TripError> {
        let checkout = self
            .checkout
            .clone()
            .ok_or(TripError::RealCredentialMissing)?;
        if !self.used_challenges.insert(envelope.challenge.to_bytes()) {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::EnvelopeReused);
        }
        self.events.push(KioskEvent::ScannedEnvelope {
            symbol: envelope.symbol,
        });
        let receipt = self.forge_receipt_from(&checkout, envelope, envelope.symbol, pre);
        self.events.push(KioskEvent::PrintedFullReceipt);
        Ok(receipt)
    }

    /// The compromised-kiosk "real" credential from pool material: the
    /// precomputing adversary of the fleet setting. Event trace and
    /// artifacts match [`KioskSession::malicious_real_credential`]; the
    /// stolen key is the precursor's real credential.
    pub fn malicious_real_from(
        &mut self,
        real: RealPrecursor,
        spare: FakePrecursor,
        envelope: &Envelope,
    ) -> Result<(Receipt, StolenCredential), TripError> {
        if self.kiosk.behavior != KioskBehavior::StealsRealCredential {
            return Err(TripError::WrongPhysicalState);
        }
        if self.checkout.is_some() {
            return Err(TripError::WrongPhysicalState);
        }
        if !self.used_challenges.insert(envelope.challenge.to_bytes()) {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::EnvelopeReused);
        }
        self.events.push(KioskEvent::ScannedEnvelope {
            symbol: envelope.symbol,
        });

        // The kiosk keeps the precomputed REAL credential for itself.
        let RealPrecursor {
            credential,
            c_pc,
            checkout_coupon,
            ..
        } = real;
        let kiosk_sig = self.kiosk.key.sign_with_coupon(
            &RegistrationRecord::kiosk_message(self.voter_id, &c_pc),
            checkout_coupon,
        );
        let checkout = CheckOutQr {
            voter_id: self.voter_id,
            c_pc,
            kiosk_pk: self.kiosk.public_key(),
            kiosk_sig,
        };
        self.checkout = Some(checkout.clone());
        // The voter receives a forged (fake) credential presented as real.
        let receipt = self.forge_receipt_from(&checkout, envelope, envelope.symbol, spare);
        self.events.push(KioskEvent::PrintedFullReceipt);
        Ok((
            receipt,
            StolenCredential {
                voter_id: self.voter_id,
                key: credential,
            },
        ))
    }

    /// The compromised-kiosk "real" credential (integrity adversary): runs
    /// the fake-credential process while the screen claims a real
    /// credential is being created, and keeps the real key.
    ///
    /// Returns the receipt handed to the voter and the stolen credential.
    /// The event trace shows [`KioskEvent::ScannedEnvelope`] *before* any
    /// printing — the tell a trained voter can notice (§7.5).
    pub fn malicious_real_credential(
        &mut self,
        envelope: &Envelope,
        rng: &mut dyn Rng,
    ) -> Result<(Receipt, StolenCredential), TripError> {
        if self.kiosk.behavior != KioskBehavior::StealsRealCredential {
            return Err(TripError::WrongPhysicalState);
        }
        if self.checkout.is_some() {
            return Err(TripError::WrongPhysicalState);
        }
        if !self.used_challenges.insert(envelope.challenge.to_bytes()) {
            self.events.push(KioskEvent::RejectedEnvelope);
            return Err(TripError::EnvelopeReused);
        }
        self.events.push(KioskEvent::ScannedEnvelope {
            symbol: envelope.symbol,
        });

        // The kiosk generates the REAL credential and keeps it.
        let real = SigningKey::generate(rng);
        let x = rng.scalar();
        let c_pc = Ciphertext {
            c1: EdwardsPoint::mul_base(&x),
            c2: self.kiosk.authority_pk * x + real.verifying_key().0,
        };
        let checkout = self.kiosk.sign_checkout(self.voter_id, &c_pc);
        self.checkout = Some(checkout.clone());
        // The voter receives a forged (fake) credential presented as real.
        let receipt = self.forge_receipt(&checkout, envelope, envelope.symbol, rng);
        self.events.push(KioskEvent::PrintedFullReceipt);
        Ok((
            receipt,
            StolenCredential {
                voter_id: self.voter_id,
                key: real,
            },
        ))
    }

    /// Extreme-coercion delegation (Appendix C.3): instead of a real
    /// credential, the voter delegates their voting rights to a well-known
    /// entity (e.g. a political party) whose public key the kiosk encrypts
    /// as this voter's credential tag. The voter then creates only fake
    /// credentials and leaves the booth holding nothing a coercer could
    /// find — at the cost of trusting the kiosk, which is unavoidable in
    /// this scenario.
    ///
    /// The kiosk never needs the party's private key (it encrypts the
    /// public key), so the party's credential is never exposed to the
    /// registrar.
    pub fn delegate_to_party(
        &mut self,
        party_pk: &EdwardsPoint,
        rng: &mut dyn Rng,
    ) -> Result<CheckOutQr, TripError> {
        if self.checkout.is_some() || self.pending.is_some() {
            return Err(TripError::WrongPhysicalState);
        }
        let x = rng.scalar();
        let c_pc = Ciphertext {
            c1: EdwardsPoint::mul_base(&x),
            c2: self.kiosk.authority_pk * x + *party_pk,
        };
        let checkout = self.kiosk.sign_checkout(self.voter_id, &c_pc);
        self.checkout = Some(checkout.clone());
        self.events.push(KioskEvent::PrintedCheckoutAndResponse);
        Ok(checkout)
    }

    /// Seals the session: the full event trace is appended to the kiosk's
    /// journal in one atomic step (so traces from concurrent sessions on
    /// other threads can never interleave with it) and returned to the
    /// caller.
    pub fn finish(self) -> Vec<KioskEvent> {
        lock_recover(&self.kiosk.journal).push(SessionTrace {
            voter_id: self.voter_id,
            events: self.events.clone(),
        });
        self.events
    }

    /// [`forge_receipt`](Self::forge_receipt) from a precomputed forge
    /// precursor: Y = (y·g₁ + e·C₁, y·g₂ + e·X̃) with the y-halves already
    /// evaluated, and coupon-backed signatures.
    fn forge_receipt_from(
        &self,
        checkout: &CheckOutQr,
        envelope: &Envelope,
        symbol: Symbol,
        pre: FakePrecursor,
    ) -> Receipt {
        let FakePrecursor {
            credential: fake,
            forge_nonce,
            g1y,
            g2y,
            commit_coupon,
            response_coupon,
        } = pre;
        let fake_pk = fake.verifying_key().0;
        // X̃ ← C₂ − c̃_pk: no witness exists for this statement.
        let x_tilde = checkout.c_pc.c2 - fake_pk;
        let commit = vg_crypto::chaum_pedersen::Commitment {
            a1: g1y + checkout.c_pc.c1 * envelope.challenge,
            a2: g2y + x_tilde * envelope.challenge,
        };
        let kiosk_sig = self.kiosk.key.sign_with_coupon(
            &commit_message(checkout.voter_id, &checkout.c_pc, &commit),
            commit_coupon,
        );
        let response_sig = self.kiosk.key.sign_with_coupon(
            &response_message(
                &fake.public_key_compressed(),
                &envelope.challenge,
                &forge_nonce,
            ),
            response_coupon,
        );
        Receipt {
            symbol,
            commit_qr: CommitQr {
                voter_id: checkout.voter_id,
                c_pc: checkout.c_pc,
                commit,
                kiosk_sig,
            },
            checkout_qr: checkout.clone(),
            response_qr: ResponseQr {
                credential_sk: fake.secret(),
                response: forge_nonce,
                kiosk_pk: self.kiosk.public_key(),
                kiosk_sig: response_sig,
            },
        }
    }

    /// Forges a receipt whose transcript "proves" that `checkout.c_pc`
    /// encrypts a freshly generated key (Fig 9b lines 2–14).
    fn forge_receipt(
        &self,
        checkout: &CheckOutQr,
        envelope: &Envelope,
        symbol: Symbol,
        rng: &mut dyn Rng,
    ) -> Receipt {
        // (c̃_sk, c̃_pk) ← Sig.KGen (line 2).
        let fake = SigningKey::generate(rng);
        let fake_pk = fake.verifying_key().0;
        // X̃ ← C₂ − c̃_pk (line 4): no witness exists for this statement.
        let x_tilde = checkout.c_pc.c2 - fake_pk;
        let stmt = DlEqStatement {
            g1: EdwardsPoint::basepoint(),
            y1: checkout.c_pc.c1,
            g2: self.kiosk.authority_pk,
            y2: x_tilde,
        };
        // Forge with the known challenge (lines 8–10).
        let transcript = forge_transcript(&stmt, &envelope.challenge, rng);
        // σ_kc, σ_kr (lines 11–12).
        let kiosk_sig = self.kiosk.key.sign(&commit_message(
            checkout.voter_id,
            &checkout.c_pc,
            &transcript.commit,
        ));
        let response_sig = self.kiosk.key.sign(&response_message(
            &fake.public_key_compressed(),
            &envelope.challenge,
            &transcript.response,
        ));
        Receipt {
            symbol,
            commit_qr: CommitQr {
                voter_id: checkout.voter_id,
                c_pc: checkout.c_pc,
                commit: transcript.commit,
                kiosk_sig,
            },
            checkout_qr: checkout.clone(),
            response_qr: ResponseQr {
                credential_sk: fake.secret(),
                response: transcript.response,
                kiosk_pk: self.kiosk.public_key(),
                kiosk_sig: response_sig,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::checkin_message;
    use vg_crypto::hmac::hmac_sha256;
    use vg_crypto::HmacDrbg;

    fn ticket(mac_key: &[u8; 32], voter: VoterId) -> CheckInTicket {
        CheckInTicket {
            voter_id: voter,
            tag: hmac_sha256(mac_key, &checkin_message(voter)),
        }
    }

    fn envelope(symbol: Symbol, rng: &mut dyn Rng) -> Envelope {
        let printer = SigningKey::generate(rng);
        Envelope {
            printer_pk: printer.verifying_key().compress(),
            challenge: rng.scalar(),
            signature: printer.sign(b"x"),
            symbol,
        }
    }

    #[test]
    fn session_requires_valid_ticket() {
        let mut rng = HmacDrbg::from_u64(1);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        assert!(kiosk.begin_session(&ticket(&mac, VoterId(1))).is_ok());
        assert!(kiosk
            .begin_session(&ticket(&[0u8; 32], VoterId(1)))
            .is_err());
    }

    #[test]
    fn real_flow_event_order() {
        let mut rng = HmacDrbg::from_u64(2);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let symbol = session.begin_real_credential(&mut rng).unwrap().symbol();
        let env = envelope(symbol, &mut rng);
        let receipt = session.finish_real_credential(&env).unwrap();
        assert_eq!(receipt.symbol, symbol);
        // Commit printed BEFORE envelope scanned.
        assert_eq!(
            session.events,
            vec![
                KioskEvent::SessionStarted,
                KioskEvent::PrintedSymbolAndCommit { symbol },
                KioskEvent::ScannedEnvelope { symbol },
                KioskEvent::PrintedCheckoutAndResponse,
            ]
        );
    }

    #[test]
    fn wrong_symbol_gently_rejected() {
        let mut rng = HmacDrbg::from_u64(3);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let symbol = session.begin_real_credential(&mut rng).unwrap().symbol();
        let wrong = Symbol::ALL.iter().copied().find(|s| *s != symbol).unwrap();
        let env = envelope(wrong, &mut rng);
        assert_eq!(
            session.finish_real_credential(&env).unwrap_err(),
            TripError::WrongSymbol
        );
        // The session is still pending; a matching envelope succeeds.
        let env = envelope(symbol, &mut rng);
        assert!(session.finish_real_credential(&env).is_ok());
    }

    #[test]
    fn fake_requires_real_first() {
        let mut rng = HmacDrbg::from_u64(4);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let env = envelope(Symbol::Star, &mut rng);
        assert_eq!(
            session.create_fake_credential(&env, &mut rng).unwrap_err(),
            TripError::RealCredentialMissing
        );
    }

    #[test]
    fn envelope_reuse_rejected() {
        let mut rng = HmacDrbg::from_u64(5);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let symbol = session.begin_real_credential(&mut rng).unwrap().symbol();
        let env = envelope(symbol, &mut rng);
        session.finish_real_credential(&env).unwrap();
        // Reusing the same envelope for a fake is rejected.
        assert_eq!(
            session.create_fake_credential(&env, &mut rng).unwrap_err(),
            TripError::EnvelopeReused
        );
    }

    #[test]
    fn fake_shares_checkout_with_real() {
        let mut rng = HmacDrbg::from_u64(6);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let symbol = session.begin_real_credential(&mut rng).unwrap().symbol();
        let real = session
            .finish_real_credential(&envelope(symbol, &mut rng))
            .unwrap();
        let fake = session
            .create_fake_credential(&envelope(Symbol::Circle, &mut rng), &mut rng)
            .unwrap();
        // "t_ot is identical (both in content and visually)" (Fig 9b):
        // same tag, same kiosk, byte-identical signature.
        assert_eq!(real.checkout_qr, fake.checkout_qr);
        // But the credential keys differ.
        assert_ne!(
            real.response_qr.credential_sk,
            fake.response_qr.credential_sk
        );
    }

    #[test]
    fn malicious_kiosk_event_order_differs() {
        let mut rng = HmacDrbg::from_u64(7);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let env = envelope(Symbol::Star, &mut rng);
        let (_receipt, stolen) = session.malicious_real_credential(&env, &mut rng).unwrap();
        assert_eq!(stolen.voter_id, VoterId(1));
        // The tell: envelope scanned first, no commit printed beforehand.
        assert_eq!(
            session.events,
            vec![
                KioskEvent::SessionStarted,
                KioskEvent::ScannedEnvelope {
                    symbol: Symbol::Star
                },
                KioskEvent::PrintedFullReceipt,
            ]
        );
    }

    #[test]
    fn honest_kiosk_refuses_malicious_flow() {
        let mut rng = HmacDrbg::from_u64(8);
        let mac = [9u8; 32];
        let kiosk = Kiosk::new(
            mac,
            EdwardsPoint::mul_base(&rng.scalar()),
            KioskBehavior::Honest,
            &mut rng,
        );
        let mut session = kiosk.begin_session(&ticket(&mac, VoterId(1))).unwrap();
        let env = envelope(Symbol::Star, &mut rng);
        assert!(session.malicious_real_credential(&env, &mut rng).is_err());
    }
}
