//! The kiosk fleet: N concurrent kiosks draining one check-in queue, fed
//! by a [`CeremonyPool`].
//!
//! This is the registration-day engine the paper's throughput story needs
//! (§7.3): the expensive per-session material is precomputed by the pool
//! (ahead of voter arrival, in parallel), every signature the booth emits
//! is coupon-backed (hash-only), and ledger admission — envelope
//! commitments, check-out records, activation checks — is folded into
//! batched random-linear-combination sweeps. Session `i` of the queue is
//! served by kiosk `i mod N`, each kiosk's sessions run strictly
//! sequentially (a booth holds one voter), and all ledger writes happen on
//! the coordinator in queue order.
//!
//! # Determinism
//!
//! A fleet run is a pure function of `(seed, queue, kiosk count)`: session
//! materials derive from `(seed, queue position, voter)`, coupons are part
//! of that derivation, and ledger ordering is fixed by the queue — so any
//! `(pool batch, thread count)` choice replays bit-identically, and the
//! whole run equals a sequential loop of
//! [`crate::protocol::register_voter_seeded`] record-for-record. The
//! equivalence is enforced by `tests/fleet.rs` at the workspace root.

use std::collections::HashMap;
use std::sync::Mutex;

use vg_crypto::schnorr::NonceCoupon;
use vg_crypto::EdwardsPoint;
use vg_ledger::EnvelopeCommitment;

use crate::boundary::{LocalBoundary, RegistrarBoundary};
use crate::ceremony::SessionMaterials;
use crate::error::TripError;
use crate::kiosk::{Kiosk, KioskBehavior, KioskEvent, StolenCredential};
use crate::materials::{CheckInTicket, CheckOutQr, PaperCredential};
use crate::pool::{CeremonyPool, SessionPlan};
use crate::protocol::RegistrationOutcome;
use crate::setup::TripSystem;
use crate::vsd::{activate_batch_over, Vsd};
use vg_crypto::CompressedPoint;
use vg_ledger::VoterId;

/// Fleet tuning knobs. The seed fixes every credential, envelope and
/// signature of the run; batch and thread counts only change scheduling.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Sessions precomputed per pool refill.
    pub pool_batch: usize,
    /// Worker threads for precompute, ceremonies and batched admission.
    pub threads: usize,
    /// Derivation seed for the whole registration day.
    pub seed: [u8; 32],
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            pool_batch: 256,
            threads: 1,
            seed: [0u8; 32],
        }
    }
}

impl FleetConfig {
    /// A config with the given seed and defaults otherwise.
    pub fn seeded(seed: [u8; 32]) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Everything one ceremony produces before the coordinator touches the
/// ledger.
pub(crate) struct CeremonyOutput {
    pub(crate) believed_real: PaperCredential,
    pub(crate) fakes: Vec<PaperCredential>,
    pub(crate) events: Vec<KioskEvent>,
    pub(crate) checkout: CheckOutQr,
    pub(crate) commitments: Vec<EnvelopeCommitment>,
    pub(crate) official_coupon: NonceCoupon,
    pub(crate) stolen: Option<StolenCredential>,
}

/// Runs one voter's in-booth ceremony from precomputed materials. Shared
/// by the fleet workers and the sequential reference path
/// ([`crate::protocol::register_voter_seeded`]), which is what makes the
/// two bit-identical.
pub(crate) fn run_session(
    kiosk: &Kiosk,
    ticket: &CheckInTicket,
    materials: SessionMaterials,
) -> Result<CeremonyOutput, TripError> {
    let SessionMaterials {
        real,
        fakes,
        malicious_spare,
        envelopes,
        commitments,
        official_coupon,
        ..
    } = materials;
    let mut session = kiosk.begin_session(ticket)?;
    let mut env_iter = envelopes.into_iter();
    let mut stolen = None;

    let mut believed_real = match kiosk.behavior() {
        KioskBehavior::Honest => {
            // Real credential, 4-step process (§3.2): commit printed, then
            // the voter presents the matching envelope.
            session.begin_real_from(real)?;
            let envelope = env_iter.next().expect("pool packs the real envelope");
            let receipt = session.finish_real_credential(&envelope)?;
            PaperCredential::assemble(receipt, envelope)
        }
        KioskBehavior::StealsRealCredential => {
            // The compromised kiosk asks for an envelope up front.
            let spare = malicious_spare.ok_or(TripError::WrongPhysicalState)?;
            let envelope = env_iter.next().expect("pool packs the real envelope");
            let (receipt, loot) = session.malicious_real_from(real, spare, &envelope)?;
            stolen = Some(loot);
            PaperCredential::assemble(receipt, envelope)
        }
    };

    let mut fake_creds = Vec::with_capacity(fakes.len());
    for pre in fakes {
        let envelope = env_iter.next().expect("pool packs one envelope per fake");
        let receipt = session.create_fake_from(pre, &envelope)?;
        fake_creds.push(PaperCredential::assemble(receipt, envelope));
    }

    // The voter privately marks the credentials (§3.2).
    believed_real.mark("R");
    for (i, fake) in fake_creds.iter_mut().enumerate() {
        fake.mark(&format!("F{i}"));
    }

    let checkout = believed_real.transport_view()?.checkout.clone();
    Ok(CeremonyOutput {
        believed_real,
        fakes: fake_creds,
        events: session.finish(),
        checkout,
        commitments,
        official_coupon,
        stolen,
    })
}

/// N concurrent kiosks over a shared check-in queue, pool-fed.
pub struct KioskFleet {
    config: FleetConfig,
}

impl KioskFleet {
    /// Creates a fleet with the given tuning.
    pub fn new(config: FleetConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the [`CeremonyPool`] for a queue over this system's kiosks,
    /// without deriving anything yet. Pre-warm it ([`CeremonyPool::warm`])
    /// to model the booth-idle precompute the paper's deployment assumes,
    /// then drain it through [`KioskFleet::register_with_pool`].
    pub fn prepare_pool(&self, system: &TripSystem, plan: &[(VoterId, usize)]) -> CeremonyPool {
        let n_kiosks = system.kiosks.len().max(1);
        let session_plans: Vec<SessionPlan> = plan
            .iter()
            .enumerate()
            .map(|(i, &(voter, n_fakes))| SessionPlan {
                voter,
                n_fakes,
                malicious: system.kiosks[i % n_kiosks].behavior()
                    == KioskBehavior::StealsRealCredential,
            })
            .collect();
        CeremonyPool::new(
            self.config.seed,
            system.authority.public_key,
            session_plans,
            self.config.pool_batch,
            self.config.threads,
        )
    }

    /// Registers the whole queue: `plan` lists `(voter, fakes)` in
    /// check-in order. Returns one [`RegistrationOutcome`] per session, in
    /// queue order.
    ///
    /// Work proceeds in pool-batch windows: precompute (parallel) →
    /// ceremonies (parallel across kiosks, sequential per kiosk) →
    /// coordinator ledger phase (batched envelope commitments, batched
    /// check-out admission, loot collection) — so memory stays bounded by
    /// the pool batch while the ledgers fill in queue order.
    pub fn register(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
    ) -> Result<Vec<RegistrationOutcome>, TripError> {
        let mut pool = self.prepare_pool(system, plan);
        self.register_with_pool(system, plan, &mut pool)
    }

    /// [`KioskFleet::register`] drawing from a caller-managed pool —
    /// typically one pre-warmed while the booths were idle. The pool must
    /// have been built by [`KioskFleet::prepare_pool`] for the same
    /// `(system, plan)`; whatever it has not derived yet is refilled on
    /// demand.
    pub fn register_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
    ) -> Result<Vec<RegistrationOutcome>, TripError> {
        let mut outcomes = Vec::with_capacity(plan.len());
        self.register_each_with_pool(system, plan, pool, |outcome| outcomes.push(outcome))?;
        Ok(outcomes)
    }

    /// Streaming core: like [`KioskFleet::register_with_pool`] but hands
    /// each [`RegistrationOutcome`] to `sink` (queue order) instead of
    /// accumulating them, so the dominant per-session state (credential
    /// materials, receipts, envelopes) stays O(pool batch). Light
    /// bookkeeping remains O(queue): the check-in tickets, the ledger
    /// records themselves, and each kiosk's sealed event journal.
    pub fn register_each_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        sink: impl FnMut(RegistrationOutcome),
    ) -> Result<(), TripError> {
        let TripSystem {
            officials,
            printers,
            ledger,
            kiosks,
            kiosk_registry,
            adversary_loot,
            ..
        } = system;
        let mut boundary = LocalBoundary::new(
            &officials[0],
            &printers[0],
            ledger,
            kiosk_registry,
            self.config.threads,
        );
        self.register_each_over(kiosks, &mut boundary, plan, pool, adversary_loot, sink)
    }

    /// [`KioskFleet::register_each_with_pool`] with the registrar behind
    /// an explicit [`RegistrarBoundary`] — the fleet's deployment seam.
    /// The kiosks stay on this side (they are the booth machines the
    /// coordinator drives); check-in, printing, ledger admission and
    /// activation cross the boundary. With [`LocalBoundary`] this is
    /// exactly [`KioskFleet::register_each_with_pool`]; with a service
    /// transport it is the same registration day over RPC, bit-identical
    /// by the replay contract.
    pub fn register_each_over(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        loot: &mut Vec<StolenCredential>,
        mut sink: impl FnMut(RegistrationOutcome),
    ) -> Result<(), TripError> {
        self.run_windows(kiosks, boundary, plan, pool, loot, |_, outcomes| {
            for outcome in outcomes {
                sink(outcome);
            }
            Ok(())
        })
    }

    /// [`KioskFleet::register`] followed by batched activation of every
    /// credential on a fresh per-voter device (Fig 11 through the batched
    /// activation sweep), window by window.
    ///
    /// If the same voter appears twice in one queue, only the *last*
    /// registration's credentials activate (earlier ones are superseded on
    /// L_R — re-registration semantics, §3.2); the superseded session's
    /// device comes back empty.
    pub fn register_and_activate(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
    ) -> Result<Vec<(RegistrationOutcome, Vsd)>, TripError> {
        let mut pool = self.prepare_pool(system, plan);
        self.register_and_activate_with_pool(system, plan, &mut pool)
    }

    /// [`KioskFleet::register_and_activate`] drawing from a caller-managed
    /// (typically pre-warmed) pool.
    pub fn register_and_activate_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
    ) -> Result<Vec<(RegistrationOutcome, Vsd)>, TripError> {
        let mut out = Vec::with_capacity(plan.len());
        self.register_and_activate_each_with_pool(system, plan, pool, |outcome, vsd| {
            out.push((outcome, vsd))
        })?;
        Ok(out)
    }

    /// Streaming register-and-activate: every window is registered *and*
    /// activated before the next window's ceremonies run, so peak memory
    /// stays O(pool batch) even for million-voter queues — no run-length
    /// credential accumulation before the activation sweep.
    pub fn register_and_activate_each_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        sink: impl FnMut(RegistrationOutcome, Vsd),
    ) -> Result<(), TripError> {
        let authority_pk = system.authority.public_key;
        let printer_registry = system.printer_registry.clone();
        let TripSystem {
            officials,
            printers,
            ledger,
            kiosks,
            kiosk_registry,
            adversary_loot,
            ..
        } = system;
        let mut boundary = LocalBoundary::new(
            &officials[0],
            &printers[0],
            ledger,
            kiosk_registry,
            self.config.threads,
        );
        self.register_and_activate_each_over(
            kiosks,
            &mut boundary,
            plan,
            pool,
            &authority_pk,
            &printer_registry,
            adversary_loot,
            sink,
        )
    }

    /// [`KioskFleet::register_and_activate_each_with_pool`] over an
    /// explicit [`RegistrarBoundary`]: the device-side activation checks
    /// (Fig 11 lines 2–8, folded) run on this side, only the ledger-phase
    /// claims cross the boundary.
    #[allow(clippy::too_many_arguments)]
    pub fn register_and_activate_each_over(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        authority_pk: &EdwardsPoint,
        printer_registry: &[CompressedPoint],
        loot: &mut Vec<StolenCredential>,
        mut sink: impl FnMut(RegistrationOutcome, Vsd),
    ) -> Result<(), TripError> {
        // A session superseded within this same queue (the voter
        // re-registers later on) is skipped at activation: its credentials
        // no longer match the (eventual) active L_R record, exactly as if
        // the voter had re-registered before ever activating (§3.2). The
        // plan is known upfront, so "last occurrence" is decidable per
        // window without waiting for the whole queue.
        let mut last_occurrence: HashMap<VoterId, usize> = HashMap::new();
        for (i, &(voter, _)) in plan.iter().enumerate() {
            last_occurrence.insert(voter, i);
        }
        let threads = self.config.threads.max(1);
        let mut cursor = 0usize;
        self.run_windows(kiosks, boundary, plan, pool, loot, |boundary, outcomes| {
            // The window's records must be admitted before its activations
            // cross-check them (a no-op locally; a flush barrier over an
            // asynchronous ingestion queue).
            boundary.sync()?;
            let start = cursor;
            cursor += outcomes.len();
            let mut outcomes = outcomes;
            for outcome in &mut outcomes {
                outcome.believed_real.lift_to_activate();
                for fake in &mut outcome.fakes {
                    fake.lift_to_activate();
                }
            }
            let active: Vec<bool> = (0..outcomes.len())
                .map(|i| last_occurrence[&plan[start + i].0] == start + i)
                .collect();
            let credential_refs: Vec<&PaperCredential> = outcomes
                .iter()
                .zip(active.iter())
                .filter(|(_, &active)| active)
                .flat_map(|(o, _)| std::iter::once(&o.believed_real).chain(o.fakes.iter()))
                .collect();
            let activated = activate_batch_over(
                boundary,
                &credential_refs,
                authority_pk,
                printer_registry,
                threads,
            )?;
            let mut activated = activated.into_iter();
            for (outcome, active) in outcomes.into_iter().zip(active) {
                let mut vsd = Vsd::new();
                if active {
                    for _ in 0..=outcome.fakes.len() {
                        vsd.credentials
                            .push(activated.next().expect("one activation per credential"));
                    }
                }
                sink(outcome, vsd);
            }
            Ok(())
        })
    }

    /// Drives the whole queue window by window: refill the pool (printing
    /// via the boundary), run the window's ceremonies on the kiosks, hand
    /// the coordinator's ledger submissions to the boundary, collect
    /// adversary loot, and pass each completed window to `window_sink` in
    /// queue order. Ends with a [`RegistrarBoundary::sync`] barrier so
    /// every submission is admitted before this returns.
    fn run_windows(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        loot: &mut Vec<StolenCredential>,
        mut window_sink: impl FnMut(
            &mut dyn RegistrarBoundary,
            Vec<RegistrationOutcome>,
        ) -> Result<(), TripError>,
    ) -> Result<(), TripError> {
        // Check-in for the whole queue (Fig 8; MAC-only, sequential).
        let tickets: Vec<CheckInTicket> = plan
            .iter()
            .map(|&(voter, _)| boundary.check_in(voter))
            .collect::<Result<_, _>>()?;
        loop {
            if pool.prepared() == 0
                && pool.refill_via(&mut |jobs| boundary.print_envelopes(jobs))? == 0
            {
                break;
            }
            // Drain at most one pool batch per window so a fully warmed
            // pool still flows through bounded coordinator batches.
            let take = pool.prepared().min(self.config.pool_batch.max(1));
            let window: Vec<SessionMaterials> = (0..take)
                .map(|_| pool.take_ready().expect("prepared sessions"))
                .collect();
            let results = self.process_window(kiosks, boundary, &tickets, window)?;
            let mut outcomes = Vec::with_capacity(results.len());
            for (outcome, stolen) in results {
                if let Some(looted) = stolen {
                    loot.push(looted);
                }
                outcomes.push(outcome);
            }
            window_sink(&mut *boundary, outcomes)?;
        }
        boundary.sync()
    }

    fn process_window(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        tickets: &[CheckInTicket],
        window: Vec<SessionMaterials>,
    ) -> Result<Vec<(RegistrationOutcome, Option<StolenCredential>)>, TripError> {
        let n_kiosks = kiosks.len().max(1);
        let threads = self.config.threads.max(1);

        // One lane per kiosk, queue order within a lane; lanes spread
        // round-robin over the worker threads.
        let mut lanes: Vec<Vec<SessionMaterials>> = (0..n_kiosks).map(|_| Vec::new()).collect();
        for materials in window {
            lanes[materials.session_index % n_kiosks].push(materials);
        }
        let worker_count = threads.min(n_kiosks);
        let mut worker_lanes: Vec<Vec<(usize, Vec<SessionMaterials>)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (k, lane) in lanes.into_iter().enumerate() {
            if !lane.is_empty() {
                worker_lanes[k % worker_count].push((k, lane));
            }
        }

        let results: Mutex<Vec<(usize, Result<CeremonyOutput, TripError>)>> =
            Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for assigned in worker_lanes {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    for (k, lane) in assigned {
                        let kiosk = &kiosks[k];
                        for materials in lane {
                            let idx = materials.session_index;
                            local.push((idx, run_session(kiosk, &tickets[idx], materials)));
                        }
                    }
                    results.lock().expect("fleet results lock").extend(local);
                });
            }
        });
        let mut results = results.into_inner().expect("fleet results lock");
        results.sort_by_key(|(idx, _)| *idx);

        // Propagate the earliest failure in queue order (deterministic
        // regardless of which worker hit it first).
        let mut window_outputs = Vec::with_capacity(results.len());
        for (_, result) in results {
            window_outputs.push(result?);
        }

        // Coordinator ledger phase, queue order throughout.
        let mut commitments = Vec::new();
        let mut checkouts = Vec::with_capacity(window_outputs.len());
        let mut finals = Vec::with_capacity(window_outputs.len());
        for output in window_outputs {
            let CeremonyOutput {
                believed_real,
                fakes,
                events,
                checkout,
                commitments: batch,
                official_coupon,
                stolen,
            } = output;
            commitments.extend(batch);
            checkouts.push((checkout, official_coupon));
            finals.push((believed_real, fakes, events, stolen));
        }
        boundary.submit_envelopes(commitments)?;
        boundary.submit_checkouts(checkouts)?;
        Ok(finals
            .into_iter()
            .map(|(believed_real, fakes, events, stolen)| {
                (
                    RegistrationOutcome {
                        believed_real,
                        fakes,
                        events,
                    },
                    stolen,
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{register_voter_seeded, trace_shows_honest_real_flow};
    use crate::setup::TripConfig;
    use vg_crypto::HmacDrbg;

    fn config(n_voters: u64, n_kiosks: usize) -> TripConfig {
        TripConfig {
            n_voters,
            n_kiosks,
            ..TripConfig::default()
        }
    }

    fn plan(n: u64) -> Vec<(VoterId, usize)> {
        (1..=n).map(|v| (VoterId(v), (v % 3) as usize)).collect()
    }

    /// Ledger heads plus per-credential identifying bytes of a run.
    fn fingerprint(
        system: &TripSystem,
        outcomes: &[RegistrationOutcome],
    ) -> (Vec<u8>, Vec<u8>, Vec<Vec<u8>>) {
        let creds = outcomes
            .iter()
            .flat_map(|o| o.all_credentials())
            .map(|c| {
                let mut bytes = c.receipt.checkout_qr.kiosk_sig.to_bytes().to_vec();
                bytes.extend_from_slice(&c.receipt.response_qr.credential_sk.to_bytes());
                bytes.extend_from_slice(&c.envelope.challenge.to_bytes());
                bytes
            })
            .collect();
        (
            system.ledger.registration.tree_head().root.to_vec(),
            system.ledger.envelopes.tree_head().root.to_vec(),
            creds,
        )
    }

    #[test]
    fn fleet_matches_sequential_seeded_reference() {
        let seed = [5u8; 32];
        let queue = plan(5);

        let mut rng = HmacDrbg::from_u64(1);
        let mut seq_system = TripSystem::setup(config(5, 2), &mut rng);
        let mut seq_outcomes = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            seq_outcomes
                .push(register_voter_seeded(&mut seq_system, voter, fakes, &seed, i).unwrap());
        }

        // The same deterministic setup, drained through the fleet with a
        // small pool window and several workers.
        let mut rng = HmacDrbg::from_u64(1);
        let mut fleet_system = TripSystem::setup(config(5, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 2,
            threads: 3,
            seed,
        });
        let fleet_outcomes = fleet.register(&mut fleet_system, &queue).unwrap();

        assert_eq!(
            fingerprint(&seq_system, &seq_outcomes),
            fingerprint(&fleet_system, &fleet_outcomes),
        );
        for outcome in &fleet_outcomes {
            assert!(trace_shows_honest_real_flow(&outcome.events));
        }
    }

    #[test]
    fn fleet_activation_matches_sequential_activation() {
        let seed = [8u8; 32];
        let queue = plan(4);

        let mut rng = HmacDrbg::from_u64(2);
        let mut seq_system = TripSystem::setup(config(4, 2), &mut rng);
        let mut seq_creds = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            let mut outcome =
                register_voter_seeded(&mut seq_system, voter, fakes, &seed, i).unwrap();
            let vsd =
                crate::protocol::activate_all(&mut seq_system, &mut outcome, &mut rng).unwrap();
            seq_creds.extend(vsd.credentials.into_iter().map(|c| c.key.secret()));
        }

        let mut rng = HmacDrbg::from_u64(2);
        let mut fleet_system = TripSystem::setup(config(4, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 3,
            threads: 2,
            seed,
        });
        let sessions = fleet
            .register_and_activate(&mut fleet_system, &queue)
            .unwrap();
        let fleet_creds: Vec<_> = sessions
            .iter()
            .flat_map(|(_, vsd)| vsd.credentials.iter().map(|c| c.key.secret()))
            .collect();
        assert_eq!(seq_creds, fleet_creds);
        assert_eq!(
            seq_system.ledger.envelopes.revealed_count(),
            fleet_system.ledger.envelopes.revealed_count()
        );
        assert_eq!(fleet_system.ledger.registration.active_count(), 4);
    }

    #[test]
    fn kiosk_journals_stay_per_session_ordered() {
        let mut rng = HmacDrbg::from_u64(3);
        let mut system = TripSystem::setup(config(9, 3), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 4,
            threads: 3,
            seed: [1u8; 32],
        });
        fleet.register(&mut system, &plan(9)).unwrap();
        // Kiosk k served sessions k, k+3, k+6 — in that order, each trace
        // contiguous and honest.
        for (k, kiosk) in system.kiosks.iter().enumerate() {
            let journal = kiosk.journal();
            let voters: Vec<u64> = journal.iter().map(|t| t.voter_id.0).collect();
            assert_eq!(
                voters,
                vec![k as u64 + 1, k as u64 + 4, k as u64 + 7],
                "kiosk {k} journal order"
            );
            for trace in &journal {
                assert_eq!(trace.events[0], KioskEvent::SessionStarted);
                assert!(trace_shows_honest_real_flow(&trace.events));
            }
        }
    }

    #[test]
    fn duplicate_voter_in_queue_activates_only_last_registration() {
        let mut rng = HmacDrbg::from_u64(5);
        let mut system = TripSystem::setup(config(3, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig::seeded([7u8; 32]));
        // Voter 1 re-registers at the end of the same queue.
        let queue = vec![
            (VoterId(1), 1),
            (VoterId(2), 0),
            (VoterId(3), 0),
            (VoterId(1), 0),
        ];
        let sessions = fleet.register_and_activate(&mut system, &queue).unwrap();
        assert_eq!(system.ledger.registration.active_count(), 3);
        // The superseded first session comes back with an empty device;
        // the re-registration's credentials activate.
        assert!(sessions[0].1.credentials.is_empty());
        assert_eq!(sessions[1].1.credentials.len(), 1);
        assert_eq!(sessions[2].1.credentials.len(), 1);
        assert_eq!(sessions[3].1.credentials.len(), 1);
        assert_eq!(
            sessions[3].0.believed_real.receipt.checkout_qr.voter_id,
            VoterId(1)
        );
    }

    #[test]
    fn malicious_kiosk_inside_fleet_still_caught() {
        let mut rng = HmacDrbg::from_u64(4);
        let mut system = TripSystem::setup_with_behavior(
            config(4, 2),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let fleet = KioskFleet::new(FleetConfig::seeded([6u8; 32]));
        let queue = plan(4);
        let sessions = fleet.register_and_activate(&mut system, &queue).unwrap();
        // Every stolen key was collected, in queue order.
        assert_eq!(system.adversary_loot.len(), 4);
        let looted: Vec<u64> = system.adversary_loot.iter().map(|s| s.voter_id.0).collect();
        assert_eq!(looted, vec![1, 2, 3, 4]);
        for (outcome, vsd) in &sessions {
            // The forged "real" credential still activates (Fig 11 cannot
            // tell) — only the booth ordering betrays the kiosk.
            assert!(!vsd.credentials.is_empty());
            assert!(!trace_shows_honest_real_flow(&outcome.events));
        }
    }
}
