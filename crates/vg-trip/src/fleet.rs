//! The kiosk fleet: N concurrent kiosks draining one check-in queue, fed
//! by a [`CeremonyPool`].
//!
//! This is the registration-day engine the paper's throughput story needs
//! (§7.3): the expensive per-session material is precomputed by the pool
//! (ahead of voter arrival, in parallel), every signature the booth emits
//! is coupon-backed (hash-only), and ledger admission — envelope
//! commitments, check-out records, activation checks — is folded into
//! batched random-linear-combination sweeps. Session `i` of the queue is
//! served by kiosk `i mod N`, each kiosk's sessions run strictly
//! sequentially (a booth holds one voter), and all ledger writes happen on
//! the coordinator in queue order.
//!
//! # Determinism
//!
//! A fleet run is a pure function of `(seed, queue, kiosk count)`: session
//! materials derive from `(seed, queue position, voter)`, coupons are part
//! of that derivation, and ledger ordering is fixed by the queue — so any
//! `(pool batch, thread count)` choice replays bit-identically, and the
//! whole run equals a sequential loop of
//! [`crate::protocol::register_voter_seeded`] record-for-record. The
//! equivalence is enforced by `tests/fleet.rs` at the workspace root.

use std::collections::HashMap;
use std::sync::mpsc;

use vg_crypto::schnorr::NonceCoupon;
use vg_crypto::EdwardsPoint;
use vg_ledger::EnvelopeCommitment;

use crate::boundary::{LocalBoundary, RegistrarBoundary};
use crate::ceremony::SessionMaterials;
use crate::error::TripError;
use crate::kiosk::{Kiosk, KioskBehavior, KioskEvent, StolenCredential};
use crate::materials::{CheckInTicket, CheckOutQr, PaperCredential};
use crate::pool::{CeremonyPool, PoolFeed, SessionPlan};
use crate::protocol::RegistrationOutcome;
use crate::setup::TripSystem;
use crate::vsd::{activate_batch_over, Vsd};
use vg_crypto::CompressedPoint;
use vg_ledger::VoterId;

/// Where a station's ceremony windows come from: either a caller-managed
/// [`CeremonyPool`] refilled synchronously at window boundaries
/// ([`PoolSource`], the barrier-era behavior), or a [`PoolFeed`] kept warm
/// by a background refiller thread ([`FeedSource`]), so the coordinator
/// never waits for precompute mid-day.
pub trait MaterialsSource {
    /// The next up-to-`max` ready sessions in derivation order; empty
    /// means the plan is exhausted. `boundary` is available for
    /// synchronous print fulfilment (unused by fed sources).
    fn next_window(
        &mut self,
        max: usize,
        boundary: &mut dyn RegistrarBoundary,
    ) -> Result<Vec<SessionMaterials>, TripError>;
}

/// The synchronous source: refills the pool through the boundary's print
/// service whenever it runs dry — precompute serializes with ceremonies,
/// exactly the pre-pipeline behavior.
pub struct PoolSource<'a> {
    /// The pool to drain (and refill on demand).
    pub pool: &'a mut CeremonyPool,
}

impl MaterialsSource for PoolSource<'_> {
    fn next_window(
        &mut self,
        max: usize,
        boundary: &mut dyn RegistrarBoundary,
    ) -> Result<Vec<SessionMaterials>, TripError> {
        if self.pool.prepared() == 0
            && self
                .pool
                .refill_via(&mut |jobs| boundary.print_envelopes(jobs))?
                == 0
        {
            return Ok(Vec::new());
        }
        let take = self.pool.prepared().min(max.max(1));
        Ok((0..take)
            .map(|_| self.pool.take_ready().expect("prepared sessions"))
            .collect())
    }
}

/// The pipelined source: pops whatever the background refiller has ready,
/// blocking only when the feed is truly empty.
pub struct FeedSource<'a> {
    /// The buffer the refiller thread keeps above its low-water mark.
    pub feed: &'a PoolFeed,
}

impl MaterialsSource for FeedSource<'_> {
    fn next_window(
        &mut self,
        max: usize,
        _boundary: &mut dyn RegistrarBoundary,
    ) -> Result<Vec<SessionMaterials>, TripError> {
        self.feed.take_window(max)
    }
}

/// One polling station's share of a registration day: the subsequence of
/// the global check-in queue served by its kiosk chunk.
///
/// Stations partition the kiosks into contiguous chunks and a session
/// follows its kiosk (session `i` is served by kiosk `i mod |K|`, as
/// always), so concurrent stations never contend for a booth and every
/// credential still carries the same kiosk signature as in the sequential
/// reference.
pub struct StationPlan {
    /// Station number (0-based).
    pub station: usize,
    /// `(global session index, voter, fakes)` in queue order.
    pub sessions: Vec<(usize, VoterId, usize)>,
    /// The matching indexed pool plan (malicious flags resolved per
    /// serving kiosk).
    pub plans: Vec<(usize, SessionPlan)>,
}

/// The static kiosk → owning-station map: `stations` contiguous,
/// balanced chunks over `kiosks` kiosks. This is the session-routing
/// ground truth for the whole day — shard ownership in the pipelined
/// registrar keys off the *original* owner even after a steal moves
/// transport ownership of a dead station's kiosk range, so re-submitted
/// sessions land on the same ingest worker and dedup for free.
///
/// Requires `1 ≤ stations ≤ kiosks` (callers validate; see
/// [`partition_stations`]).
pub fn kiosk_owners(kiosks: usize, stations: usize) -> Vec<usize> {
    let (k, s) = (kiosks, stations);
    let mut owner = vec![0usize; k];
    for (j, slot) in (0..s).flat_map(|j| ((j * k) / s..((j + 1) * k) / s).map(move |ki| (j, ki))) {
        owner[slot] = j;
    }
    owner
}

/// Splits a day's plan across `stations` polling stations. Kiosk `k`
/// belongs to station `⌊k·S/|K|⌋`-ish contiguous chunks; sessions follow
/// their kiosks.
///
/// # Invariant
///
/// `1 ≤ stations ≤ |K|`: every station must own at least one kiosk, so a
/// day can never run more stations than kiosks. Violations return
/// [`TripError::InvalidConfig`] instead of silently clamping — an
/// `ElectionBuilder` asking for 16 stations over 8 kiosks previously ran
/// 8 stations without telling anyone, which made capacity planning (and
/// the station-death steal math) quietly wrong.
pub fn partition_stations(
    plan: &[(VoterId, usize)],
    kiosks: &[Kiosk],
    stations: usize,
) -> Result<Vec<StationPlan>, TripError> {
    let k = kiosks.len();
    if stations == 0 || stations > k {
        return Err(TripError::InvalidConfig(format!(
            "{stations} stations over {k} kiosks (need 1 <= stations <= kiosks)"
        )));
    }
    let s = stations;
    let owner = kiosk_owners(k, s);
    let mut out: Vec<StationPlan> = (0..s)
        .map(|station| StationPlan {
            station,
            sessions: Vec::new(),
            plans: Vec::new(),
        })
        .collect();
    for (i, &(voter, n_fakes)) in plan.iter().enumerate() {
        let ki = i % k;
        let st = owner[ki];
        out[st].sessions.push((i, voter, n_fakes));
        out[st].plans.push((
            i,
            SessionPlan {
                voter,
                n_fakes,
                malicious: kiosks[ki].behavior() == KioskBehavior::StealsRealCredential,
            },
        ));
    }
    Ok(out)
}

/// Everything the activation half of a station run needs besides the
/// boundary: the authority key, the printer registry, and the *global*
/// last-occurrence map (re-registration semantics, §3.2 — computed over
/// the whole day's plan, not one station's slice).
pub struct ActivationContext<'a> {
    /// The authority's collective ElGamal key.
    pub authority_pk: &'a EdwardsPoint,
    /// Authorized printer public keys.
    pub printer_registry: &'a [CompressedPoint],
    /// Voter → global index of their last planned session.
    pub last_occurrence: &'a HashMap<VoterId, usize>,
}

/// Accumulates ceremony windows and activates them `lag` windows at a
/// time: one `sync_through` prefix barrier, one folded device-side check
/// batch and one activation sweep cover the whole group, so barrier and
/// fold fixed costs amortize across windows (the single-core half of the
/// pipelined speedup). `lag = 1` reproduces the per-window barrier
/// behavior exactly.
struct ActivationDriver<'a> {
    ctx: &'a ActivationContext<'a>,
    threads: usize,
    lag: usize,
    pending: Vec<(usize, RegistrationOutcome, Option<StolenCredential>)>,
    windows: usize,
}

/// Per-session results a station run hands back, in global session order:
/// the outcome, the device (when activation ran; superseded sessions get
/// an empty one), and any credential a compromised kiosk stole.
pub type StationSink<'a> =
    dyn FnMut(usize, RegistrationOutcome, Option<Vsd>, Option<StolenCredential>) + 'a;

/// One session's ceremony result, tagged with its global index.
type SessionResult = (usize, Result<CeremonyOutput, TripError>);

impl<'a> ActivationDriver<'a> {
    fn new(ctx: &'a ActivationContext<'a>, threads: usize, lag: usize) -> Self {
        Self {
            ctx,
            threads,
            lag: lag.max(1),
            pending: Vec::new(),
            windows: 0,
        }
    }

    fn push_window(
        &mut self,
        boundary: &mut dyn RegistrarBoundary,
        window: Vec<(usize, RegistrationOutcome, Option<StolenCredential>)>,
        sink: &mut StationSink<'_>,
    ) -> Result<(), TripError> {
        self.pending.extend(window);
        self.windows += 1;
        if self.windows >= self.lag {
            self.flush(boundary, sink)?;
        }
        Ok(())
    }

    fn flush(
        &mut self,
        boundary: &mut dyn RegistrarBoundary,
        sink: &mut StationSink<'_>,
    ) -> Result<(), TripError> {
        self.windows = 0;
        if self.pending.is_empty() {
            return Ok(());
        }
        // The group's records must be admitted (across *all* stations up
        // to our highest session) before activation cross-checks them.
        let max_idx = self.pending.last().expect("non-empty").0;
        boundary.sync_through(max_idx as u64 + 1)?;
        let mut batch = std::mem::take(&mut self.pending);
        for (_, outcome, _) in &mut batch {
            outcome.believed_real.lift_to_activate();
            for fake in &mut outcome.fakes {
                fake.lift_to_activate();
            }
        }
        // A session superseded later in the global queue is skipped at
        // activation: its credentials no longer match the eventual active
        // L_R record (§3.2).
        let active: Vec<bool> = batch
            .iter()
            .map(|(idx, outcome, _)| {
                let voter = outcome.believed_real.receipt.checkout_qr.voter_id;
                self.ctx.last_occurrence[&voter] == *idx
            })
            .collect();
        let credential_refs: Vec<&PaperCredential> = batch
            .iter()
            .zip(active.iter())
            .filter(|(_, &is_active)| is_active)
            .flat_map(|((_, o, _), _)| std::iter::once(&o.believed_real).chain(o.fakes.iter()))
            .collect();
        let activated = activate_batch_over(
            boundary,
            &credential_refs,
            self.ctx.authority_pk,
            self.ctx.printer_registry,
            self.threads,
        )?;
        let mut activated = activated.into_iter();
        for ((idx, outcome, stolen), is_active) in batch.into_iter().zip(active) {
            let mut vsd = Vsd::new();
            if is_active {
                for _ in 0..=outcome.fakes.len() {
                    vsd.credentials
                        .push(activated.next().expect("one activation per credential"));
                }
            }
            sink(idx, outcome, Some(vsd), stolen);
        }
        Ok(())
    }
}

/// Fleet tuning knobs. The seed fixes every credential, envelope and
/// signature of the run; batch and thread counts only change scheduling.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Sessions precomputed per pool refill.
    pub pool_batch: usize,
    /// Worker threads for precompute, ceremonies and batched admission.
    pub threads: usize,
    /// Derivation seed for the whole registration day.
    pub seed: [u8; 32],
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            pool_batch: 256,
            threads: 1,
            seed: [0u8; 32],
        }
    }
}

impl FleetConfig {
    /// A config with the given seed and defaults otherwise.
    pub fn seeded(seed: [u8; 32]) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Everything one ceremony produces before the coordinator touches the
/// ledger.
pub(crate) struct CeremonyOutput {
    pub(crate) believed_real: PaperCredential,
    pub(crate) fakes: Vec<PaperCredential>,
    pub(crate) events: Vec<KioskEvent>,
    pub(crate) checkout: CheckOutQr,
    pub(crate) commitments: Vec<EnvelopeCommitment>,
    pub(crate) official_coupon: NonceCoupon,
    pub(crate) stolen: Option<StolenCredential>,
}

/// Runs one voter's in-booth ceremony from precomputed materials. Shared
/// by the fleet workers and the sequential reference path
/// ([`crate::protocol::register_voter_seeded`]), which is what makes the
/// two bit-identical.
pub(crate) fn run_session(
    kiosk: &Kiosk,
    ticket: &CheckInTicket,
    materials: SessionMaterials,
) -> Result<CeremonyOutput, TripError> {
    let SessionMaterials {
        real,
        fakes,
        malicious_spare,
        envelopes,
        commitments,
        official_coupon,
        ..
    } = materials;
    let mut session = kiosk.begin_session(ticket)?;
    let mut env_iter = envelopes.into_iter();
    let mut stolen = None;

    let mut believed_real = match kiosk.behavior() {
        KioskBehavior::Honest => {
            // Real credential, 4-step process (§3.2): commit printed, then
            // the voter presents the matching envelope.
            session.begin_real_from(real)?;
            let envelope = env_iter.next().expect("pool packs the real envelope");
            let receipt = session.finish_real_credential(&envelope)?;
            PaperCredential::assemble(receipt, envelope)
        }
        KioskBehavior::StealsRealCredential => {
            // The compromised kiosk asks for an envelope up front.
            let spare = malicious_spare.ok_or(TripError::WrongPhysicalState)?;
            let envelope = env_iter.next().expect("pool packs the real envelope");
            let (receipt, loot) = session.malicious_real_from(real, spare, &envelope)?;
            stolen = Some(loot);
            PaperCredential::assemble(receipt, envelope)
        }
    };

    let mut fake_creds = Vec::with_capacity(fakes.len());
    for pre in fakes {
        let envelope = env_iter.next().expect("pool packs one envelope per fake");
        let receipt = session.create_fake_from(pre, &envelope)?;
        fake_creds.push(PaperCredential::assemble(receipt, envelope));
    }

    // The voter privately marks the credentials (§3.2).
    believed_real.mark("R");
    for (i, fake) in fake_creds.iter_mut().enumerate() {
        fake.mark(&format!("F{i}"));
    }

    let checkout = believed_real.transport_view()?.checkout.clone();
    Ok(CeremonyOutput {
        believed_real,
        fakes: fake_creds,
        events: session.finish(),
        checkout,
        commitments,
        official_coupon,
        stolen,
    })
}

/// N concurrent kiosks over a shared check-in queue, pool-fed.
pub struct KioskFleet {
    config: FleetConfig,
}

impl KioskFleet {
    /// Creates a fleet with the given tuning.
    pub fn new(config: FleetConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the [`CeremonyPool`] for a queue over this system's kiosks,
    /// without deriving anything yet. Pre-warm it ([`CeremonyPool::warm`])
    /// to model the booth-idle precompute the paper's deployment assumes,
    /// then drain it through [`KioskFleet::register_with_pool`].
    pub fn prepare_pool(&self, system: &TripSystem, plan: &[(VoterId, usize)]) -> CeremonyPool {
        let n_kiosks = system.kiosks.len().max(1);
        let session_plans: Vec<SessionPlan> = plan
            .iter()
            .enumerate()
            .map(|(i, &(voter, n_fakes))| SessionPlan {
                voter,
                n_fakes,
                malicious: system.kiosks[i % n_kiosks].behavior()
                    == KioskBehavior::StealsRealCredential,
            })
            .collect();
        CeremonyPool::new(
            self.config.seed,
            system.authority.public_key,
            session_plans,
            self.config.pool_batch,
            self.config.threads,
        )
    }

    /// Registers the whole queue: `plan` lists `(voter, fakes)` in
    /// check-in order. Returns one [`RegistrationOutcome`] per session, in
    /// queue order.
    ///
    /// Work proceeds in pool-batch windows: precompute (parallel) →
    /// ceremonies (parallel across kiosks, sequential per kiosk) →
    /// coordinator ledger phase (batched envelope commitments, batched
    /// check-out admission, loot collection) — so memory stays bounded by
    /// the pool batch while the ledgers fill in queue order.
    pub fn register(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
    ) -> Result<Vec<RegistrationOutcome>, TripError> {
        let mut pool = self.prepare_pool(system, plan);
        self.register_with_pool(system, plan, &mut pool)
    }

    /// [`KioskFleet::register`] drawing from a caller-managed pool —
    /// typically one pre-warmed while the booths were idle. The pool must
    /// have been built by [`KioskFleet::prepare_pool`] for the same
    /// `(system, plan)`; whatever it has not derived yet is refilled on
    /// demand.
    pub fn register_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
    ) -> Result<Vec<RegistrationOutcome>, TripError> {
        let mut outcomes = Vec::with_capacity(plan.len());
        self.register_each_with_pool(system, plan, pool, |outcome| outcomes.push(outcome))?;
        Ok(outcomes)
    }

    /// Streaming core: like [`KioskFleet::register_with_pool`] but hands
    /// each [`RegistrationOutcome`] to `sink` (queue order) instead of
    /// accumulating them, so the dominant per-session state (credential
    /// materials, receipts, envelopes) stays O(pool batch). Light
    /// bookkeeping remains O(queue): the check-in tickets, the ledger
    /// records themselves, and each kiosk's sealed event journal.
    pub fn register_each_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        sink: impl FnMut(RegistrationOutcome),
    ) -> Result<(), TripError> {
        let TripSystem {
            officials,
            printers,
            ledger,
            kiosks,
            kiosk_registry,
            adversary_loot,
            ..
        } = system;
        let mut boundary = LocalBoundary::new(
            &officials[0],
            &printers[0],
            ledger,
            kiosk_registry,
            self.config.threads,
        );
        self.register_each_over(kiosks, &mut boundary, plan, pool, adversary_loot, sink)
    }

    /// [`KioskFleet::register_each_with_pool`] with the registrar behind
    /// an explicit [`RegistrarBoundary`] — the fleet's deployment seam.
    /// The kiosks stay on this side (they are the booth machines the
    /// coordinator drives); check-in, printing, ledger admission and
    /// activation cross the boundary. With [`LocalBoundary`] this is
    /// exactly [`KioskFleet::register_each_with_pool`]; with a service
    /// transport it is the same registration day over RPC, bit-identical
    /// by the replay contract.
    pub fn register_each_over(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        loot: &mut Vec<StolenCredential>,
        mut sink: impl FnMut(RegistrationOutcome),
    ) -> Result<(), TripError> {
        let sessions: Vec<(usize, VoterId, usize)> = plan
            .iter()
            .enumerate()
            .map(|(i, &(voter, fakes))| (i, voter, fakes))
            .collect();
        let mut source = PoolSource { pool };
        self.run_station_over(
            kiosks,
            boundary,
            &sessions,
            &mut source,
            None,
            &mut |_idx, outcome, _vsd, stolen| {
                if let Some(looted) = stolen {
                    loot.push(looted);
                }
                sink(outcome);
            },
        )
    }

    /// [`KioskFleet::register`] followed by batched activation of every
    /// credential on a fresh per-voter device (Fig 11 through the batched
    /// activation sweep), window by window.
    ///
    /// If the same voter appears twice in one queue, only the *last*
    /// registration's credentials activate (earlier ones are superseded on
    /// L_R — re-registration semantics, §3.2); the superseded session's
    /// device comes back empty.
    pub fn register_and_activate(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
    ) -> Result<Vec<(RegistrationOutcome, Vsd)>, TripError> {
        let mut pool = self.prepare_pool(system, plan);
        self.register_and_activate_with_pool(system, plan, &mut pool)
    }

    /// [`KioskFleet::register_and_activate`] drawing from a caller-managed
    /// (typically pre-warmed) pool.
    pub fn register_and_activate_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
    ) -> Result<Vec<(RegistrationOutcome, Vsd)>, TripError> {
        let mut out = Vec::with_capacity(plan.len());
        self.register_and_activate_each_with_pool(system, plan, pool, |outcome, vsd| {
            out.push((outcome, vsd))
        })?;
        Ok(out)
    }

    /// Streaming register-and-activate: every window is registered *and*
    /// activated before the next window's ceremonies run, so peak memory
    /// stays O(pool batch) even for million-voter queues — no run-length
    /// credential accumulation before the activation sweep.
    pub fn register_and_activate_each_with_pool(
        &self,
        system: &mut TripSystem,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        sink: impl FnMut(RegistrationOutcome, Vsd),
    ) -> Result<(), TripError> {
        let authority_pk = system.authority.public_key;
        let printer_registry = system.printer_registry.clone();
        let TripSystem {
            officials,
            printers,
            ledger,
            kiosks,
            kiosk_registry,
            adversary_loot,
            ..
        } = system;
        let mut boundary = LocalBoundary::new(
            &officials[0],
            &printers[0],
            ledger,
            kiosk_registry,
            self.config.threads,
        );
        self.register_and_activate_each_over(
            kiosks,
            &mut boundary,
            plan,
            pool,
            &authority_pk,
            &printer_registry,
            adversary_loot,
            sink,
        )
    }

    /// [`KioskFleet::register_and_activate_each_with_pool`] over an
    /// explicit [`RegistrarBoundary`]: the device-side activation checks
    /// (Fig 11 lines 2–8, folded) run on this side, only the ledger-phase
    /// claims cross the boundary.
    #[allow(clippy::too_many_arguments)]
    pub fn register_and_activate_each_over(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        plan: &[(VoterId, usize)],
        pool: &mut CeremonyPool,
        authority_pk: &EdwardsPoint,
        printer_registry: &[CompressedPoint],
        loot: &mut Vec<StolenCredential>,
        mut sink: impl FnMut(RegistrationOutcome, Vsd),
    ) -> Result<(), TripError> {
        let last_occurrence = last_occurrence_of(plan);
        let ctx = ActivationContext {
            authority_pk,
            printer_registry,
            last_occurrence: &last_occurrence,
        };
        let sessions: Vec<(usize, VoterId, usize)> = plan
            .iter()
            .enumerate()
            .map(|(i, &(voter, fakes))| (i, voter, fakes))
            .collect();
        let mut source = PoolSource { pool };
        self.run_station_over(
            kiosks,
            boundary,
            &sessions,
            &mut source,
            // lag 1: activate every window behind its own barrier — the
            // barrier-synchronous reference the pipelined engine must
            // equal bit-identically (and the baseline it is benched
            // against).
            Some((&ctx, 1)),
            &mut |_idx, outcome, vsd, stolen| {
                if let Some(looted) = stolen {
                    loot.push(looted);
                }
                sink(outcome, vsd.unwrap_or_default());
            },
        )
    }

    /// Builds an indexed [`CeremonyPool`] for one station's share of the
    /// day (see [`partition_stations`]), under this fleet's tuning.
    pub fn prepare_pool_indexed(
        &self,
        authority_pk: EdwardsPoint,
        plans: Vec<(usize, SessionPlan)>,
    ) -> CeremonyPool {
        CeremonyPool::new_indexed(
            self.config.seed,
            authority_pk,
            plans,
            self.config.pool_batch,
            self.config.threads,
        )
    }

    /// The generalized station engine every fleet entry point drives:
    /// checks in `sessions` (a station's — or the whole day's — slice of
    /// the global queue), runs their ceremonies window by window on a
    /// **persistent lane crew** (worker threads spawned once and fed over
    /// channels, not re-spawned per window), submits each window's ledger
    /// records session-tagged through the boundary, and — when an
    /// [`ActivationContext`] is given — activates groups of `lag` windows
    /// behind one prefix barrier each.
    ///
    /// Windows are software-pipelined at depth 2: while the crew runs
    /// window `w+1`'s ceremonies, the coordinator drives window `w`'s
    /// ledger phase, so booth latency hides submission/activation latency
    /// even within one station. Results reach `sink` strictly in session
    /// order; ledger submission order per ledger is fixed by session
    /// index, which is what keeps any scheduling bit-identical to the
    /// sequential reference.
    ///
    /// `source` must yield exactly the materials for `sessions`, in
    /// order.
    pub fn run_station_over(
        &self,
        kiosks: &[Kiosk],
        boundary: &mut dyn RegistrarBoundary,
        sessions: &[(usize, VoterId, usize)],
        source: &mut dyn MaterialsSource,
        activation: Option<(&ActivationContext<'_>, usize)>,
        sink: &mut StationSink<'_>,
    ) -> Result<(), TripError> {
        let n_kiosks = kiosks.len().max(1);
        let threads = self.config.threads.max(1);
        let window_cap = self.config.pool_batch.max(1);

        // Check-in for the station's whole queue (Fig 8; MAC-only).
        let mut tickets: HashMap<usize, CheckInTicket> = HashMap::with_capacity(sessions.len());
        for &(idx, voter, _) in sessions {
            tickets.insert(idx, boundary.check_in(voter)?);
        }
        let max_session = sessions.iter().map(|&(idx, _, _)| idx).max();
        let mut driver = activation.map(|(ctx, lag)| ActivationDriver::new(ctx, threads, lag));

        std::thread::scope(|scope| -> Result<(), TripError> {
            // The persistent crew: one thread per worker slot for the
            // whole run. Lanes (kiosks) are pinned to crew members, so a
            // kiosk's sessions always execute on the same thread, in
            // order — the journal-order guarantee survives pipelining.
            let worker_count = threads.min(n_kiosks);
            let (result_tx, result_rx) = mpsc::channel::<(u64, Vec<SessionResult>)>();
            let mut crew = Vec::with_capacity(worker_count);
            for _ in 0..worker_count {
                let (job_tx, job_rx) =
                    mpsc::channel::<(u64, Vec<(usize, Vec<SessionMaterials>)>)>();
                crew.push(job_tx);
                let result_tx = result_tx.clone();
                let tickets = &tickets;
                scope.spawn(move || {
                    while let Ok((window_id, lanes)) = job_rx.recv() {
                        let mut local = Vec::new();
                        for (k, lane) in lanes {
                            let kiosk = &kiosks[k];
                            for materials in lane {
                                let idx = materials.session_index;
                                local.push((idx, run_session(kiosk, &tickets[&idx], materials)));
                            }
                        }
                        if result_tx.send((window_id, local)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(result_tx);

            let dispatch =
                |window: Vec<SessionMaterials>, window_id: u64| -> Result<usize, TripError> {
                    let mut lanes: Vec<Vec<SessionMaterials>> =
                        (0..n_kiosks).map(|_| Vec::new()).collect();
                    for materials in window {
                        lanes[materials.session_index % n_kiosks].push(materials);
                    }
                    let mut per_worker: Vec<Vec<(usize, Vec<SessionMaterials>)>> =
                        (0..worker_count).map(|_| Vec::new()).collect();
                    for (k, lane) in lanes.into_iter().enumerate() {
                        if !lane.is_empty() {
                            per_worker[k % worker_count].push((k, lane));
                        }
                    }
                    let mut jobs = 0;
                    for (worker, assigned) in per_worker.into_iter().enumerate() {
                        if !assigned.is_empty() {
                            crew[worker]
                                .send((window_id, assigned))
                                .map_err(|_| TripError::Boundary("ceremony crew died".into()))?;
                            jobs += 1;
                        }
                    }
                    Ok(jobs)
                };

            // Result batches of different windows may interleave on the
            // shared channel (crew members run ahead); stash strays.
            let mut stash: HashMap<u64, Vec<Vec<SessionResult>>> = HashMap::new();
            let mut collect =
                |window_id: u64, expected: usize| -> Result<Vec<SessionResult>, TripError> {
                    let mut got = stash.remove(&window_id).unwrap_or_default();
                    while got.len() < expected {
                        let (id, batch) = result_rx
                            .recv()
                            .map_err(|_| TripError::Boundary("ceremony crew died".into()))?;
                        if id == window_id {
                            got.push(batch);
                        } else {
                            stash.entry(id).or_default().push(batch);
                        }
                    }
                    let mut all: Vec<_> = got.into_iter().flatten().collect();
                    all.sort_by_key(|(idx, _)| *idx);
                    Ok(all)
                };

            // Depth-2 window pipeline: dispatch w+1, then finish w.
            let mut window_id: u64 = 0;
            let mut in_flight: Option<(u64, usize)> = None;
            loop {
                let window = source.next_window(window_cap, &mut *boundary)?;
                if window.is_empty() {
                    if let Some((id, expected)) = in_flight.take() {
                        let outputs = collect(id, expected)?;
                        ledger_phase(&mut *boundary, outputs, &mut driver, sink)?;
                    }
                    break;
                }
                let expected = dispatch(window, window_id)?;
                let previous = in_flight.replace((window_id, expected));
                window_id += 1;
                if let Some((id, expected)) = previous {
                    let outputs = collect(id, expected)?;
                    ledger_phase(&mut *boundary, outputs, &mut driver, sink)?;
                }
            }
            Ok(())
        })?;

        // Trailing activation group, then the station's prefix barrier.
        if let Some(driver) = driver.as_mut() {
            driver.flush(boundary, sink)?;
        }
        boundary.sync_through(max_session.map_or(0, |m| m as u64 + 1))
    }
}

/// Voter → global index of their last planned session, over the whole
/// day's plan.
pub fn last_occurrence_of(plan: &[(VoterId, usize)]) -> HashMap<VoterId, usize> {
    let mut last = HashMap::new();
    for (i, &(voter, _)) in plan.iter().enumerate() {
        last.insert(voter, i);
    }
    last
}

/// One window's coordinator ledger phase: propagate the earliest ceremony
/// failure in session order, submit the window's envelope commitments and
/// check-out records session-tagged, then either hand the outcomes to the
/// activation driver or straight to the sink.
fn ledger_phase(
    boundary: &mut dyn RegistrarBoundary,
    outputs: Vec<(usize, Result<CeremonyOutput, TripError>)>,
    driver: &mut Option<ActivationDriver<'_>>,
    sink: &mut StationSink<'_>,
) -> Result<(), TripError> {
    let mut window_outputs = Vec::with_capacity(outputs.len());
    for (idx, result) in outputs {
        window_outputs.push((idx, result?));
    }
    let mut env_groups = Vec::with_capacity(window_outputs.len());
    let mut checkout_groups = Vec::with_capacity(window_outputs.len());
    let mut finals = Vec::with_capacity(window_outputs.len());
    for (idx, output) in window_outputs {
        let CeremonyOutput {
            believed_real,
            fakes,
            events,
            checkout,
            commitments,
            official_coupon,
            stolen,
        } = output;
        env_groups.push((idx as u64, commitments));
        checkout_groups.push((idx as u64, vec![(checkout, official_coupon)]));
        finals.push((
            idx,
            RegistrationOutcome {
                believed_real,
                fakes,
                events,
            },
            stolen,
        ));
    }
    boundary.submit_envelope_groups(env_groups)?;
    boundary.submit_checkout_groups(checkout_groups)?;
    match driver {
        Some(driver) => driver.push_window(boundary, finals, sink),
        None => {
            for (idx, outcome, stolen) in finals {
                sink(idx, outcome, None, stolen);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{register_voter_seeded, trace_shows_honest_real_flow};
    use crate::setup::TripConfig;
    use vg_crypto::HmacDrbg;

    fn config(n_voters: u64, n_kiosks: usize) -> TripConfig {
        TripConfig {
            n_voters,
            n_kiosks,
            ..TripConfig::default()
        }
    }

    fn plan(n: u64) -> Vec<(VoterId, usize)> {
        (1..=n).map(|v| (VoterId(v), (v % 3) as usize)).collect()
    }

    /// Ledger heads plus per-credential identifying bytes of a run.
    fn fingerprint(
        system: &TripSystem,
        outcomes: &[RegistrationOutcome],
    ) -> (Vec<u8>, Vec<u8>, Vec<Vec<u8>>) {
        let creds = outcomes
            .iter()
            .flat_map(|o| o.all_credentials())
            .map(|c| {
                let mut bytes = c.receipt.checkout_qr.kiosk_sig.to_bytes().to_vec();
                bytes.extend_from_slice(&c.receipt.response_qr.credential_sk.to_bytes());
                bytes.extend_from_slice(&c.envelope.challenge.to_bytes());
                bytes
            })
            .collect();
        (
            system.ledger.registration.tree_head().root.to_vec(),
            system.ledger.envelopes.tree_head().root.to_vec(),
            creds,
        )
    }

    #[test]
    fn fleet_matches_sequential_seeded_reference() {
        let seed = [5u8; 32];
        let queue = plan(5);

        let mut rng = HmacDrbg::from_u64(1);
        let mut seq_system = TripSystem::setup(config(5, 2), &mut rng);
        let mut seq_outcomes = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            seq_outcomes
                .push(register_voter_seeded(&mut seq_system, voter, fakes, &seed, i).unwrap());
        }

        // The same deterministic setup, drained through the fleet with a
        // small pool window and several workers.
        let mut rng = HmacDrbg::from_u64(1);
        let mut fleet_system = TripSystem::setup(config(5, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 2,
            threads: 3,
            seed,
        });
        let fleet_outcomes = fleet.register(&mut fleet_system, &queue).unwrap();

        assert_eq!(
            fingerprint(&seq_system, &seq_outcomes),
            fingerprint(&fleet_system, &fleet_outcomes),
        );
        for outcome in &fleet_outcomes {
            assert!(trace_shows_honest_real_flow(&outcome.events));
        }
    }

    #[test]
    fn fleet_activation_matches_sequential_activation() {
        let seed = [8u8; 32];
        let queue = plan(4);

        let mut rng = HmacDrbg::from_u64(2);
        let mut seq_system = TripSystem::setup(config(4, 2), &mut rng);
        let mut seq_creds = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            let mut outcome =
                register_voter_seeded(&mut seq_system, voter, fakes, &seed, i).unwrap();
            let vsd =
                crate::protocol::activate_all(&mut seq_system, &mut outcome, &mut rng).unwrap();
            seq_creds.extend(vsd.credentials.into_iter().map(|c| c.key.secret()));
        }

        let mut rng = HmacDrbg::from_u64(2);
        let mut fleet_system = TripSystem::setup(config(4, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 3,
            threads: 2,
            seed,
        });
        let sessions = fleet
            .register_and_activate(&mut fleet_system, &queue)
            .unwrap();
        let fleet_creds: Vec<_> = sessions
            .iter()
            .flat_map(|(_, vsd)| vsd.credentials.iter().map(|c| c.key.secret()))
            .collect();
        assert_eq!(seq_creds, fleet_creds);
        assert_eq!(
            seq_system.ledger.envelopes.revealed_count(),
            fleet_system.ledger.envelopes.revealed_count()
        );
        assert_eq!(fleet_system.ledger.registration.active_count(), 4);
    }

    #[test]
    fn kiosk_journals_stay_per_session_ordered() {
        let mut rng = HmacDrbg::from_u64(3);
        let mut system = TripSystem::setup(config(9, 3), &mut rng);
        let fleet = KioskFleet::new(FleetConfig {
            pool_batch: 4,
            threads: 3,
            seed: [1u8; 32],
        });
        fleet.register(&mut system, &plan(9)).unwrap();
        // Kiosk k served sessions k, k+3, k+6 — in that order, each trace
        // contiguous and honest.
        for (k, kiosk) in system.kiosks.iter().enumerate() {
            let journal = kiosk.journal();
            let voters: Vec<u64> = journal.iter().map(|t| t.voter_id.0).collect();
            assert_eq!(
                voters,
                vec![k as u64 + 1, k as u64 + 4, k as u64 + 7],
                "kiosk {k} journal order"
            );
            for trace in &journal {
                assert_eq!(trace.events[0], KioskEvent::SessionStarted);
                assert!(trace_shows_honest_real_flow(&trace.events));
            }
        }
    }

    #[test]
    fn duplicate_voter_in_queue_activates_only_last_registration() {
        let mut rng = HmacDrbg::from_u64(5);
        let mut system = TripSystem::setup(config(3, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig::seeded([7u8; 32]));
        // Voter 1 re-registers at the end of the same queue.
        let queue = vec![
            (VoterId(1), 1),
            (VoterId(2), 0),
            (VoterId(3), 0),
            (VoterId(1), 0),
        ];
        let sessions = fleet.register_and_activate(&mut system, &queue).unwrap();
        assert_eq!(system.ledger.registration.active_count(), 3);
        // The superseded first session comes back with an empty device;
        // the re-registration's credentials activate.
        assert!(sessions[0].1.credentials.is_empty());
        assert_eq!(sessions[1].1.credentials.len(), 1);
        assert_eq!(sessions[2].1.credentials.len(), 1);
        assert_eq!(sessions[3].1.credentials.len(), 1);
        assert_eq!(
            sessions[3].0.believed_real.receipt.checkout_qr.voter_id,
            VoterId(1)
        );
    }

    #[test]
    fn malicious_kiosk_inside_fleet_still_caught() {
        let mut rng = HmacDrbg::from_u64(4);
        let mut system = TripSystem::setup_with_behavior(
            config(4, 2),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let fleet = KioskFleet::new(FleetConfig::seeded([6u8; 32]));
        let queue = plan(4);
        let sessions = fleet.register_and_activate(&mut system, &queue).unwrap();
        // Every stolen key was collected, in queue order.
        assert_eq!(system.adversary_loot.len(), 4);
        let looted: Vec<u64> = system.adversary_loot.iter().map(|s| s.voter_id.0).collect();
        assert_eq!(looted, vec![1, 2, 3, 4]);
        for (outcome, vsd) in &sessions {
            // The forged "real" credential still activates (Fig 11 cannot
            // tell) — only the booth ordering betrays the kiosk.
            assert!(!vsd.credentials.is_empty());
            assert!(!trace_shows_honest_real_flow(&outcome.events));
        }
    }
}
