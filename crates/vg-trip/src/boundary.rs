//! The registrar boundary: everything the fleet coordinator asks of the
//! registrar side of a deployment, as one narrow trait.
//!
//! In the paper's deployment (§6) the kiosks, the registration officials'
//! desks, the envelope printers and the public ledgers are **separate
//! machines**. [`RegistrarBoundary`] is the seam along which this
//! reproduction splits them: the fleet (kiosks plus their coordinator)
//! drives the voter-facing ceremonies and talks to the registrar only
//! through these calls — check-in tickets, envelope print fulfilment,
//! batched ledger submissions and the activation ledger phase.
//!
//! Two implementations exist:
//!
//! - [`LocalBoundary`] (here): direct, zero-copy calls into the
//!   in-process registrar state — today's behavior, and the reference a
//!   remote run must equal bit-identically.
//! - `vg-service`'s `ServiceBoundary`: the same calls encoded as typed,
//!   versioned wire messages over a transport (in-process dispatch or a
//!   length-prefixed TCP socket), with ledger submissions coalesced by an
//!   asynchronous ingestion queue.
//!
//! # Submission semantics
//!
//! [`RegistrarBoundary::submit_envelopes`] and
//! [`RegistrarBoundary::submit_checkouts`] are **ordered, asynchronous
//! submissions**: the boundary promises that batches are admitted to each
//! ledger in submission order, but may defer admission (coalescing several
//! windows into one RLC-folded sweep) until [`RegistrarBoundary::sync`].
//! An admission failure therefore surfaces either at the submitting call
//! or at the next `sync` — callers that need errors attributed before
//! proceeding (the fleet does, before activating a window) place a `sync`
//! barrier. [`LocalBoundary`] admits synchronously, so its tickets resolve
//! immediately; the fleet's replay contract (ledger heads bit-identical to
//! the sequential reference) holds for any conforming implementation
//! because Merkle roots depend only on record order, not on batching.

use vg_crypto::schnorr::NonceCoupon;
use vg_crypto::CompressedPoint;
use vg_ledger::{EnvelopeCommitment, Ledger, TreeHead, VoterId};

use crate::ceremony::PrintJob;
use crate::error::TripError;
use crate::materials::{CheckInTicket, CheckOutQr, Envelope};
use crate::official::Official;
use crate::printer::EnvelopePrinter;
use crate::vsd::{activation_ledger_phase, ActivationClaim};

/// An opaque receipt for an asynchronous ledger submission. Monotonically
/// increasing per boundary; resolved (admitted or failed) no later than
/// the next [`RegistrarBoundary::sync`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IngestTicket(pub u64);

/// The registrar-side operations a fleet run needs, in coordinator call
/// order. See the [module docs](self) for the deployment picture and the
/// submission semantics.
pub trait RegistrarBoundary {
    /// Check-in (Fig 8): the official authenticates `voter` against the
    /// roster and issues a kiosk-session ticket.
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError>;

    /// Envelope print fulfilment: signs (and prepares ledger commitments
    /// for) one envelope per job, in job order. The commitments are *not*
    /// posted here — the coordinator submits them in queue order via
    /// [`RegistrarBoundary::submit_envelopes`].
    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError>;

    /// Submits a window's envelope commitments for admission to L_E
    /// (ordered, possibly deferred; see the module docs).
    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError>;

    /// Submits a window's check-out tickets (Fig 10): the official
    /// verifies the kiosk signatures, countersigns from the sessions'
    /// coupons, and the records are admitted to L_R (ordered, possibly
    /// deferred).
    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError>;

    /// Barrier: drives every outstanding submission to admission and
    /// surfaces the earliest failure. After `Ok(())`, the ledgers reflect
    /// all prior submissions.
    fn sync(&mut self) -> Result<(), TripError>;

    /// [`RegistrarBoundary::submit_envelopes`] with per-session tagging:
    /// `groups` pairs each global session index with that session's
    /// commitments, in session order. A single-connection boundary admits
    /// them exactly as the flattened submission (the default); a
    /// multi-station registrar uses the indices to restore global queue
    /// order across stations before admission, so the ledgers stay
    /// bit-identical to the sequential reference no matter which station
    /// finished first.
    fn submit_envelope_groups(
        &mut self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<IngestTicket, TripError> {
        self.submit_envelopes(groups.into_iter().flat_map(|(_, g)| g).collect())
    }

    /// [`RegistrarBoundary::submit_checkouts`] with per-session tagging;
    /// same ordering contract as
    /// [`RegistrarBoundary::submit_envelope_groups`].
    fn submit_checkout_groups(
        &mut self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<IngestTicket, TripError> {
        self.submit_checkouts(groups.into_iter().flat_map(|(_, g)| g).collect())
    }

    /// Prefix barrier: returns once every session with global index below
    /// `sessions` is admitted on both ledgers. On a single-connection
    /// boundary all own submissions are the whole prefix, so the default
    /// full [`RegistrarBoundary::sync`] is equivalent; a multi-station
    /// registrar may need to wait for *other* stations' earlier sessions
    /// to arrive before this station's activation cross-checks can run.
    fn sync_through(&mut self, sessions: u64) -> Result<(), TripError> {
        let _ = sessions;
        self.sync()
    }

    /// The activation ledger phase (Fig 11 lines 9–11) for a batch of
    /// claims, in order: L_R cross-check and L_E challenge reveal per
    /// claim, stopping at the first failure exactly as a sequential loop
    /// of [`crate::vsd::activate`] would.
    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError>;

    /// The registration ledger's signed tree head (implies a `sync`).
    fn registration_head(&mut self) -> Result<TreeHead, TripError>;

    /// The envelope ledger's signed tree head (implies a `sync`).
    fn envelope_head(&mut self) -> Result<TreeHead, TripError>;
}

/// The in-process registrar: direct calls into borrowed registrar state,
/// admitting every submission synchronously. This is the zero-copy
/// reference implementation of [`RegistrarBoundary`].
pub struct LocalBoundary<'a> {
    official: &'a Official,
    printer: &'a EnvelopePrinter,
    ledger: &'a mut Ledger,
    kiosk_registry: &'a [CompressedPoint],
    threads: usize,
    next_ticket: u64,
}

impl<'a> LocalBoundary<'a> {
    /// Wraps the registrar parts of a deployment.
    pub fn new(
        official: &'a Official,
        printer: &'a EnvelopePrinter,
        ledger: &'a mut Ledger,
        kiosk_registry: &'a [CompressedPoint],
        threads: usize,
    ) -> Self {
        Self {
            official,
            printer,
            ledger,
            kiosk_registry,
            threads: threads.max(1),
            next_ticket: 0,
        }
    }

    fn ticket(&mut self) -> IngestTicket {
        let t = IngestTicket(self.next_ticket);
        self.next_ticket += 1;
        t
    }
}

impl RegistrarBoundary for LocalBoundary<'_> {
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError> {
        self.official.check_in(self.ledger, voter)
    }

    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError> {
        Ok(vg_crypto::par::par_map(jobs, self.threads, |job| {
            self.printer.print_detached(job.challenge, job.symbol)
        }))
    }

    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError> {
        self.ledger
            .envelopes
            .commit_batch(commitments, self.threads)
            .map_err(TripError::Ledger)?;
        Ok(self.ticket())
    }

    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError> {
        self.official
            .check_out_batch(self.ledger, checkouts, self.kiosk_registry, self.threads)?;
        Ok(self.ticket())
    }

    fn sync(&mut self) -> Result<(), TripError> {
        // Everything was admitted at submission time.
        Ok(())
    }

    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError> {
        for claim in claims {
            activation_ledger_phase(self.ledger, claim)?;
        }
        Ok(())
    }

    fn registration_head(&mut self) -> Result<TreeHead, TripError> {
        Ok(self.ledger.registration.tree_head())
    }

    fn envelope_head(&mut self) -> Result<TreeHead, TripError> {
        Ok(self.ledger.envelopes.tree_head())
    }
}
