//! The end-to-end TRIP registration workflow (Fig 1, Fig 6).
//!
//! Orchestrates one voter's visit: check-in with an official, the in-booth
//! kiosk session (real credential, then any number of fakes), check-out,
//! and later activation on the voter's device. The orchestration follows
//! the voter's perspective of §3.2 and drives the actor APIs of
//! [`crate::official`], [`crate::kiosk`] and [`crate::vsd`].

use vg_crypto::drbg::Rng;
use vg_ledger::VoterId;

use crate::error::TripError;
use crate::kiosk::{KioskBehavior, KioskEvent};
use crate::materials::PaperCredential;
use crate::setup::TripSystem;
use crate::vsd::Vsd;

/// The result of one registration session.
pub struct RegistrationOutcome {
    /// The credential the voter believes is real (it *is* real iff the
    /// kiosk was honest), marked with the voter's convention.
    pub believed_real: PaperCredential,
    /// The fake credentials created on request.
    pub fakes: Vec<PaperCredential>,
    /// The kiosk event trace the voter observed in the booth.
    pub events: Vec<KioskEvent>,
}

impl RegistrationOutcome {
    /// All paper credentials, believed-real first.
    pub fn all_credentials(&self) -> Vec<&PaperCredential> {
        let mut v = vec![&self.believed_real];
        v.extend(self.fakes.iter());
        v
    }
}

/// Runs a complete registration session for `voter_id`, creating one real
/// and `n_fakes` fake credentials, then checking out with the first
/// credential.
///
/// If the kiosk is compromised ([`KioskBehavior::StealsRealCredential`]),
/// the "real" credential handed to the voter is forged and the stolen key
/// is appended to [`TripSystem::adversary_loot`]; the returned event trace
/// shows the tell-tale wrong ordering.
pub fn register_voter(
    system: &mut TripSystem,
    voter_id: VoterId,
    n_fakes: usize,
    rng: &mut dyn Rng,
) -> Result<RegistrationOutcome, TripError> {
    // Keep the booth stocked above the λ_E floor: a low supply would leak
    // envelope-count information to coerced voters (Appendix F.1) and can
    // run a symbol out of stock. Printers may issue additional envelopes
    // at any time (paper footnote 6).
    system.restock_booth(rng)?;

    // Check-in (Fig 1 step 1).
    let ticket = system.officials[0].check_in(&system.ledger, voter_id)?;

    // Privacy booth (Fig 1 step 2).
    let kiosk = &system.kiosks[0];
    let behavior = kiosk.behavior();
    let mut session = kiosk.begin_session(&ticket)?;

    let believed_real = match behavior {
        KioskBehavior::Honest => {
            // Real credential, 4-step process (§3.2): ticket scanned;
            // kiosk prints symbol + commit; voter picks matching envelope;
            // kiosk prints the remaining QRs.
            let symbol = session.begin_real_credential(rng)?.symbol();
            let envelope = match crate::setup::take_envelope_with_symbol(
                &mut system.booth_envelopes,
                symbol,
            ) {
                Some(env) => env,
                // The symbol ran out: the registrar prints fresh envelopes
                // until a matching one appears (footnote 6), leaving the
                // extras in the booth.
                None => loop {
                    let env = system.printers[0]
                        .print_one(
                            &mut system.ledger.envelopes,
                            rng.scalar(),
                            crate::materials::Symbol::random(rng),
                        )
                        .map_err(TripError::Ledger)?;
                    if env.symbol == symbol {
                        break env;
                    }
                    system.booth_envelopes.push(env);
                },
            };
            let receipt = session.finish_real_credential(&envelope)?;
            PaperCredential::assemble(receipt, envelope)
        }
        KioskBehavior::StealsRealCredential => {
            // The compromised kiosk asks for an envelope up front.
            let envelope = crate::setup::take_any_envelope(&mut system.booth_envelopes, rng)
                .ok_or(TripError::NoMatchingEnvelope)?;
            let (receipt, stolen) = session.malicious_real_credential(&envelope, rng)?;
            system.adversary_loot.push(stolen);
            PaperCredential::assemble(receipt, envelope)
        }
    };

    // Fake credentials, 2-step process each.
    let mut fakes = Vec::with_capacity(n_fakes);
    for _ in 0..n_fakes {
        let envelope = crate::setup::take_any_envelope(&mut system.booth_envelopes, rng)
            .ok_or(TripError::NoMatchingEnvelope)?;
        let receipt = session.create_fake_credential(&envelope, rng)?;
        fakes.push(PaperCredential::assemble(receipt, envelope));
    }

    // The voter privately marks the credentials (§3.2).
    let mut believed_real = believed_real;
    believed_real.mark("R");
    for (i, fake) in fakes.iter_mut().enumerate() {
        fake.mark(&format!("F{i}"));
    }

    // Check-out (Fig 1 step 3) with any one credential — they all carry
    // the same check-out ticket.
    let view = believed_real.transport_view()?;
    system.officials[0].check_out(&mut system.ledger, view.checkout, &system.kiosk_registry)?;

    Ok(RegistrationOutcome {
        believed_real,
        fakes,
        events: session.finish(),
    })
}

/// The sequential reference for the kiosk-fleet engine: registers one
/// voter from ceremony-pool material derived for `(seed, session_index)`,
/// serving them on kiosk `session_index mod |K|` and posting to the
/// ledgers immediately.
///
/// A loop of this function over a check-in queue produces ledgers,
/// credentials and event traces **bit-identical** to a
/// [`crate::fleet::KioskFleet`] run over the same `(seed, queue)` with any
/// kiosk count equal to `|K|`, any pool batch size and any thread count —
/// the replay/equivalence contract the fleet's property tests pin down.
/// Unlike [`register_voter`] it does not consume the booth envelope
/// supply: the pool prints per-session envelopes (footnote 6) whose
/// commitments are posted here in queue order.
pub fn register_voter_seeded(
    system: &mut TripSystem,
    voter_id: VoterId,
    n_fakes: usize,
    seed: &[u8; 32],
    session_index: usize,
) -> Result<RegistrationOutcome, TripError> {
    let kiosk_idx = session_index % system.kiosks.len().max(1);
    let malicious = system.kiosks[kiosk_idx].behavior() == KioskBehavior::StealsRealCredential;
    let materials = crate::ceremony::SessionMaterials::derive(
        seed,
        session_index,
        voter_id,
        n_fakes,
        &system.authority.public_key,
        &system.printers[0],
        malicious,
    );
    let ticket = system.officials[0].check_in(&system.ledger, voter_id)?;
    let output = crate::fleet::run_session(&system.kiosks[kiosk_idx], &ticket, materials)?;
    for commitment in output.commitments.iter().cloned() {
        system.ledger.envelopes.commit(commitment)?;
    }
    system.officials[0].check_out_with_coupon(
        &mut system.ledger,
        &output.checkout,
        output.official_coupon,
        &system.kiosk_registry,
    )?;
    if let Some(loot) = output.stolen {
        system.adversary_loot.push(loot);
    }
    Ok(RegistrationOutcome {
        believed_real: output.believed_real,
        fakes: output.fakes,
        events: output.events,
    })
}

/// Activates every credential from an outcome on a fresh device,
/// returning the device (Fig 1 step 4).
pub fn activate_all(
    system: &mut TripSystem,
    outcome: &mut RegistrationOutcome,
    rng: &mut dyn Rng,
) -> Result<Vsd, TripError> {
    let _ = rng; // Activation itself is deterministic.
    let mut vsd = Vsd::new();
    outcome.believed_real.lift_to_activate();
    let authority_pk = system.authority.public_key;
    vsd.activate(
        &outcome.believed_real,
        &mut system.ledger,
        &authority_pk,
        &system.printer_registry,
    )?;
    for fake in &mut outcome.fakes {
        fake.lift_to_activate();
        vsd.activate(
            fake,
            &mut system.ledger,
            &authority_pk,
            &system.printer_registry,
        )?;
    }
    Ok(vsd)
}

/// The result of a delegation session (extension C.3): the voter leaves
/// the booth holding only fake credentials.
pub struct DelegationOutcome {
    /// The fake credentials the voter carries out (at least one, used for
    /// check-out).
    pub fakes: Vec<PaperCredential>,
    /// The booth event trace.
    pub events: Vec<KioskEvent>,
}

/// Registers `voter_id` under extreme coercion (Appendix C.3): the kiosk
/// encrypts `party_pk` as the voter's credential tag and issues only fake
/// credentials, so a coercer searching the voter immediately afterwards
/// finds nothing but fakes. Requires `n_fakes >= 1` (check-out needs a
/// credential to scan).
pub fn register_with_delegation(
    system: &mut TripSystem,
    voter_id: VoterId,
    party_pk: &vg_crypto::EdwardsPoint,
    n_fakes: usize,
    rng: &mut dyn Rng,
) -> Result<DelegationOutcome, TripError> {
    assert!(
        n_fakes >= 1,
        "delegation needs at least one fake for check-out"
    );
    let ticket = system.officials[0].check_in(&system.ledger, voter_id)?;
    let kiosk = &system.kiosks[0];
    let mut session = kiosk.begin_session(&ticket)?;
    session.delegate_to_party(party_pk, rng)?;

    let mut fakes = Vec::with_capacity(n_fakes);
    for i in 0..n_fakes {
        let envelope = crate::setup::take_any_envelope(&mut system.booth_envelopes, rng)
            .ok_or(TripError::NoMatchingEnvelope)?;
        let receipt = session.create_fake_credential(&envelope, rng)?;
        let mut cred = PaperCredential::assemble(receipt, envelope);
        cred.mark(&format!("D{i}"));
        fakes.push(cred);
    }
    let view = fakes[0].transport_view()?;
    system.officials[0].check_out(&mut system.ledger, view.checkout, &system.kiosk_registry)?;
    Ok(DelegationOutcome {
        fakes,
        events: session.finish(),
    })
}

/// Returns `true` if the event trace shows the honest real-credential
/// ordering: a commit printed before any envelope is scanned.
///
/// This is the observable a trained voter checks (§4.4, §7.5).
pub fn trace_shows_honest_real_flow(events: &[KioskEvent]) -> bool {
    for event in events {
        match event {
            KioskEvent::PrintedSymbolAndCommit { .. } => return true,
            KioskEvent::ScannedEnvelope { .. } => return false,
            _ => continue,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ActivationCheck;
    use crate::setup::TripConfig;
    use vg_crypto::HmacDrbg;

    #[test]
    fn full_registration_and_activation() {
        let mut rng = HmacDrbg::from_u64(1);
        let mut system = TripSystem::setup(TripConfig::with_voters(3), &mut rng);
        let mut outcome = register_voter(&mut system, VoterId(1), 2, &mut rng).expect("registers");
        assert_eq!(outcome.fakes.len(), 2);
        assert!(trace_shows_honest_real_flow(&outcome.events));
        assert_eq!(system.ledger.registration.active_count(), 1);

        let vsd = activate_all(&mut system, &mut outcome, &mut rng).expect("activates");
        assert_eq!(vsd.credentials.len(), 3);
        // All three credentials share the same public tag.
        let tag = vsd.credentials[0].c_pc;
        assert!(vsd.credentials.iter().all(|c| c.c_pc == tag));
        // But have distinct key pairs.
        let pks: std::collections::HashSet<_> =
            vsd.credentials.iter().map(|c| c.public_key()).collect();
        assert_eq!(pks.len(), 3);
        // Three challenges were revealed on L_E.
        assert_eq!(system.ledger.envelopes.revealed_count(), 3);
    }

    #[test]
    fn malicious_kiosk_trace_detectable_and_loot_collected() {
        let mut rng = HmacDrbg::from_u64(2);
        let mut system = TripSystem::setup_with_behavior(
            TripConfig::with_voters(2),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let outcome = register_voter(&mut system, VoterId(1), 1, &mut rng).expect("registers");
        assert!(!trace_shows_honest_real_flow(&outcome.events));
        assert_eq!(system.adversary_loot.len(), 1);
        assert_eq!(system.adversary_loot[0].voter_id, VoterId(1));
    }

    #[test]
    fn stolen_credential_passes_activation_checks() {
        // The voter cannot tell cryptographically: the forged "real"
        // credential still activates (all Fig 11 checks pass). Only the
        // process ordering betrays the kiosk.
        let mut rng = HmacDrbg::from_u64(3);
        let mut system = TripSystem::setup_with_behavior(
            TripConfig::with_voters(2),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let mut outcome = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
        let vsd = activate_all(&mut system, &mut outcome, &mut rng).expect("activates");
        assert_eq!(vsd.credentials.len(), 1);
    }

    #[test]
    fn double_activation_detected() {
        let mut rng = HmacDrbg::from_u64(4);
        let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);
        let mut outcome = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
        activate_all(&mut system, &mut outcome, &mut rng).expect("first activation");
        // Re-activating the same credential trips the duplicate-challenge
        // detector (replay of the envelope challenge).
        let mut vsd = Vsd::new();
        let authority_pk = system.authority.public_key;
        let err = vsd
            .activate(
                &outcome.believed_real,
                &mut system.ledger,
                &authority_pk,
                &system.printer_registry,
            )
            .unwrap_err();
        assert_eq!(
            err,
            TripError::Activation(ActivationCheck::DuplicateChallenge)
        );
    }

    #[test]
    fn re_registration_invalidates_old_credentials() {
        let mut rng = HmacDrbg::from_u64(5);
        let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);
        let mut first = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
        // Voter re-registers before activating the first credential.
        let mut second = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
        assert_eq!(system.ledger.registration.active_count(), 1);

        // The first credential now fails the ledger cross-check.
        first.believed_real.lift_to_activate();
        let mut vsd = Vsd::new();
        let authority_pk = system.authority.public_key;
        let err = vsd
            .activate(
                &first.believed_real,
                &mut system.ledger,
                &authority_pk,
                &system.printer_registry,
            )
            .unwrap_err();
        assert_eq!(err, TripError::Activation(ActivationCheck::LedgerMismatch));

        // The second works.
        let vsd = activate_all(&mut system, &mut second, &mut rng).unwrap();
        assert_eq!(vsd.credentials.len(), 1);
    }

    #[test]
    fn many_voters_register_independently() {
        let mut rng = HmacDrbg::from_u64(6);
        let mut system = TripSystem::setup(TripConfig::with_voters(5), &mut rng);
        for v in 1..=5u64 {
            let n_fakes = (v % 3) as usize;
            let mut outcome = register_voter(&mut system, VoterId(v), n_fakes, &mut rng)
                .unwrap_or_else(|e| panic!("voter {v}: {e}"));
            let vsd = activate_all(&mut system, &mut outcome, &mut rng).unwrap();
            assert_eq!(vsd.credentials.len(), 1 + n_fakes);
        }
        assert_eq!(system.ledger.registration.active_count(), 5);
    }
}
