//! Typed request/response messages for the four registrar services, with
//! canonical [`Wire`] encodings.
//!
//! Every message is built from the protocol's natural units — check-in
//! tickets, check-out QRs, envelope commitments, print jobs, activation
//! claims, signed tree heads — encoded under the strict
//! `vg_crypto::codec` rules: points validated on decode, scalars
//! canonical, collection lengths bounded, trailing bytes rejected. The
//! round-trip property tests at the workspace root
//! (`tests/service.rs`) cover every type here, plus truncation and
//! garbage-frame fuzzing.

use vg_crypto::codec::{put_ciphertext, put_scalar, put_u64, Reader};
use vg_crypto::elgamal::Ciphertext;
use vg_crypto::schnorr::{NonceCoupon, Signature};
use vg_crypto::{CompressedPoint, CryptoError, Scalar};
use vg_ledger::{EnvelopeCommitment, TreeHead, VoterId};
use vg_trip::materials::{CheckInTicket, CheckOutQr, Envelope, Symbol};
use vg_trip::vsd::ActivationClaim;
use vg_trip::PrintJob;

use crate::wire::Wire;

impl Wire for VoterId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(VoterId(r.u64()?))
    }
}

impl Wire for Scalar {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_scalar(buf, self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.scalar()
    }
}

/// Transported as the raw 32-byte encoding: registry membership and
/// record cross-checks compare encodings; any arithmetic use goes through
/// `VerifyingKey::from_compressed`, which re-validates.
impl Wire for CompressedPoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.compressed_point()
    }
}

impl Wire for Ciphertext {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_ciphertext(buf, self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.ciphertext()
    }
}

impl Wire for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Signature::from_bytes(&r.bytes64()?)
    }
}

impl Wire for Symbol {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let tag = r.u8()?;
        Symbol::ALL
            .into_iter()
            // vg-lint: allow(ct-compare) symbol tags are public wire discriminants, not secrets
            .find(|s| s.tag() == tag)
            .ok_or(CryptoError::Malformed("unknown symbol tag"))
    }
}

impl Wire for CheckInTicket {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.voter_id.encode(buf);
        buf.extend_from_slice(&self.tag);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(CheckInTicket {
            voter_id: VoterId::decode(r)?,
            tag: r.bytes32()?,
        })
    }
}

impl Wire for CheckOutQr {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.voter_id.encode(buf);
        self.c_pc.encode(buf);
        self.kiosk_pk.encode(buf);
        self.kiosk_sig.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(CheckOutQr {
            voter_id: VoterId::decode(r)?,
            c_pc: Ciphertext::decode(r)?,
            kiosk_pk: CompressedPoint::decode(r)?,
            kiosk_sig: Signature::decode(r)?,
        })
    }
}

impl Wire for Envelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.printer_pk.encode(buf);
        put_scalar(buf, &self.challenge);
        self.signature.encode(buf);
        self.symbol.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(Envelope {
            printer_pk: CompressedPoint::decode(r)?,
            challenge: r.scalar()?,
            signature: Signature::decode(r)?,
            symbol: Symbol::decode(r)?,
        })
    }
}

impl Wire for EnvelopeCommitment {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.printer_pk.encode(buf);
        buf.extend_from_slice(&self.challenge_hash);
        self.signature.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(EnvelopeCommitment {
            printer_pk: CompressedPoint::decode(r)?,
            challenge_hash: r.bytes32()?,
            signature: Signature::decode(r)?,
        })
    }
}

impl Wire for PrintJob {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_scalar(buf, &self.challenge);
        self.symbol.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(PrintJob {
            challenge: r.scalar()?,
            symbol: Symbol::decode(r)?,
        })
    }
}

impl Wire for ActivationClaim {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.voter_id.encode(buf);
        self.c_pc.encode(buf);
        self.kiosk_pk.encode(buf);
        put_scalar(buf, &self.challenge);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(ActivationClaim {
            voter_id: VoterId::decode(r)?,
            c_pc: Ciphertext::decode(r)?,
            kiosk_pk: CompressedPoint::decode(r)?,
            challenge: r.scalar()?,
        })
    }
}

impl Wire for TreeHead {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.size);
        buf.extend_from_slice(&self.root);
        self.signature.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(TreeHead {
            size: r.u64()?,
            root: r.bytes32()?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A signing-nonce coupon in transit between the ceremony pool and the
/// registrar's check-out desk. See [`NonceCoupon::into_parts`] for the
/// trust caveat: this crosses the boundary **only** because pool and
/// official are two halves of the registrar; it is key-grade material.
#[derive(PartialEq, Eq)]
pub struct WireCoupon {
    /// The nonce scalar k.
    pub k: Scalar,
    /// The precomputed commitment R = k·B.
    pub r: CompressedPoint,
}

impl core::fmt::Debug for WireCoupon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the nonce scalar (same hygiene as `NonceCoupon`:
        // k plus the published signature recovers the signing key), even
        // through derived Debug on the enclosing request types.
        write!(f, "WireCoupon(r={:?})", self.r)
    }
}

impl From<NonceCoupon> for WireCoupon {
    fn from(c: NonceCoupon) -> Self {
        let (k, r) = c.into_parts();
        Self { k, r }
    }
}

impl From<WireCoupon> for NonceCoupon {
    fn from(w: WireCoupon) -> Self {
        NonceCoupon::from_parts(w.k, w.r)
    }
}

impl Wire for WireCoupon {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_scalar(buf, &self.k);
        self.r.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(WireCoupon {
            k: r.scalar()?,
            r: CompressedPoint::decode(r)?,
        })
    }
}

macro_rules! wire_struct {
    ($(#[$doc:meta])* $name:ident { $($(#[$fdoc:meta])* $field:ident : $ty:ty),* $(,)? }) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            $($(#[$fdoc])* pub $field: $ty,)*
        }

        impl Wire for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$field.encode(buf);)*
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
                Ok(Self { $($field: <$ty>::decode(r)?,)* })
            }
        }
    };
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.u64()
    }
}

wire_struct! {
    /// Check-in (Fig 8): authenticate a voter, get a session ticket.
    CheckInRequest { voter: VoterId }
}

wire_struct! {
    /// The issued kiosk-session ticket.
    CheckInResponse { ticket: CheckInTicket }
}

wire_struct! {
    /// A window's check-out tickets with the officials' signing coupons.
    CheckOutBatchRequest { checkouts: Vec<(CheckOutQr, WireCoupon)> }
}

wire_struct! {
    /// Acknowledgement of an accepted (possibly still pending) check-out
    /// submission.
    CheckOutBatchResponse { ticket: u64 }
}

wire_struct! {
    /// Envelope print fulfilment for a pool refill.
    PrintRequest { jobs: Vec<PrintJob> }
}

wire_struct! {
    /// The printed envelopes with their not-yet-posted ledger commitments,
    /// in job order.
    PrintResponse { envelopes: Vec<(Envelope, EnvelopeCommitment)> }
}

wire_struct! {
    /// A window's envelope commitments for L_E admission.
    EnvelopeSubmitRequest { commitments: Vec<EnvelopeCommitment> }
}

wire_struct! {
    /// Acknowledgement of a queued ledger submission.
    IngestReceipt { ticket: u64 }
}

wire_struct! {
    /// Signed tree heads of both registrar ledgers (implies a sync).
    LedgerHeads { registration: TreeHead, envelopes: TreeHead }
}

wire_struct! {
    /// Activation ledger-phase claims (Fig 11 lines 9–11), in order.
    ActivationSweepRequest { claims: Vec<ActivationClaim> }
}

wire_struct! {
    /// Session-tagged envelope commitments from one polling station:
    /// each group pairs a *global* session index with that session's
    /// commitments. The registrar's ingest worker restores global queue
    /// order across stations before admission, so multi-connection days
    /// stay bit-identical to the sequential reference.
    SeqEnvelopeSubmitRequest { groups: Vec<(u64, Vec<EnvelopeCommitment>)> }
}

wire_struct! {
    /// Session-tagged check-out tickets (same ordering contract as
    /// [`SeqEnvelopeSubmitRequest`]; one ticket per session).
    SeqCheckOutRequest { groups: Vec<(u64, Vec<(CheckOutQr, WireCoupon)>)> }
}

wire_struct! {
    /// Prefix barrier: resolve once every session with global index below
    /// `sessions` is admitted on both ledgers.
    SyncThroughRequest { sessions: u64 }
}

wire_struct! {
    /// Ingest coalescing and worker-utilization telemetry: batches
    /// admitted and sweeps run per ledger (the coalescing ratio is
    /// `batches / sweeps`), plus cumulative busy and idle time in
    /// microseconds summed over every ingest thread — the sharded
    /// verification workers and the commit sequencer (zero on a
    /// barrier-mode host with no worker thread) — the number of shard
    /// workers that served the day (`0` on a barrier host), and the
    /// durability counters from the WAL backend (records appended and
    /// group fsyncs issued; zero on the volatile backends), and the
    /// count of WAL IO failures absorbed as typed errors (nonzero only
    /// on days degraded by real or injected disk faults).
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    IngestStatsReply {
        env_batches: u64,
        env_sweeps: u64,
        reg_batches: u64,
        reg_sweeps: u64,
        worker_busy_us: u64,
        worker_idle_us: u64,
        wal_records: u64,
        wal_fsyncs: u64,
        workers: u64,
        wal_failures: u64
    }
}

/// A client request, tagged for dispatch.
#[derive(Debug)]
pub enum Request {
    /// [`crate::traits::RegistrarService::check_in`].
    CheckIn(CheckInRequest),
    /// [`crate::traits::RegistrarService::check_out_batch`].
    CheckOutBatch(CheckOutBatchRequest),
    /// [`crate::traits::PrintService::print_envelopes`].
    Print(PrintRequest),
    /// [`crate::traits::LedgerIngestService::submit_envelopes`].
    SubmitEnvelopes(EnvelopeSubmitRequest),
    /// [`crate::traits::LedgerIngestService::sync`].
    Sync,
    /// [`crate::traits::LedgerIngestService::ledger_heads`].
    LedgerHeads,
    /// [`crate::traits::ActivationService::activation_sweep`].
    ActivationSweep(ActivationSweepRequest),
    /// Ends the connection; the server loop exits cleanly.
    Shutdown,
    /// [`crate::traits::LedgerIngestService::submit_envelope_groups`].
    SubmitEnvelopesSeq(SeqEnvelopeSubmitRequest),
    /// [`crate::traits::RegistrarService::check_out_groups`].
    CheckOutBatchSeq(SeqCheckOutRequest),
    /// [`crate::traits::LedgerIngestService::sync_through`].
    SyncThrough(SyncThroughRequest),
    /// [`crate::traits::LedgerIngestService::ingest_stats`].
    IngestStats,
}

/// A server response. Tag values mirror [`Request`] (15 is the error
/// response).
#[derive(Debug)]
pub enum Response {
    /// Check-in succeeded.
    CheckIn(CheckInResponse),
    /// Check-out batch accepted.
    CheckOutBatch(CheckOutBatchResponse),
    /// Envelopes printed.
    Print(PrintResponse),
    /// Envelope submission queued.
    SubmitEnvelopes(IngestReceipt),
    /// All submissions admitted.
    Sync,
    /// The current tree heads.
    LedgerHeads(LedgerHeads),
    /// All claims admitted.
    ActivationSweep,
    /// Shutdown acknowledged.
    Shutdown,
    /// Sequenced envelope submission queued.
    SubmitEnvelopesSeq(IngestReceipt),
    /// Sequenced check-out batch accepted.
    CheckOutBatchSeq(CheckOutBatchResponse),
    /// The prefix is admitted.
    SyncThrough,
    /// Current ingest telemetry.
    IngestStats(IngestStatsReply),
    /// The request failed.
    Err(crate::error::ServiceError),
}

impl Request {
    /// Encodes as a sealed wire message.
    pub fn to_wire(&self) -> Vec<u8> {
        let (tag, body) = match self {
            Request::CheckIn(m) => (0u16, m.to_bytes()),
            Request::CheckOutBatch(m) => (1, m.to_bytes()),
            Request::Print(m) => (2, m.to_bytes()),
            Request::SubmitEnvelopes(m) => (3, m.to_bytes()),
            Request::Sync => (4, Vec::new()),
            Request::LedgerHeads => (5, Vec::new()),
            Request::ActivationSweep(m) => (6, m.to_bytes()),
            Request::Shutdown => (7, Vec::new()),
            Request::SubmitEnvelopesSeq(m) => (8, m.to_bytes()),
            Request::CheckOutBatchSeq(m) => (9, m.to_bytes()),
            Request::SyncThrough(m) => (10, m.to_bytes()),
            Request::IngestStats => (11, Vec::new()),
        };
        crate::wire::seal(tag, &body)
    }

    /// Decodes a sealed wire message.
    pub fn from_wire(msg: &[u8]) -> Result<Self, CryptoError> {
        let (tag, mut r) = crate::wire::unseal(msg)?;
        let req = match tag {
            0 => Request::CheckIn(CheckInRequest::decode(&mut r)?),
            1 => Request::CheckOutBatch(CheckOutBatchRequest::decode(&mut r)?),
            2 => Request::Print(PrintRequest::decode(&mut r)?),
            3 => Request::SubmitEnvelopes(EnvelopeSubmitRequest::decode(&mut r)?),
            4 => Request::Sync,
            5 => Request::LedgerHeads,
            6 => Request::ActivationSweep(ActivationSweepRequest::decode(&mut r)?),
            7 => Request::Shutdown,
            8 => Request::SubmitEnvelopesSeq(SeqEnvelopeSubmitRequest::decode(&mut r)?),
            9 => Request::CheckOutBatchSeq(SeqCheckOutRequest::decode(&mut r)?),
            10 => Request::SyncThrough(SyncThroughRequest::decode(&mut r)?),
            11 => Request::IngestStats,
            _ => return Err(CryptoError::Malformed("unknown request tag")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes as a sealed wire message.
    pub fn to_wire(&self) -> Vec<u8> {
        let (tag, body) = match self {
            Response::CheckIn(m) => (0u16, m.to_bytes()),
            Response::CheckOutBatch(m) => (1, m.to_bytes()),
            Response::Print(m) => (2, m.to_bytes()),
            Response::SubmitEnvelopes(m) => (3, m.to_bytes()),
            Response::Sync => (4, Vec::new()),
            Response::LedgerHeads(m) => (5, m.to_bytes()),
            Response::ActivationSweep => (6, Vec::new()),
            Response::Shutdown => (7, Vec::new()),
            Response::SubmitEnvelopesSeq(m) => (8, m.to_bytes()),
            Response::CheckOutBatchSeq(m) => (9, m.to_bytes()),
            Response::SyncThrough => (10, Vec::new()),
            Response::IngestStats(m) => (11, m.to_bytes()),
            Response::Err(e) => {
                let mut body = Vec::new();
                crate::error::encode_error(&mut body, e);
                (15, body)
            }
        };
        crate::wire::seal(tag, &body)
    }

    /// Decodes a sealed wire message.
    pub fn from_wire(msg: &[u8]) -> Result<Self, CryptoError> {
        let (tag, mut r) = crate::wire::unseal(msg)?;
        let resp = match tag {
            0 => Response::CheckIn(CheckInResponse::decode(&mut r)?),
            1 => Response::CheckOutBatch(CheckOutBatchResponse::decode(&mut r)?),
            2 => Response::Print(PrintResponse::decode(&mut r)?),
            3 => Response::SubmitEnvelopes(IngestReceipt::decode(&mut r)?),
            4 => Response::Sync,
            5 => Response::LedgerHeads(LedgerHeads::decode(&mut r)?),
            6 => Response::ActivationSweep,
            7 => Response::Shutdown,
            8 => Response::SubmitEnvelopesSeq(IngestReceipt::decode(&mut r)?),
            9 => Response::CheckOutBatchSeq(CheckOutBatchResponse::decode(&mut r)?),
            10 => Response::SyncThrough,
            11 => Response::IngestStats(IngestStatsReply::decode(&mut r)?),
            15 => Response::Err(crate::error::decode_error(&mut r)?),
            _ => return Err(CryptoError::Malformed("unknown response tag")),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Secure-channel handshake frames.
// ---------------------------------------------------------------------

/// Client hello of the SIGMA-style secure-channel handshake: the
/// initiator's fresh ephemeral Diffie–Hellman point, sent in the clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeInit {
    /// The client's ephemeral public point.
    pub eph: CompressedPoint,
}

/// Server half of the handshake: its own ephemeral point plus the static
/// identity, a signature over the transcript hash, and a key-confirmation
/// MAC binding the identity to the derived session keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeReply {
    /// The server's ephemeral public point.
    pub eph: CompressedPoint,
    /// The server's enrolled static (signing) key.
    pub static_pk: CompressedPoint,
    /// Schnorr signature over the transcript hash under `static_pk`.
    pub sig: Signature,
    /// `HMAC(auth_key, "server" ‖ static_pk)`.
    pub confirm: [u8; 32],
}

/// Client finisher: its static identity, transcript signature and
/// key-confirmation MAC. The server checks enrolment *before* the
/// signature so an unknown key surfaces as `AuthFailed`, not
/// `HandshakeFailed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeFin {
    /// The client's enrolled static (signing) key.
    pub static_pk: CompressedPoint,
    /// Schnorr signature over the transcript hash under `static_pk`.
    pub sig: Signature,
    /// `HMAC(auth_key, "client" ‖ static_pk)`.
    pub confirm: [u8; 32],
}

/// One encrypted record on an established channel: the sealed bytes
/// (`ciphertext ‖ 32-byte tag`) of an inner `Request`/`Response` wire
/// message, sequenced by the channel's implicit frame counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedRecord {
    /// `FrameSealer::seal` output for the inner wire message.
    pub sealed: Vec<u8>,
}

impl Wire for HandshakeInit {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.eph.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(Self {
            eph: CompressedPoint::decode(r)?,
        })
    }
}

impl Wire for HandshakeReply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.eph.encode(buf);
        self.static_pk.encode(buf);
        self.sig.encode(buf);
        buf.extend_from_slice(&self.confirm);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(Self {
            eph: CompressedPoint::decode(r)?,
            static_pk: CompressedPoint::decode(r)?,
            sig: Signature::decode(r)?,
            confirm: r.bytes32()?,
        })
    }
}

impl Wire for HandshakeFin {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.static_pk.encode(buf);
        self.sig.encode(buf);
        buf.extend_from_slice(&self.confirm);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(Self {
            static_pk: CompressedPoint::decode(r)?,
            sig: Signature::decode(r)?,
            confirm: r.bytes32()?,
        })
    }
}

impl Wire for SealedRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        vg_crypto::codec::put_len(buf, self.sealed.len());
        buf.extend_from_slice(&self.sealed);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let n = r.len_prefix()?;
        Ok(Self {
            sealed: r.take(n)?.to_vec(),
        })
    }
}

/// The secure-channel frames. They share the `VGRS` envelope with
/// [`Request`]/[`Response`] but use a disjoint tag range (`0x48xx`), so a
/// plaintext peer that receives one fails with a typed "unknown tag"
/// instead of misinterpreting key material as a request — the
/// plaintext-vs-secure mismatch detection builds on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeFrame {
    /// Client hello.
    Init(HandshakeInit),
    /// Server authentication + key share.
    Reply(HandshakeReply),
    /// Client authentication.
    Fin(HandshakeFin),
    /// Encrypted application record.
    Record(SealedRecord),
}

/// First tag of the secure-channel range.
pub(crate) const HS_TAG_BASE: u16 = 0x4801;
/// Last tag of the secure-channel range.
pub(crate) const HS_TAG_LAST: u16 = 0x4810;

/// Every request tag on the wire, in variant declaration order. The
/// `vg-lint` `wire-tags` rule cross-checks this registry against the
/// `to_wire`/`from_wire` match arms in this file, and the
/// `tag_registries_match_encoded_frames` test checks it at runtime.
pub const REQUEST_TAGS: [u16; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
/// Every response tag, in variant declaration order (15 is the error
/// response).
pub const RESPONSE_TAGS: [u16; 13] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 15];
/// Every secure-channel handshake tag, all inside
/// `HS_TAG_BASE..=HS_TAG_LAST` (`0x4801..=0x4810`).
pub const HANDSHAKE_TAGS: [u16; 4] = [0x4801, 0x4802, 0x4803, 0x4810];

impl HandshakeFrame {
    /// Encodes as a sealed wire message.
    pub fn to_wire(&self) -> Vec<u8> {
        let (tag, body) = match self {
            HandshakeFrame::Init(m) => (0x4801u16, m.to_bytes()),
            HandshakeFrame::Reply(m) => (0x4802, m.to_bytes()),
            HandshakeFrame::Fin(m) => (0x4803, m.to_bytes()),
            HandshakeFrame::Record(m) => (0x4810, m.to_bytes()),
        };
        crate::wire::seal(tag, &body)
    }

    /// Decodes a sealed wire message.
    pub fn from_wire(msg: &[u8]) -> Result<Self, CryptoError> {
        let (tag, mut r) = crate::wire::unseal(msg)?;
        let frame = match tag {
            0x4801 => HandshakeFrame::Init(HandshakeInit::decode(&mut r)?),
            0x4802 => HandshakeFrame::Reply(HandshakeReply::decode(&mut r)?),
            0x4803 => HandshakeFrame::Fin(HandshakeFin::decode(&mut r)?),
            0x4810 => HandshakeFrame::Record(SealedRecord::decode(&mut r)?),
            _ => return Err(CryptoError::Malformed("unknown handshake tag")),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Whether a raw wire message carries a secure-channel tag (without
    /// decoding the body) — how a plaintext endpoint recognises a
    /// mismatched secure peer.
    pub fn is_channel_frame(msg: &[u8]) -> bool {
        matches!(crate::wire::unseal(msg), Ok((tag, _)) if (HS_TAG_BASE..=HS_TAG_LAST).contains(&tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_tag(msg: &[u8]) -> u16 {
        let (tag, _) = crate::wire::unseal(msg).expect("sealed frame");
        tag
    }

    #[test]
    fn tag_registries_match_encoded_frames() {
        // Payload-free variants encode to exactly the registry entry at
        // their declaration position.
        assert_eq!(wire_tag(&Request::Sync.to_wire()), REQUEST_TAGS[4]);
        assert_eq!(wire_tag(&Request::LedgerHeads.to_wire()), REQUEST_TAGS[5]);
        assert_eq!(wire_tag(&Request::Shutdown.to_wire()), REQUEST_TAGS[7]);
        assert_eq!(wire_tag(&Request::IngestStats.to_wire()), REQUEST_TAGS[11]);
        assert_eq!(wire_tag(&Response::Sync.to_wire()), RESPONSE_TAGS[4]);
        assert_eq!(
            wire_tag(&Response::ActivationSweep.to_wire()),
            RESPONSE_TAGS[6]
        );
        assert_eq!(wire_tag(&Response::Shutdown.to_wire()), RESPONSE_TAGS[7]);
        assert_eq!(
            wire_tag(&Response::SyncThrough.to_wire()),
            RESPONSE_TAGS[10]
        );
        let err = Response::Err(crate::error::ServiceError::Transport("x".into()));
        assert_eq!(wire_tag(&err.to_wire()), RESPONSE_TAGS[12]);
    }

    #[test]
    fn tag_registries_are_collision_free_and_disjoint() {
        for tags in [&REQUEST_TAGS[..], &RESPONSE_TAGS[..], &HANDSHAKE_TAGS[..]] {
            let mut seen = std::collections::BTreeSet::new();
            assert!(
                tags.iter().all(|t| seen.insert(*t)),
                "duplicate tag in registry {tags:?}"
            );
        }
        for hs in HANDSHAKE_TAGS {
            assert!((HS_TAG_BASE..=HS_TAG_LAST).contains(&hs));
            assert!(!REQUEST_TAGS.contains(&hs));
            assert!(!RESPONSE_TAGS.contains(&hs));
        }
        // Request/response tags never wander into the secure range, so
        // `is_channel_frame` can never misclassify a plaintext message.
        for t in REQUEST_TAGS.iter().chain(RESPONSE_TAGS.iter()) {
            assert!(!(HS_TAG_BASE..=HS_TAG_LAST).contains(t));
        }
    }

    #[test]
    fn unknown_tags_decode_to_typed_errors() {
        let stray = crate::wire::seal(0x2222, &[]);
        assert!(Request::from_wire(&stray).is_err());
        assert!(Response::from_wire(&stray).is_err());
        assert!(HandshakeFrame::from_wire(&stray).is_err());
        assert!(!HandshakeFrame::is_channel_frame(&stray));
        assert!(HandshakeFrame::is_channel_frame(&crate::wire::seal(
            HS_TAG_BASE,
            &[]
        )));
    }
}
