//! Bounded retry with deterministic exponential backoff.
//!
//! # Determinism contract
//!
//! A [`RetryPolicy`] never consults a wall clock or an entropy source to
//! *decide* anything: the backoff for attempt `n` — including its jitter
//! — is a pure function of `(seed, n)`, drawn from an [`HmacDrbg`]
//! (vg-lint's nondeterminism rule is enforced on this file). Two runs
//! with the same seed sleep the same durations in the same order; what
//! a retried operation *returns* is the only thing that varies. Jitter
//! still does its real job — desynchronizing a fleet of stations that
//! all lost the registrar at once — because each station seeds its
//! policy differently.

use std::time::Duration;

use vg_crypto::{HmacDrbg, Rng};

use crate::error::ServiceError;

/// Bounded exponential backoff with deterministic seeded jitter.
///
/// Only failures where retrying can help are retried:
/// [`ServiceError::is_retryable`] — deadline expiry and transport-level
/// connection failures. Domain, auth and handshake errors return
/// immediately (they are deterministic; the retry would fail the same
/// way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). `1` disables retries.
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper clamp on any single backoff.
    pub cap: Duration,
    /// Seed for the jitter stream (see the module docs).
    pub seed: u64,
}

impl RetryPolicy {
    /// Default reconnect policy: 4 attempts, 25ms base, 400ms cap.
    /// Worst-case added latency before giving up ≈ 25 + 50 + 100 ms of
    /// backoff — long enough to ride out a registrar hiccup, short
    /// enough that the coordinator's stall detector still fires first
    /// for a truly lost station.
    pub fn reconnect(seed: u64) -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
            seed,
        }
    }

    /// No retries: fail on the first error (the pre-fault-plane
    /// behavior, and the right policy inside tests that assert on
    /// first-failure semantics).
    pub fn once() -> Self {
        Self {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The backoff before retry `attempt` (0-based: `backoff(0)` is the
    /// sleep between the first failure and the second try). Exponential
    /// from `base`, clamped at `cap`, scaled by a deterministic jitter
    /// factor in `[0.5, 1.0)` drawn from `(seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let mut key = Vec::with_capacity(34);
        key.extend_from_slice(b"vgrs/retry/jitter-v1");
        key.extend_from_slice(&self.seed.to_le_bytes());
        key.extend_from_slice(&attempt.to_le_bytes());
        let jitter = 0.5 + HmacDrbg::new(&key).unit_f64() / 2.0;
        exp.mul_f64(jitter)
    }

    /// Runs `op` under this policy. `op` receives the 0-based attempt
    /// number; retryable errors back off and retry until the attempt
    /// budget is spent, then the last error returns. Non-retryable
    /// errors return immediately.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy::reconnect(42);
        for attempt in 0..8 {
            let d = p.backoff(attempt);
            assert_eq!(d, p.backoff(attempt), "same (seed, attempt) replays");
            assert!(d <= p.cap, "clamped at cap");
            let unjittered = p.base.saturating_mul(1 << attempt.min(6)).min(p.cap);
            assert!(d >= unjittered / 2, "jitter floor is half the backoff");
        }
        assert!(p.backoff(3) > p.backoff(0), "exponential growth");
        let q = RetryPolicy::reconnect(43);
        assert_ne!(p.backoff(0), q.backoff(0), "different seeds jitter apart");
    }

    #[test]
    fn retries_timeouts_until_budget_then_returns_last_error() {
        let p = RetryPolicy {
            attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            seed: 1,
        };
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(ServiceError::Timeout("stalled".into()))
        });
        assert_eq!(calls, 3);
        assert!(matches!(out, Err(ServiceError::Timeout(_))));
    }

    #[test]
    fn succeeds_after_transient_transport_failures() {
        let p = RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            seed: 2,
        };
        let out = p.run(|attempt| {
            if attempt < 2 {
                Err(ServiceError::Transport("connection refused".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
    }

    #[test]
    fn non_retryable_errors_return_immediately() {
        let p = RetryPolicy::reconnect(3);
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(ServiceError::AuthFailed("not enrolled".into()))
        });
        assert_eq!(calls, 1);
        assert!(matches!(out, Err(ServiceError::AuthFailed(_))));
    }

    #[test]
    fn once_policy_never_retries() {
        let mut calls = 0;
        let out: Result<(), _> = RetryPolicy::once().run(|_| {
            calls += 1;
            Err(ServiceError::Timeout("stalled".into()))
        });
        assert_eq!(calls, 1);
        assert!(out.is_err());
    }
}
