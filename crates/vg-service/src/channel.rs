//! Pluggable framed channels: the open transport API.
//!
//! The service layer used to hard-code a closed two-variant enum
//! (in-process | plaintext TCP). This module replaces that with three
//! small traits — [`FramedChannel`], [`Connector`], [`Listener`] — so an
//! endpoint is a *value* the fleet plugs in, and with a security layer
//! ([`SecureChannel`]) that wraps **any** framed channel in a mutually
//! authenticated, encrypted session. Concrete channels:
//!
//! - [`TcpChannel`]: length-prefixed frames over a TCP stream (the old
//!   transport, now one impl among several).
//! - [`PipeChannel`]: an in-process duplex frame queue, so loopback-free
//!   runs exercise the identical protocol state machines.
//! - [`SecureChannel`]: SIGMA-style handshake + per-direction
//!   encrypt-then-MAC sealing over either of the above, driven by a
//!   [`ChannelPolicy`].
//!
//! # Security contract
//!
//! With [`ChannelPolicy::Secure`], both endpoints prove possession of an
//! *enrolled* static Schnorr key (stations and the registrar enroll
//! transport keys exactly like officials enroll signing keys — see
//! `vg_trip::setup::TransportKeyring`), the session keys are bound to the
//! handshake transcript, and every application frame is encrypted and
//! MAC-sequenced so replay, reorder, truncation and bit-flips are
//! rejected. Failures are **typed and survive the wire**: an unenrolled
//! peer yields [`ServiceError::AuthFailed`], any broken or mismatched
//! handshake yields [`ServiceError::HandshakeFailed`] — on *both* sides,
//! never a hang. With [`ChannelPolicy::Plaintext`] the channel provides
//! integrity of framing only; a secure peer connecting to a plaintext
//! endpoint (or vice versa) is detected from the disjoint handshake tag
//! range and rejected with a typed error.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use vg_crypto::channel::{
    confirmation_tag, derive_channel_keys, transcript_hash, ChannelKeys, EphemeralKey, FrameSealer,
};
use vg_crypto::schnorr::{SigningKey, VerifyingKey};
use vg_crypto::{ct_eq32, CompressedPoint, OsRng};

use crate::error::ServiceError;
use crate::messages::{
    HandshakeFin, HandshakeFrame, HandshakeInit, HandshakeReply, Response, SealedRecord,
};
use crate::wire::{read_frame, write_frame};

/// A reliable, ordered, bidirectional frame pipe.
///
/// One frame in is one frame out, in order: the only transport guarantee
/// the RPC layer needs. Implementations carry whole `VGRS` wire messages;
/// they do not interpret them. **Security contract:** a bare
/// `FramedChannel` authenticates nobody and hides nothing — wrap it in a
/// [`SecureChannel`] (via [`ChannelPolicy::Secure`]) before trusting the
/// peer's identity or the frames' confidentiality.
pub trait FramedChannel: Send {
    /// Sends one complete frame.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError>;

    /// Receives the next complete frame, blocking until one arrives.
    /// Returns a typed transport error on EOF or a broken pipe.
    fn recv_frame(&mut self) -> Result<Vec<u8>, ServiceError>;
}

/// Dials new channels to one endpoint. `Send + Sync` so a fleet can hand
/// one connector to many station threads.
///
/// **Security contract:** the connector runs the full client side of the
/// configured [`ChannelPolicy`] — when secure, the channel it returns has
/// already authenticated the registrar's enrolled key and derived fresh
/// session keys, so callers never observe a half-established channel.
pub trait Connector: Send + Sync {
    /// Opens (and, per policy, secures) a fresh channel.
    fn connect(&self) -> Result<Box<dyn FramedChannel>, ServiceError>;
}

/// Accepts inbound channels on one endpoint.
///
/// **Security contract:** mirrors [`Connector`] — when the policy is
/// secure, `accept` completes the server side of the handshake (enrolment
/// check included) before returning, and rejects mismatched plaintext
/// peers with a typed error rather than handing out an unauthenticated
/// channel.
pub trait Listener: Send {
    /// Accepts the next inbound channel, completing any handshake.
    fn accept(&mut self) -> Result<Box<dyn FramedChannel>, ServiceError>;
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Read/write deadlines for a TCP channel.
///
/// A bare blocking socket hangs forever on a stalled peer; the default
/// deadlines bound every read and write so a hung peer surfaces as a
/// typed [`ServiceError::Timeout`] (the retry layer's signal) instead of
/// a parked thread. Defaults are deliberately generous — an order of
/// magnitude above any healthy round trip, including full-day flush
/// barriers — so they only ever fire on genuine stalls; chaos tests
/// tighten them. After a deadline fires mid-frame the stream position is
/// unknown, so the channel must be discarded and redialed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadlines {
    /// Deadline for each blocking read (`None` = wait forever).
    pub read: Option<Duration>,
    /// Deadline for each blocking write (`None` = wait forever).
    pub write: Option<Duration>,
}

/// Default per-read deadline (see [`Deadlines`]).
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(30);
/// Default per-write deadline (see [`Deadlines`]).
pub const DEFAULT_WRITE_DEADLINE: Duration = Duration::from_secs(10);

impl Default for Deadlines {
    fn default() -> Self {
        Self {
            read: Some(DEFAULT_READ_DEADLINE),
            write: Some(DEFAULT_WRITE_DEADLINE),
        }
    }
}

impl Deadlines {
    /// No deadlines: the legacy block-forever behavior, for callers that
    /// bound liveness some other way (the non-blocking gateway).
    pub fn none() -> Self {
        Self {
            read: None,
            write: None,
        }
    }
}

/// Length-prefixed frames over a TCP stream.
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpChannel {
    /// Connects to `addr` with `TCP_NODELAY` set and default
    /// [`Deadlines`].
    pub fn connect(addr: SocketAddr) -> Result<Self, ServiceError> {
        Self::connect_with(addr, Deadlines::default())
    }

    /// Connects to `addr` under explicit deadlines. The read deadline
    /// also bounds the connect itself, so dialing a dead address cannot
    /// park a station thread forever either.
    pub fn connect_with(addr: SocketAddr, deadlines: Deadlines) -> Result<Self, ServiceError> {
        let stream = match deadlines.read {
            Some(d) => TcpStream::connect_timeout(&addr, d)?,
            None => TcpStream::connect(addr)?,
        };
        Self::from_stream_with(stream, deadlines)
    }

    /// Wraps an accepted stream under default [`Deadlines`].
    pub fn from_stream(stream: TcpStream) -> Result<Self, ServiceError> {
        Self::from_stream_with(stream, Deadlines::default())
    }

    /// Wraps an accepted stream under explicit deadlines.
    pub fn from_stream_with(stream: TcpStream, deadlines: Deadlines) -> Result<Self, ServiceError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadlines.read)?;
        stream.set_write_timeout(deadlines.write)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }
}

impl FramedChannel for TcpChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        write_frame(&mut self.writer, frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServiceError> {
        read_frame(&mut self.reader)
    }
}

// ---------------------------------------------------------------------
// In-process pipes
// ---------------------------------------------------------------------

/// One end of an in-process duplex frame queue.
pub struct PipeChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-process channels.
pub fn pipe_pair() -> (PipeChannel, PipeChannel) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        PipeChannel { tx: a_tx, rx: a_rx },
        PipeChannel { tx: b_tx, rx: b_rx },
    )
}

impl PipeChannel {
    /// Splits into raw sender/receiver halves (the gateway polls the
    /// receiver without blocking).
    pub(crate) fn into_parts(self) -> (Sender<Vec<u8>>, Receiver<Vec<u8>>) {
        (self.tx, self.rx)
    }
}

impl FramedChannel for PipeChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ServiceError::Transport("pipe peer hung up".into()))
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServiceError> {
        self.rx
            .recv()
            .map_err(|_| ServiceError::Transport("pipe peer hung up".into()))
    }
}

// ---------------------------------------------------------------------
// Security policy
// ---------------------------------------------------------------------

/// Static key material for one secure endpoint.
///
/// Symmetric by design: a station configures `local` = its own transport
/// key and `registrar` = the enrolled registrar key it will insist on; the
/// registrar configures `local` = its own key and `enrolled` = the station
/// registry it will admit. Cheap to clone (the enrolment list is shared).
#[derive(Clone)]
pub struct SecureConfig {
    /// This endpoint's static transport signing key.
    pub local: SigningKey,
    /// Client side: the registrar static key the client requires. Ignored
    /// by servers.
    pub registrar: CompressedPoint,
    /// Server side: enrolled client (station) keys. Ignored by clients.
    pub enrolled: Arc<Vec<CompressedPoint>>,
}

impl core::fmt::Debug for SecureConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // `local` is a static signing key; print only public material.
        write!(
            f,
            "SecureConfig(registrar={:?}, enrolled={}, local=<redacted>)",
            self.registrar,
            self.enrolled.len()
        )
    }
}

/// Whether (and how) channels on an endpoint are secured.
// One policy value exists per endpoint for a whole day; boxing the
// config would churn every construction/match site to save bytes on a
// type that is never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Default)]
pub enum ChannelPolicy {
    /// Frames travel unauthenticated and in the clear (the reference
    /// configuration; bit-identical to every other one).
    #[default]
    Plaintext,
    /// Every channel runs the mutual-auth handshake and frame encryption.
    Secure(SecureConfig),
}

impl ChannelPolicy {
    /// Runs the client side of the policy over a fresh channel.
    pub fn establish_client(
        &self,
        chan: Box<dyn FramedChannel>,
    ) -> Result<Box<dyn FramedChannel>, ServiceError> {
        match self {
            ChannelPolicy::Plaintext => Ok(chan),
            ChannelPolicy::Secure(cfg) => Ok(Box::new(client_handshake(chan, cfg)?)),
        }
    }

    /// Runs the (blocking) server side of the policy over an accepted
    /// channel. On a typed handshake failure the rejection is sent to the
    /// peer as a plaintext [`Response::Err`] before the error returns, so
    /// the client observes the same typed error instead of an EOF.
    pub fn establish_server(
        &self,
        chan: Box<dyn FramedChannel>,
    ) -> Result<Box<dyn FramedChannel>, ServiceError> {
        match self {
            ChannelPolicy::Plaintext => Ok(chan),
            ChannelPolicy::Secure(cfg) => server_handshake(chan, cfg),
        }
    }
}

// ---------------------------------------------------------------------
// The handshake
// ---------------------------------------------------------------------

/// Domain separation for the server's transcript signature.
const SERVER_SIG_DOMAIN: &[u8] = b"vgrs/hs/server-sig";
/// Domain separation for the client's transcript signature.
const CLIENT_SIG_DOMAIN: &[u8] = b"vgrs/hs/client-sig";

fn sig_msg(domain: &[u8], th: &[u8; 32]) -> Vec<u8> {
    let mut m = Vec::with_capacity(domain.len() + 32);
    m.extend_from_slice(domain);
    m.extend_from_slice(th);
    m
}

/// Interprets a frame that arrived where a handshake frame was expected:
/// a typed plaintext `Response::Err` from the peer passes through
/// verbatim; anything else becomes a [`ServiceError::HandshakeFailed`].
fn reject_frame(frame: &[u8], expected: &str) -> ServiceError {
    if let Ok(Response::Err(e)) = Response::from_wire(frame) {
        return e;
    }
    ServiceError::HandshakeFailed(format!("expected {expected}, got an unrecognised frame"))
}

/// Client side of the SIGMA-style handshake. Consumes the bare channel
/// and returns it wrapped in sealing/opening state.
fn client_handshake(
    mut chan: Box<dyn FramedChannel>,
    cfg: &SecureConfig,
) -> Result<SecureChannel, ServiceError> {
    let mut rng = OsRng::new();
    let eph = EphemeralKey::generate(&mut rng);
    chan.send_frame(&HandshakeFrame::Init(HandshakeInit { eph: eph.public }).to_wire())?;
    let frame = chan.recv_frame()?;
    let reply = match HandshakeFrame::from_wire(&frame) {
        Ok(HandshakeFrame::Reply(r)) => r,
        _ => return Err(reject_frame(&frame, "handshake reply")),
    };
    let shared = eph.agree(&reply.eph).map_err(|e| {
        ServiceError::HandshakeFailed(format!("server ephemeral point rejected: {e}"))
    })?;
    let keys = derive_channel_keys(&shared, &eph.public, &reply.eph);
    let th = transcript_hash(&eph.public, &reply.eph);
    // Authenticate the server: enrolled identity, transcript signature,
    // key confirmation — in that order, so the error type distinguishes
    // "wrong key" from "broken handshake".
    if reply.static_pk != cfg.registrar {
        return Err(ServiceError::AuthFailed(
            "registrar static key is not the enrolled one".into(),
        ));
    }
    let vk = VerifyingKey::from_compressed(&reply.static_pk)
        .map_err(|e| ServiceError::HandshakeFailed(format!("server static key invalid: {e}")))?;
    vk.verify(&sig_msg(SERVER_SIG_DOMAIN, &th), &reply.sig)
        .map_err(|_| ServiceError::HandshakeFailed("server transcript signature invalid".into()))?;
    if !ct_eq32(
        &confirmation_tag(&keys.auth, b"server", &reply.static_pk),
        &reply.confirm,
    ) {
        return Err(ServiceError::HandshakeFailed(
            "server key-confirmation mac mismatch".into(),
        ));
    }
    let static_pk = cfg.local.public_key_compressed();
    let fin = HandshakeFin {
        static_pk,
        sig: cfg.local.sign(&sig_msg(CLIENT_SIG_DOMAIN, &th)),
        confirm: confirmation_tag(&keys.auth, b"client", &static_pk),
    };
    chan.send_frame(&HandshakeFrame::Fin(fin).to_wire())?;
    Ok(SecureChannel::client(chan, keys))
}

/// Server-side handshake state after the client's `Init`: the reply to
/// send, plus what [`finish_server_handshake`] needs to validate `Fin`.
/// Split out (rather than folded into [`server_handshake`]) so the
/// non-blocking gateway can drive the same state machine frame by frame.
pub(crate) struct ServerHello {
    /// The `Reply` frame to send to the client.
    pub(crate) reply: HandshakeReply,
    /// Derived session keys (not yet confirmed).
    pub(crate) keys: ChannelKeys,
    /// Transcript hash both signatures cover.
    pub(crate) th: [u8; 32],
}

impl core::fmt::Debug for ServerHello {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The derived session keys stay off logs; the transcript hash and
        // reply frame are public wire material.
        write!(f, "ServerHello(th={:02x?}, keys=<redacted>)", self.th)
    }
}

/// Processes a client `Init`: derives keys and builds the server's reply.
pub(crate) fn server_hello(
    init: &HandshakeInit,
    cfg: &SecureConfig,
) -> Result<ServerHello, ServiceError> {
    let mut rng = OsRng::new();
    let eph = EphemeralKey::generate(&mut rng);
    let shared = eph.agree(&init.eph).map_err(|e| {
        ServiceError::HandshakeFailed(format!("client ephemeral point rejected: {e}"))
    })?;
    let keys = derive_channel_keys(&shared, &init.eph, &eph.public);
    let th = transcript_hash(&init.eph, &eph.public);
    let static_pk = cfg.local.public_key_compressed();
    let reply = HandshakeReply {
        eph: eph.public,
        static_pk,
        sig: cfg.local.sign(&sig_msg(SERVER_SIG_DOMAIN, &th)),
        confirm: confirmation_tag(&keys.auth, b"server", &static_pk),
    };
    Ok(ServerHello { reply, keys, th })
}

/// Validates a client `Fin` against the [`ServerHello`] state: enrolment
/// first ([`ServiceError::AuthFailed`]), then signature and confirmation
/// ([`ServiceError::HandshakeFailed`]). Returns the confirmed keys.
pub(crate) fn finish_server_handshake(
    hello: &ServerHello,
    fin: &HandshakeFin,
    cfg: &SecureConfig,
) -> Result<ChannelKeys, ServiceError> {
    if !cfg.enrolled.contains(&fin.static_pk) {
        return Err(ServiceError::AuthFailed(
            "station transport key is not enrolled".into(),
        ));
    }
    let vk = VerifyingKey::from_compressed(&fin.static_pk)
        .map_err(|e| ServiceError::HandshakeFailed(format!("client static key invalid: {e}")))?;
    vk.verify(&sig_msg(CLIENT_SIG_DOMAIN, &hello.th), &fin.sig)
        .map_err(|_| ServiceError::HandshakeFailed("client transcript signature invalid".into()))?;
    if !ct_eq32(
        &confirmation_tag(&hello.keys.auth, b"client", &fin.static_pk),
        &fin.confirm,
    ) {
        return Err(ServiceError::HandshakeFailed(
            "client key-confirmation mac mismatch".into(),
        ));
    }
    Ok(hello.keys.clone())
}

/// Blocking server handshake (the barrier-path counterpart of the
/// gateway's non-blocking state machine). Typed rejections are reported
/// to the peer as plaintext `Response::Err` before returning the error.
fn server_handshake(
    mut chan: Box<dyn FramedChannel>,
    cfg: &SecureConfig,
) -> Result<Box<dyn FramedChannel>, ServiceError> {
    let reject = |chan: &mut Box<dyn FramedChannel>, e: ServiceError| {
        chan.send_frame(&Response::Err(e.clone()).to_wire()).ok();
        e
    };
    let frame = chan.recv_frame()?;
    let init = match HandshakeFrame::from_wire(&frame) {
        Ok(HandshakeFrame::Init(i)) => i,
        _ => {
            let e = ServiceError::HandshakeFailed(
                "secure registrar requires a handshake; peer sent something else".into(),
            );
            return Err(reject(&mut chan, e));
        }
    };
    let hello = match server_hello(&init, cfg) {
        Ok(h) => h,
        Err(e) => return Err(reject(&mut chan, e)),
    };
    chan.send_frame(&HandshakeFrame::Reply(hello.reply.clone()).to_wire())?;
    let frame = chan.recv_frame()?;
    let fin = match HandshakeFrame::from_wire(&frame) {
        Ok(HandshakeFrame::Fin(f)) => f,
        _ => {
            let e = ServiceError::HandshakeFailed("expected handshake fin".into());
            return Err(reject(&mut chan, e));
        }
    };
    match finish_server_handshake(&hello, &fin, cfg) {
        Ok(keys) => Ok(Box::new(SecureChannel::server(chan, keys))),
        Err(e) => Err(reject(&mut chan, e)),
    }
}

// ---------------------------------------------------------------------
// The secure channel
// ---------------------------------------------------------------------

/// An established authenticated-encryption session over any inner
/// channel.
///
/// Every application frame travels as a [`SealedRecord`]
/// (encrypt-then-MAC, implicit per-direction sequence numbers), so the
/// peer that completed the handshake is the only one able to produce
/// frames this channel will accept — and replays, reorders and bit-flips
/// fail typed rather than being delivered.
pub struct SecureChannel {
    inner: Box<dyn FramedChannel>,
    tx: FrameSealer,
    rx: FrameSealer,
}

impl SecureChannel {
    /// Client orientation: sends under `client_to_server` keys.
    pub(crate) fn client(inner: Box<dyn FramedChannel>, keys: ChannelKeys) -> Self {
        Self {
            inner,
            tx: FrameSealer::new(keys.client_to_server),
            rx: FrameSealer::new(keys.server_to_client),
        }
    }

    /// Server orientation: sends under `server_to_client` keys.
    pub(crate) fn server(inner: Box<dyn FramedChannel>, keys: ChannelKeys) -> Self {
        Self {
            inner,
            tx: FrameSealer::new(keys.server_to_client),
            rx: FrameSealer::new(keys.client_to_server),
        }
    }
}

impl FramedChannel for SecureChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        let sealed = self.tx.seal(frame);
        self.inner
            .send_frame(&HandshakeFrame::Record(SealedRecord { sealed }).to_wire())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServiceError> {
        let raw = self.inner.recv_frame()?;
        match HandshakeFrame::from_wire(&raw) {
            Ok(HandshakeFrame::Record(rec)) => self.rx.open(&rec.sealed).map_err(|e| {
                ServiceError::Transport(format!("secure channel rejected a record: {e}"))
            }),
            // A typed plaintext rejection (e.g. the server refused our
            // `Fin` after we optimistically sent the first request).
            _ => Err(reject_frame(&raw, "encrypted record")),
        }
    }
}

// ---------------------------------------------------------------------
// Connectors and listeners
// ---------------------------------------------------------------------

/// Dials framed TCP channels to one address under one policy.
#[derive(Clone)]
pub struct TcpConnector {
    /// Server address.
    pub addr: SocketAddr,
    /// Security policy for every dialed channel.
    pub policy: ChannelPolicy,
    /// Read/write deadlines for every dialed channel.
    pub deadlines: Deadlines,
}

impl Connector for TcpConnector {
    fn connect(&self) -> Result<Box<dyn FramedChannel>, ServiceError> {
        self.policy
            .establish_client(Box::new(TcpChannel::connect_with(
                self.addr,
                self.deadlines,
            )?))
    }
}

/// Accepts framed TCP channels under one policy (barrier-path serving;
/// the pipelined day uses the non-blocking gateway instead).
pub struct TcpChannelListener {
    listener: TcpListener,
    policy: ChannelPolicy,
    deadlines: Deadlines,
}

impl TcpChannelListener {
    /// Wraps a bound listener (default [`Deadlines`] on every accepted
    /// channel).
    pub fn new(listener: TcpListener, policy: ChannelPolicy) -> Self {
        Self {
            listener,
            policy,
            deadlines: Deadlines::default(),
        }
    }

    /// Overrides the deadlines applied to accepted channels.
    pub fn with_deadlines(mut self, deadlines: Deadlines) -> Self {
        self.deadlines = deadlines;
        self
    }
}

impl Listener for TcpChannelListener {
    fn accept(&mut self) -> Result<Box<dyn FramedChannel>, ServiceError> {
        let (stream, _) = self.listener.accept()?;
        self.policy
            .establish_server(Box::new(TcpChannel::from_stream_with(
                stream,
                self.deadlines,
            )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::HmacDrbg;
    use vg_crypto::Rng;

    fn test_keys() -> (SigningKey, SigningKey, SecureConfig, SecureConfig) {
        let mut rng = HmacDrbg::from_u64(42);
        let server = SigningKey::generate(&mut rng);
        let client = SigningKey::generate(&mut rng);
        let enrolled = Arc::new(vec![client.public_key_compressed()]);
        let server_cfg = SecureConfig {
            local: server.clone(),
            registrar: server.public_key_compressed(),
            enrolled: enrolled.clone(),
        };
        let client_cfg = SecureConfig {
            local: client.clone(),
            registrar: server.public_key_compressed(),
            enrolled,
        };
        (server, client, server_cfg, client_cfg)
    }

    type Established = Result<Box<dyn FramedChannel>, ServiceError>;

    fn establish_pair(
        server_cfg: SecureConfig,
        client_cfg: SecureConfig,
    ) -> (Established, Established) {
        let (client_half, server_half) = pipe_pair();
        let server = std::thread::spawn(move || {
            ChannelPolicy::Secure(server_cfg).establish_server(Box::new(server_half))
        });
        let client = ChannelPolicy::Secure(client_cfg).establish_client(Box::new(client_half));
        (server.join().unwrap(), client)
    }

    #[test]
    fn secure_pipe_round_trip() {
        let (_, _, server_cfg, client_cfg) = test_keys();
        let (server, client) = establish_pair(server_cfg, client_cfg);
        let (mut server, mut client) = (server.unwrap(), client.unwrap());
        client.send_frame(b"hello registrar").unwrap();
        assert_eq!(server.recv_frame().unwrap(), b"hello registrar");
        server.send_frame(b"hello station").unwrap();
        assert_eq!(client.recv_frame().unwrap(), b"hello station");
    }

    #[test]
    fn unenrolled_station_key_is_auth_failed_on_both_sides() {
        let (_, _, server_cfg, mut client_cfg) = test_keys();
        let mut rng = HmacDrbg::from_u64(7);
        client_cfg.local = SigningKey::generate(&mut rng);
        let (server, client) = establish_pair(server_cfg, client_cfg);
        assert!(matches!(server, Err(ServiceError::AuthFailed(_))), "server");
        // The client learns of the rejection on first use of the channel
        // (its handshake optimistically completes when `Fin` is sent).
        let mut client = client.unwrap();
        assert!(matches!(
            client.recv_frame(),
            Err(ServiceError::AuthFailed(_))
        ));
    }

    #[test]
    fn wrong_registrar_key_is_auth_failed_at_client() {
        let (_, _, server_cfg, mut client_cfg) = test_keys();
        let mut rng = HmacDrbg::from_u64(8);
        client_cfg.registrar = SigningKey::generate(&mut rng).public_key_compressed();
        let (_server, client) = establish_pair(server_cfg, client_cfg);
        assert!(matches!(client, Err(ServiceError::AuthFailed(_))));
    }

    #[test]
    fn plaintext_peer_of_secure_server_gets_typed_error() {
        let (_, _, server_cfg, _) = test_keys();
        let (mut client_half, server_half) = pipe_pair();
        let server = std::thread::spawn(move || {
            ChannelPolicy::Secure(server_cfg).establish_server(Box::new(server_half))
        });
        // A plaintext client's first frame is a request, not an Init.
        client_half
            .send_frame(&crate::messages::Request::Sync.to_wire())
            .unwrap();
        assert!(matches!(
            server.join().unwrap(),
            Err(ServiceError::HandshakeFailed(_))
        ));
        let frame = client_half.recv_frame().unwrap();
        assert!(matches!(
            Response::from_wire(&frame),
            Ok(Response::Err(ServiceError::HandshakeFailed(_)))
        ));
    }

    #[test]
    fn tampered_handshake_reply_fails_typed() {
        let (_, _, server_cfg, client_cfg) = test_keys();
        let (client_half, mut server_half) = pipe_pair();
        let tamperer = std::thread::spawn(move || {
            // Act as a man-in-the-middle that bit-flips the server reply.
            let init = server_half.recv_frame().unwrap();
            let init = match HandshakeFrame::from_wire(&init).unwrap() {
                HandshakeFrame::Init(i) => i,
                other => panic!("expected init, got {other:?}"),
            };
            let hello = server_hello(&init, &server_cfg).unwrap();
            let mut reply = hello.reply.clone();
            reply.confirm[0] ^= 1;
            server_half
                .send_frame(&HandshakeFrame::Reply(reply).to_wire())
                .unwrap();
        });
        let client = ChannelPolicy::Secure(client_cfg).establish_client(Box::new(client_half));
        tamperer.join().unwrap();
        assert!(matches!(client, Err(ServiceError::HandshakeFailed(_))));
    }

    #[test]
    fn truncated_handshake_frames_rejected() {
        let mut rng = HmacDrbg::from_u64(3);
        let eph = EphemeralKey::generate(&mut rng);
        let wire = HandshakeFrame::Init(HandshakeInit { eph: eph.public }).to_wire();
        for cut in 1..wire.len() {
            assert!(HandshakeFrame::from_wire(&wire[..cut]).is_err());
        }
        let mut flipped = wire.clone();
        // Flip a bit inside the point encoding: either it no longer
        // decompresses, or it decodes to a different (still valid) point
        // — the signature check catches the latter, so here we only
        // require "no panic, parse-or-reject".
        flipped[10] ^= 1;
        let _ = HandshakeFrame::from_wire(&flipped);
        rng.fill_bytes(&mut flipped[8..]);
        let _ = HandshakeFrame::from_wire(&flipped);
    }
}
