//! Transport plans, the fleet-facing [`ServiceBoundary`] adapter, channel
//! serving, and whole-registration-day runners.
//!
//! Endpoints are pluggable *channel values* (see [`crate::channel`]): a
//! day runner takes a [`TransportPlan`] — a link kind × security policy
//! pair — and wires the fleet to the registrar through whichever
//! [`Connector`]/[`Listener`](crate::channel::Listener) implements it.
//! All plans serve the *same*
//! [`RegistrarHost`] logic, so a fleet run is bit-identical across them
//! (pinned by the workspace's cross-transport equivalence proptests):
//!
//! - `InProcess × Plaintext`: the endpoint **is** the host — direct
//!   method calls, zero copies, no serialization. The reference.
//! - `InProcess × Secure`: the full handshake + encrypted records over an
//!   in-process pipe, exercising the identical protocol state machines
//!   without a socket.
//! - `Tcp × {Plaintext, Secure}`: length-prefixed frames over a loopback
//!   socket; every request round-trips the full versioned codec (and,
//!   when secure, the sealed-record layer).
//!
//! The old closed [`Transport`] enum remains as a deprecated shim that
//! maps onto [`TransportPlan`].

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use vg_crypto::schnorr::NonceCoupon;
use vg_ledger::{EnvelopeCommitment, TreeHead, VoterId};
use vg_trip::boundary::{IngestTicket, RegistrarBoundary};
use vg_trip::fleet::KioskFleet;
use vg_trip::materials::{CheckInTicket, CheckOutQr, Envelope};
use vg_trip::protocol::RegistrationOutcome;
use vg_trip::setup::{TransportKeyring, TripSystem};
use vg_trip::vsd::{ActivationClaim, Vsd};
use vg_trip::{PrintJob, TripError};

use crate::channel::{
    pipe_pair, ChannelPolicy, Connector, FramedChannel, SecureConfig, TcpChannel,
};
use crate::error::ServiceError;
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, HandshakeFrame, IngestReceipt, IngestStatsReply,
    LedgerHeads, PrintRequest, PrintResponse, Request, Response, SeqCheckOutRequest,
    SeqEnvelopeSubmitRequest, SyncThroughRequest,
};
use crate::registrar::RegistrarHost;
use crate::traits::{
    ActivationService, LedgerIngestService, PrintService, RegistrarEndpoint, RegistrarService,
};

/// Which link a registration day runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkKind {
    /// Same-process endpoints (direct dispatch, or pipes when secured).
    #[default]
    InProcess,
    /// Length-prefixed frames over a loopback TCP socket.
    Tcp,
}

/// Whether the day's channels run the mutual-auth encrypted handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChannelSecurity {
    /// Bare frames (the reference configuration).
    #[default]
    Plaintext,
    /// SIGMA-style handshake + per-direction encrypt-then-MAC sealing,
    /// keyed by the deployment's enrolled
    /// [`TransportKeyring`].
    Secure,
}

/// A value describing how a registration day's endpoints are wired:
/// link kind × channel security. Replaces the closed [`Transport`] enum —
/// plans compose, and new links/policies slot in without touching every
/// call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TransportPlan {
    /// The link layer.
    pub link: LinkKind,
    /// The channel-security policy.
    pub security: ChannelSecurity,
}

impl TransportPlan {
    /// Direct in-process dispatch (zero-copy; the reference).
    pub const IN_PROCESS: Self = Self {
        link: LinkKind::InProcess,
        security: ChannelSecurity::Plaintext,
    };
    /// Plaintext loopback TCP.
    pub const TCP: Self = Self {
        link: LinkKind::Tcp,
        security: ChannelSecurity::Plaintext,
    };
    /// Authenticated + encrypted loopback TCP.
    pub const SECURE_TCP: Self = Self {
        link: LinkKind::Tcp,
        security: ChannelSecurity::Secure,
    };
    /// Authenticated + encrypted in-process pipes.
    pub const SECURE_IN_PROCESS: Self = Self {
        link: LinkKind::InProcess,
        security: ChannelSecurity::Secure,
    };

    /// This plan with the secure channel policy switched on.
    pub fn secured(self) -> Self {
        Self {
            security: ChannelSecurity::Secure,
            ..self
        }
    }

    /// Whether channels run the handshake + encryption.
    pub fn is_secure(&self) -> bool {
        self.security == ChannelSecurity::Secure
    }
}

impl From<LinkKind> for TransportPlan {
    fn from(link: LinkKind) -> Self {
        Self {
            link,
            security: ChannelSecurity::Plaintext,
        }
    }
}

/// Which transport a registration day runs over (legacy shim).
#[deprecated(
    since = "0.9.0",
    note = "use `TransportPlan` (e.g. `TransportPlan::TCP`); transports are pluggable channel values now"
)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Direct in-process dispatch (zero-copy; the reference).
    InProcess,
    /// Length-prefixed frames over a loopback TCP socket, served by a
    /// worker thread.
    Tcp,
}

#[allow(deprecated)]
impl From<Transport> for TransportPlan {
    fn from(t: Transport) -> Self {
        match t {
            Transport::InProcess => TransportPlan::IN_PROCESS,
            Transport::Tcp => TransportPlan::TCP,
        }
    }
}

/// Builds the client-side channel policy for `station` from the
/// deployment keyring (station keys round-robin over the keyring slots;
/// refillers and steal lanes reuse their station's identity).
pub(crate) fn client_policy(
    keys: &TransportKeyring,
    security: ChannelSecurity,
    station: usize,
) -> ChannelPolicy {
    match security {
        ChannelSecurity::Plaintext => ChannelPolicy::Plaintext,
        ChannelSecurity::Secure => ChannelPolicy::Secure(SecureConfig {
            local: keys.station(station).clone(),
            registrar: keys.registrar_pk,
            enrolled: Arc::new(Vec::new()),
        }),
    }
}

/// Builds the registrar-side channel policy from the deployment keyring.
pub(crate) fn server_policy(keys: &TransportKeyring, security: ChannelSecurity) -> ChannelPolicy {
    match security {
        ChannelSecurity::Plaintext => ChannelPolicy::Plaintext,
        ChannelSecurity::Secure => ChannelPolicy::Secure(SecureConfig {
            local: keys.registrar.clone(),
            registrar: keys.registrar_pk,
            enrolled: Arc::new(keys.station_registry.clone()),
        }),
    }
}

/// Adapts any [`RegistrarEndpoint`] into the fleet's
/// [`RegistrarBoundary`], mapping message types at the seam.
pub struct ServiceBoundary<E> {
    /// The underlying endpoint (a [`RegistrarHost`] or a
    /// [`ChannelClient`]).
    pub endpoint: E,
}

impl<E: RegistrarEndpoint> ServiceBoundary<E> {
    /// Wraps an endpoint.
    pub fn new(endpoint: E) -> Self {
        Self { endpoint }
    }
}

impl<E: RegistrarEndpoint> RegistrarBoundary for ServiceBoundary<E> {
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError> {
        self.endpoint
            .check_in(CheckInRequest { voter })
            .map(|r| r.ticket)
            .map_err(ServiceError::into_trip)
    }

    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError> {
        self.endpoint
            .print_envelopes(PrintRequest {
                jobs: jobs.to_vec(),
            })
            .map(|r| r.envelopes)
            .map_err(ServiceError::into_trip)
    }

    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError> {
        self.endpoint
            .submit_envelopes(EnvelopeSubmitRequest { commitments })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError> {
        let checkouts = checkouts
            .into_iter()
            .map(|(qr, coupon)| (qr, coupon.into()))
            .collect();
        self.endpoint
            .check_out_batch(CheckOutBatchRequest { checkouts })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn sync(&mut self) -> Result<(), TripError> {
        self.endpoint.sync().map_err(ServiceError::into_trip)
    }

    fn submit_envelope_groups(
        &mut self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<IngestTicket, TripError> {
        self.endpoint
            .submit_envelope_groups(SeqEnvelopeSubmitRequest { groups })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn submit_checkout_groups(
        &mut self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<IngestTicket, TripError> {
        let groups = groups
            .into_iter()
            .map(|(idx, checkouts)| {
                (
                    idx,
                    checkouts
                        .into_iter()
                        .map(|(qr, coupon)| (qr, coupon.into()))
                        .collect(),
                )
            })
            .collect();
        self.endpoint
            .check_out_groups(SeqCheckOutRequest { groups })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), TripError> {
        self.endpoint
            .sync_through(sessions)
            .map_err(ServiceError::into_trip)
    }

    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError> {
        self.endpoint
            .activation_sweep(ActivationSweepRequest {
                claims: claims.to_vec(),
            })
            .map_err(ServiceError::into_trip)
    }

    fn registration_head(&mut self) -> Result<TreeHead, TripError> {
        self.endpoint
            .ledger_heads()
            .map(|h| h.registration)
            .map_err(ServiceError::into_trip)
    }

    fn envelope_head(&mut self) -> Result<TreeHead, TripError> {
        self.endpoint
            .ledger_heads()
            .map(|h| h.envelopes)
            .map_err(ServiceError::into_trip)
    }
}

/// A client for all four services over any established [`FramedChannel`]
/// (plaintext TCP, secure TCP, in-process pipes — the client neither
/// knows nor cares).
pub struct ChannelClient {
    chan: Box<dyn FramedChannel>,
}

impl ChannelClient {
    /// Wraps an already-established channel.
    pub fn over(chan: Box<dyn FramedChannel>) -> Self {
        Self { chan }
    }

    /// Dials through a [`Connector`] (which runs any configured
    /// handshake before returning).
    pub fn connect(connector: &dyn Connector) -> Result<Self, ServiceError> {
        Ok(Self::over(connector.connect()?))
    }

    /// Dials a plaintext TCP channel (legacy convenience).
    pub fn tcp(addr: std::net::SocketAddr) -> Result<Self, ServiceError> {
        Ok(Self::over(Box::new(TcpChannel::connect(addr)?)))
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        self.chan.send_frame(&req.to_wire())?;
        let frame = self.chan.recv_frame()?;
        Response::from_wire(&frame).map_err(ServiceError::codec)
    }

    /// Asks the server loop to exit (flushing its ingestion queues first).
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched shutdown reply".into())),
        }
    }
}

/// A client over one framed TCP connection (legacy shim).
#[deprecated(
    since = "0.9.0",
    note = "use `ChannelClient` over a `Connector` (e.g. `TcpConnector`)"
)]
pub struct TcpClient;

#[allow(deprecated)]
impl TcpClient {
    /// Connects a plaintext [`ChannelClient`] to a serving
    /// [`RegistrarHost`].
    pub fn connect(addr: std::net::SocketAddr) -> Result<ChannelClient, ServiceError> {
        ChannelClient::tcp(addr)
    }
}

macro_rules! chan_call {
    ($self:ident, $req:expr, $variant:ident) => {
        match $self.call(&$req)? {
            Response::$variant(m) => Ok(m),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched response tag".into())),
        }
    };
    ($self:ident, $req:expr, $variant:ident, unit) => {
        match $self.call(&$req)? {
            Response::$variant => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched response tag".into())),
        }
    };
}

impl RegistrarService for ChannelClient {
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError> {
        chan_call!(self, Request::CheckIn(req), CheckIn)
    }

    fn check_out_batch(
        &mut self,
        req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        chan_call!(self, Request::CheckOutBatch(req), CheckOutBatch)
    }

    fn check_out_groups(
        &mut self,
        req: SeqCheckOutRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        chan_call!(self, Request::CheckOutBatchSeq(req), CheckOutBatchSeq)
    }
}

impl PrintService for ChannelClient {
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError> {
        chan_call!(self, Request::Print(req), Print)
    }
}

impl LedgerIngestService for ChannelClient {
    fn submit_envelopes(
        &mut self,
        req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        chan_call!(self, Request::SubmitEnvelopes(req), SubmitEnvelopes)
    }

    fn sync(&mut self) -> Result<(), ServiceError> {
        chan_call!(self, Request::Sync, Sync, unit)
    }

    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError> {
        chan_call!(self, Request::LedgerHeads, LedgerHeads)
    }

    fn submit_envelope_groups(
        &mut self,
        req: SeqEnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        chan_call!(self, Request::SubmitEnvelopesSeq(req), SubmitEnvelopesSeq)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), ServiceError> {
        chan_call!(
            self,
            Request::SyncThrough(SyncThroughRequest { sessions }),
            SyncThrough,
            unit
        )
    }

    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        chan_call!(self, Request::IngestStats, IngestStats)
    }
}

impl ActivationService for ChannelClient {
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError> {
        chan_call!(self, Request::ActivationSweep(req), ActivationSweep, unit)
    }
}

/// Maps one request onto any endpoint bundle. `sync_on_shutdown` makes
/// `Shutdown` imply a full ingest flush — right for the single-connection
/// server (the connection *is* the day), wrong for one station of a
/// multi-connection day (other stations are still submitting; the
/// coordinator owns the final barrier).
pub(crate) fn dispatch<E: crate::traits::RegistrarEndpoint>(
    host: &mut E,
    req: Request,
    sync_on_shutdown: bool,
) -> (Response, bool) {
    match req {
        Request::CheckIn(m) => (
            host.check_in(m)
                .map(Response::CheckIn)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::CheckOutBatch(m) => (
            host.check_out_batch(m)
                .map(Response::CheckOutBatch)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::Print(m) => (
            host.print_envelopes(m)
                .map(Response::Print)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SubmitEnvelopes(m) => (
            host.submit_envelopes(m)
                .map(Response::SubmitEnvelopes)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::Sync => (
            host.sync()
                .map(|()| Response::Sync)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::LedgerHeads => (
            host.ledger_heads()
                .map(Response::LedgerHeads)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::ActivationSweep(m) => (
            host.activation_sweep(m)
                .map(|()| Response::ActivationSweep)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SubmitEnvelopesSeq(m) => (
            host.submit_envelope_groups(m)
                .map(Response::SubmitEnvelopesSeq)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::CheckOutBatchSeq(m) => (
            host.check_out_groups(m)
                .map(Response::CheckOutBatchSeq)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SyncThrough(m) => (
            host.sync_through(m.sessions)
                .map(|()| Response::SyncThrough)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::IngestStats => (
            LedgerIngestService::ingest_stats(host)
                .map(Response::IngestStats)
                .unwrap_or_else(Response::Err),
            false,
        ),
        // Flush before acknowledging so the ledger is complete when the
        // server loop returns (single-connection mode only).
        Request::Shutdown => {
            if sync_on_shutdown {
                match host.sync() {
                    Ok(()) => (Response::Shutdown, true),
                    Err(e) => (Response::Err(e), true),
                }
            } else {
                (Response::Shutdown, true)
            }
        }
    }
}

/// Serves one established channel until a `Shutdown` request or a
/// transport failure. Malformed requests are answered with a typed error
/// and the connection continues (one bad frame must not take the
/// registrar down) — except a secure-channel frame on a plaintext
/// channel, which is a policy mismatch: the peer gets a typed
/// [`ServiceError::HandshakeFailed`] and the connection closes.
pub fn serve_channel(
    chan: &mut dyn FramedChannel,
    host: &mut RegistrarHost<'_>,
) -> Result<(), ServiceError> {
    loop {
        let frame = chan.recv_frame()?;
        let (response, done) = match Request::from_wire(&frame) {
            Ok(req) => dispatch(host, req, true),
            Err(_) if HandshakeFrame::is_channel_frame(&frame) => {
                let e = ServiceError::HandshakeFailed(
                    "plaintext registrar received a secure-channel frame".into(),
                );
                chan.send_frame(&Response::Err(e.clone()).to_wire())?;
                return Err(e);
            }
            Err(e) => (
                Response::Err(ServiceError::Transport(format!("bad request: {e}"))),
                false,
            ),
        };
        chan.send_frame(&response.to_wire())?;
        if done {
            return Ok(());
        }
    }
}

/// Serves one client TCP connection (plaintext). Legacy wrapper over
/// [`serve_channel`].
pub fn serve_connection(
    stream: TcpStream,
    host: &mut RegistrarHost<'_>,
) -> Result<(), ServiceError> {
    let mut chan = TcpChannel::from_stream(stream)?;
    serve_channel(&mut chan, host)
}

/// One stolen kiosk-range chunk: when a polling station dies mid-day,
/// each surviving station that absorbs a contiguous chunk of the dead
/// station's kiosk range logs one of these (the kiosk assignment `i mod
/// |K|` never moves — only transport ownership does).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealRecord {
    /// The dead station whose kiosk range was stolen.
    pub victim: usize,
    /// The surviving station the chunk was attributed to.
    pub thief: usize,
    /// Undelivered sessions the chunk re-ran.
    pub sessions: usize,
    /// Retry depth of this chunk: `0` for a first steal off the dead
    /// station, `n` for a chunk re-stolen after `n` steal-runner deaths.
    pub depth: usize,
}

/// End-of-day service-layer telemetry, returned by every day runner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Ingest coalescing counters and (for pipelined days) worker
    /// busy/idle time.
    pub ingest: IngestStatsReply,
    /// Effective ingest worker count (`1` on barrier and single-worker
    /// days; pipelined days run `min(workers, stations)` shards).
    pub workers: usize,
    /// Work-stealing log: one entry per chunk of a dead station's kiosk
    /// range absorbed by a survivor, retry chains included. Empty on
    /// healthy days.
    pub steals: Vec<StealRecord>,
    /// Deadline expiries observed at station boundaries (connect and
    /// call timeouts, injected stalls included). Zero on healthy days.
    pub timeouts: u64,
    /// Reconnect attempts the retry layer made beyond first tries.
    pub reconnects: u64,
    /// Half-open or mid-frame-stalled connections the gateway reaped.
    pub reaped: u64,
    /// Stations declared lost by the coordinator's *stall* detector (no
    /// progress within the liveness deadline) rather than by a clean
    /// connection death; each one triggered the chunked steal path.
    pub stall_steals: u64,
}

/// Runs `client_run` against the registrar parts of `system` served per
/// `plan`, while the kiosks (and adversary-loot bookkeeping) stay on the
/// caller's side of the boundary. This is the borrow seam: the registrar
/// state moves behind the boundary for the duration of the run.
fn with_boundary<R>(
    system: &mut TripSystem,
    plan: TransportPlan,
    threads: usize,
    client_run: impl FnOnce(
        &mut dyn RegistrarBoundary,
        &[vg_trip::kiosk::Kiosk],
        &mut Vec<vg_trip::kiosk::StolenCredential>,
    ) -> Result<R, TripError>,
) -> Result<(R, DayStats), TripError> {
    let TripSystem {
        officials,
        printers,
        ledger,
        kiosks,
        kiosk_registry,
        adversary_loot,
        transport_keys,
        ..
    } = system;
    let (Some(official), Some(printer)) = (officials.first(), printers.first()) else {
        return Err(TripError::InvalidConfig(
            "a registration day needs at least one official and one printer".into(),
        ));
    };
    if plan == TransportPlan::IN_PROCESS {
        // Zero-copy reference path: the endpoint is the host.
        let host = RegistrarHost::new(official, printer, ledger, kiosk_registry, threads);
        let mut boundary = ServiceBoundary::new(host);
        let out = client_run(&mut boundary, kiosks, adversary_loot)?;
        let ingest = boundary
            .endpoint
            .ingest_stats()
            .map_err(|e| TripError::Boundary(e.to_string()))?;
        return Ok((
            out,
            DayStats {
                ingest,
                workers: 1,
                steals: Vec::new(),
                timeouts: 0,
                reconnects: 0,
                reaped: 0,
                stall_steals: 0,
            },
        ));
    }
    let client_pol = client_policy(transport_keys, plan.security, 0);
    let server_pol = server_policy(transport_keys, plan.security);
    // Build the two raw channel halves per link kind. For TCP the raw
    // connect happens BEFORE the server thread spawns: the bound
    // listener's backlog holds the connection, and a failed connect
    // returns here with no accept() ever blocking — otherwise a connect
    // failure would leave the server thread parked in accept() and the
    // scope join would hang the whole registration day. (Handshakes run
    // *after* the spawn; they cannot deadlock because both sides are then
    // live.)
    type LazyServerChannel =
        Box<dyn FnOnce() -> Result<Box<dyn FramedChannel>, ServiceError> + Send>;
    let (client_raw, server_accept): (Box<dyn FramedChannel>, LazyServerChannel) = match plan.link {
        LinkKind::InProcess => {
            let (client_half, server_half) = pipe_pair();
            (
                Box::new(client_half),
                Box::new(move || Ok(Box::new(server_half) as Box<dyn FramedChannel>)),
            )
        }
        LinkKind::Tcp => {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| TripError::Boundary(format!("bind: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| TripError::Boundary(format!("local_addr: {e}")))?;
            let chan = TcpChannel::connect(addr).map_err(|e| TripError::Boundary(e.to_string()))?;
            (
                Box::new(chan),
                Box::new(move || {
                    let (stream, _) = listener.accept()?;
                    Ok(Box::new(TcpChannel::from_stream(stream)?) as Box<dyn FramedChannel>)
                }),
            )
        }
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(move || -> Result<(), ServiceError> {
            let raw = server_accept()?;
            let mut chan = server_pol.establish_server(raw)?;
            let mut host = RegistrarHost::new(official, printer, ledger, kiosk_registry, threads);
            serve_channel(chan.as_mut(), &mut host)
        });
        let run = |raw: Box<dyn FramedChannel>| -> Result<(R, DayStats), TripError> {
            let chan = client_pol
                .establish_client(raw)
                .map_err(|e| TripError::Boundary(e.to_string()))?;
            let mut boundary = ServiceBoundary::new(ChannelClient::over(chan));
            let out = client_run(&mut boundary, kiosks, adversary_loot);
            let ingest = match &out {
                Ok(_) => boundary.endpoint.ingest_stats().ok(),
                Err(_) => None,
            };
            // Always attempt shutdown so the server thread exits even
            // when the client run failed.
            let down = boundary.endpoint.shutdown();
            let out = out?;
            down.map_err(|e| TripError::Boundary(e.to_string()))?;
            Ok((
                out,
                DayStats {
                    ingest: ingest.unwrap_or_default(),
                    workers: 1,
                    steals: Vec::new(),
                    timeouts: 0,
                    reconnects: 0,
                    reaped: 0,
                    stall_steals: 0,
                },
            ))
        };
        let result = run(client_raw);
        match server.join() {
            Ok(Ok(())) => result,
            Ok(Err(server_err)) => result.and(Err(TripError::Boundary(server_err.to_string()))),
            Err(_) => result.and(Err(TripError::Boundary("server panicked".into()))),
        }
    })
}

/// Runs a whole fleet registration day over `transport`, streaming
/// outcomes to `sink` in queue order. Bit-identical ledgers and outcomes
/// across transport plans for any `(seed, queue, kiosks, pool, threads)`.
/// Returns the day's service-layer telemetry.
pub fn register_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    mut sink: impl FnMut(RegistrationOutcome),
) -> Result<DayStats, TripError> {
    let mut pool = fleet.prepare_pool(system, plan);
    let threads = fleet.config().threads;
    with_boundary(
        system,
        transport.into(),
        threads,
        move |boundary, kiosks, loot| {
            fleet.register_each_over(kiosks, boundary, plan, &mut pool, loot, &mut sink)
        },
    )
    .map(|((), stats)| stats)
}

/// [`register_day`] plus per-window credential activation on fresh
/// devices, streaming `(outcome, device)` pairs in queue order.
pub fn register_and_activate_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    mut sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    let mut pool = fleet.prepare_pool(system, plan);
    let threads = fleet.config().threads;
    let authority_pk = system.authority.public_key;
    let printer_registry = system.printer_registry.clone();
    with_boundary(
        system,
        transport.into(),
        threads,
        move |boundary, kiosks, loot| {
            fleet.register_and_activate_each_over(
                kiosks,
                boundary,
                plan,
                &mut pool,
                &authority_pk,
                &printer_registry,
                loot,
                &mut sink,
            )
        },
    )
    .map(|((), stats)| stats)
}

/// Fetches both registrar ledger heads over `transport` (sanity hook for
/// examples and benches; implies a full ingest flush).
pub fn ledger_heads_over(
    system: &mut TripSystem,
    transport: impl Into<TransportPlan>,
    threads: usize,
) -> Result<(TreeHead, TreeHead), TripError> {
    with_boundary(system, transport.into(), threads, |boundary, _, _| {
        Ok((boundary.registration_head()?, boundary.envelope_head()?))
    })
    .map(|(heads, _)| heads)
}
