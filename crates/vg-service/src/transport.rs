//! The transports: in-process dispatch and a framed TCP socket, behind
//! one [`Transport`] knob, plus the fleet-facing [`ServiceBoundary`]
//! adapter and whole-registration-day runners.
//!
//! Both transports serve the *same* [`RegistrarHost`] logic, so a fleet
//! run is bit-identical across them (pinned by the workspace's
//! cross-transport equivalence proptests):
//!
//! - [`Transport::InProcess`]: the endpoint **is** the host — direct
//!   method calls, zero copies, no serialization. Today's behavior.
//! - [`Transport::Tcp`]: a loopback socket with length-prefixed frames;
//!   the host runs a worker-thread server loop, the fleet drives a
//!   [`TcpClient`]. Every request round-trips the full versioned codec.

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};

use vg_crypto::schnorr::NonceCoupon;
use vg_ledger::{EnvelopeCommitment, TreeHead, VoterId};
use vg_trip::boundary::{IngestTicket, RegistrarBoundary};
use vg_trip::fleet::KioskFleet;
use vg_trip::materials::{CheckInTicket, CheckOutQr, Envelope};
use vg_trip::protocol::RegistrationOutcome;
use vg_trip::setup::TripSystem;
use vg_trip::vsd::{ActivationClaim, Vsd};
use vg_trip::{PrintJob, TripError};

use crate::error::ServiceError;
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, IngestReceipt, IngestStatsReply, LedgerHeads,
    PrintRequest, PrintResponse, Request, Response, SeqCheckOutRequest, SeqEnvelopeSubmitRequest,
    SyncThroughRequest,
};
use crate::registrar::RegistrarHost;
use crate::traits::{
    ActivationService, LedgerIngestService, PrintService, RegistrarEndpoint, RegistrarService,
};
use crate::wire::{read_frame, write_frame};

/// Which transport a registration day runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// Direct in-process dispatch (zero-copy; the reference).
    #[default]
    InProcess,
    /// Length-prefixed frames over a loopback TCP socket, served by a
    /// worker thread.
    Tcp,
}

/// Adapts any [`RegistrarEndpoint`] into the fleet's
/// [`RegistrarBoundary`], mapping message types at the seam.
pub struct ServiceBoundary<E> {
    /// The underlying endpoint (a [`RegistrarHost`] or a [`TcpClient`]).
    pub endpoint: E,
}

impl<E: RegistrarEndpoint> ServiceBoundary<E> {
    /// Wraps an endpoint.
    pub fn new(endpoint: E) -> Self {
        Self { endpoint }
    }
}

impl<E: RegistrarEndpoint> RegistrarBoundary for ServiceBoundary<E> {
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError> {
        self.endpoint
            .check_in(CheckInRequest { voter })
            .map(|r| r.ticket)
            .map_err(ServiceError::into_trip)
    }

    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError> {
        self.endpoint
            .print_envelopes(PrintRequest {
                jobs: jobs.to_vec(),
            })
            .map(|r| r.envelopes)
            .map_err(ServiceError::into_trip)
    }

    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError> {
        self.endpoint
            .submit_envelopes(EnvelopeSubmitRequest { commitments })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError> {
        let checkouts = checkouts
            .into_iter()
            .map(|(qr, coupon)| (qr, coupon.into()))
            .collect();
        self.endpoint
            .check_out_batch(CheckOutBatchRequest { checkouts })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn sync(&mut self) -> Result<(), TripError> {
        self.endpoint.sync().map_err(ServiceError::into_trip)
    }

    fn submit_envelope_groups(
        &mut self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<IngestTicket, TripError> {
        self.endpoint
            .submit_envelope_groups(SeqEnvelopeSubmitRequest { groups })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn submit_checkout_groups(
        &mut self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<IngestTicket, TripError> {
        let groups = groups
            .into_iter()
            .map(|(idx, checkouts)| {
                (
                    idx,
                    checkouts
                        .into_iter()
                        .map(|(qr, coupon)| (qr, coupon.into()))
                        .collect(),
                )
            })
            .collect();
        self.endpoint
            .check_out_groups(SeqCheckOutRequest { groups })
            .map(|r| IngestTicket(r.ticket))
            .map_err(ServiceError::into_trip)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), TripError> {
        self.endpoint
            .sync_through(sessions)
            .map_err(ServiceError::into_trip)
    }

    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError> {
        self.endpoint
            .activation_sweep(ActivationSweepRequest {
                claims: claims.to_vec(),
            })
            .map_err(ServiceError::into_trip)
    }

    fn registration_head(&mut self) -> Result<TreeHead, TripError> {
        self.endpoint
            .ledger_heads()
            .map(|h| h.registration)
            .map_err(ServiceError::into_trip)
    }

    fn envelope_head(&mut self) -> Result<TreeHead, TripError> {
        self.endpoint
            .ledger_heads()
            .map(|h| h.envelopes)
            .map_err(ServiceError::into_trip)
    }
}

/// A client for all four services over one framed TCP connection.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a serving [`RegistrarHost`].
    pub fn connect(addr: std::net::SocketAddr) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        write_frame(&mut self.writer, &req.to_wire())?;
        let frame = read_frame(&mut self.reader)?;
        Response::from_wire(&frame).map_err(ServiceError::codec)
    }

    /// Asks the server loop to exit (flushing its ingestion queues first).
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched shutdown reply".into())),
        }
    }
}

macro_rules! tcp_call {
    ($self:ident, $req:expr, $variant:ident) => {
        match $self.call(&$req)? {
            Response::$variant(m) => Ok(m),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched response tag".into())),
        }
    };
    ($self:ident, $req:expr, $variant:ident, unit) => {
        match $self.call(&$req)? {
            Response::$variant => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(ServiceError::Transport("mismatched response tag".into())),
        }
    };
}

impl RegistrarService for TcpClient {
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError> {
        tcp_call!(self, Request::CheckIn(req), CheckIn)
    }

    fn check_out_batch(
        &mut self,
        req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        tcp_call!(self, Request::CheckOutBatch(req), CheckOutBatch)
    }

    fn check_out_groups(
        &mut self,
        req: SeqCheckOutRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        tcp_call!(self, Request::CheckOutBatchSeq(req), CheckOutBatchSeq)
    }
}

impl PrintService for TcpClient {
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError> {
        tcp_call!(self, Request::Print(req), Print)
    }
}

impl LedgerIngestService for TcpClient {
    fn submit_envelopes(
        &mut self,
        req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        tcp_call!(self, Request::SubmitEnvelopes(req), SubmitEnvelopes)
    }

    fn sync(&mut self) -> Result<(), ServiceError> {
        tcp_call!(self, Request::Sync, Sync, unit)
    }

    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError> {
        tcp_call!(self, Request::LedgerHeads, LedgerHeads)
    }

    fn submit_envelope_groups(
        &mut self,
        req: SeqEnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        tcp_call!(self, Request::SubmitEnvelopesSeq(req), SubmitEnvelopesSeq)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), ServiceError> {
        tcp_call!(
            self,
            Request::SyncThrough(SyncThroughRequest { sessions }),
            SyncThrough,
            unit
        )
    }

    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        tcp_call!(self, Request::IngestStats, IngestStats)
    }
}

impl ActivationService for TcpClient {
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError> {
        tcp_call!(self, Request::ActivationSweep(req), ActivationSweep, unit)
    }
}

/// Maps one request onto any endpoint bundle. `sync_on_shutdown` makes
/// `Shutdown` imply a full ingest flush — right for the single-connection
/// server (the connection *is* the day), wrong for one station of a
/// multi-connection day (other stations are still submitting; the
/// coordinator owns the final barrier).
pub(crate) fn dispatch<E: crate::traits::RegistrarEndpoint>(
    host: &mut E,
    req: Request,
    sync_on_shutdown: bool,
) -> (Response, bool) {
    match req {
        Request::CheckIn(m) => (
            host.check_in(m)
                .map(Response::CheckIn)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::CheckOutBatch(m) => (
            host.check_out_batch(m)
                .map(Response::CheckOutBatch)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::Print(m) => (
            host.print_envelopes(m)
                .map(Response::Print)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SubmitEnvelopes(m) => (
            host.submit_envelopes(m)
                .map(Response::SubmitEnvelopes)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::Sync => (
            host.sync()
                .map(|()| Response::Sync)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::LedgerHeads => (
            host.ledger_heads()
                .map(Response::LedgerHeads)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::ActivationSweep(m) => (
            host.activation_sweep(m)
                .map(|()| Response::ActivationSweep)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SubmitEnvelopesSeq(m) => (
            host.submit_envelope_groups(m)
                .map(Response::SubmitEnvelopesSeq)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::CheckOutBatchSeq(m) => (
            host.check_out_groups(m)
                .map(Response::CheckOutBatchSeq)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::SyncThrough(m) => (
            host.sync_through(m.sessions)
                .map(|()| Response::SyncThrough)
                .unwrap_or_else(Response::Err),
            false,
        ),
        Request::IngestStats => (
            LedgerIngestService::ingest_stats(host)
                .map(Response::IngestStats)
                .unwrap_or_else(Response::Err),
            false,
        ),
        // Flush before acknowledging so the ledger is complete when the
        // server loop returns (single-connection mode only).
        Request::Shutdown => {
            if sync_on_shutdown {
                match host.sync() {
                    Ok(()) => (Response::Shutdown, true),
                    Err(e) => (Response::Err(e), true),
                }
            } else {
                (Response::Shutdown, true)
            }
        }
    }
}

/// Serves one client connection until a `Shutdown` request or a transport
/// failure. Malformed requests are answered with a typed error and the
/// connection continues (one bad frame must not take the registrar down).
pub fn serve_connection(
    stream: TcpStream,
    host: &mut RegistrarHost<'_>,
) -> Result<(), ServiceError> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = read_frame(&mut reader)?;
        let (response, done) = match Request::from_wire(&frame) {
            Ok(req) => dispatch(host, req, true),
            Err(e) => (
                Response::Err(ServiceError::Transport(format!("bad request: {e}"))),
                false,
            ),
        };
        write_frame(&mut writer, &response.to_wire())?;
        if done {
            return Ok(());
        }
    }
}

/// One stolen kiosk-range chunk: when a polling station dies mid-day,
/// each surviving station that absorbs a contiguous chunk of the dead
/// station's kiosk range logs one of these (the kiosk assignment `i mod
/// |K|` never moves — only transport ownership does).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealRecord {
    /// The dead station whose kiosk range was stolen.
    pub victim: usize,
    /// The surviving station the chunk was attributed to.
    pub thief: usize,
    /// Undelivered sessions the chunk re-ran.
    pub sessions: usize,
}

/// End-of-day service-layer telemetry, returned by every day runner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Ingest coalescing counters and (for pipelined days) worker
    /// busy/idle time.
    pub ingest: IngestStatsReply,
    /// Effective ingest worker count (`1` on barrier and single-worker
    /// days; pipelined days run `min(workers, stations)` shards).
    pub workers: usize,
    /// Work-stealing log: one entry per chunk of a dead station's kiosk
    /// range absorbed by a survivor. Empty on healthy days.
    pub steals: Vec<StealRecord>,
}

/// Runs `client_run` against the registrar parts of `system` served over
/// `transport`, while the kiosks (and adversary-loot bookkeeping) stay on
/// the caller's side of the boundary. This is the borrow seam: the
/// registrar state moves behind the boundary for the duration of the run.
fn with_boundary<R>(
    system: &mut TripSystem,
    transport: Transport,
    threads: usize,
    client_run: impl FnOnce(
        &mut dyn RegistrarBoundary,
        &[vg_trip::kiosk::Kiosk],
        &mut Vec<vg_trip::kiosk::StolenCredential>,
    ) -> Result<R, TripError>,
) -> Result<(R, DayStats), TripError> {
    let TripSystem {
        officials,
        printers,
        ledger,
        kiosks,
        kiosk_registry,
        adversary_loot,
        ..
    } = system;
    let official = &officials[0];
    let printer = &printers[0];
    match transport {
        Transport::InProcess => {
            let host = RegistrarHost::new(official, printer, ledger, kiosk_registry, threads);
            let mut boundary = ServiceBoundary::new(host);
            let out = client_run(&mut boundary, kiosks, adversary_loot)?;
            let ingest = boundary
                .endpoint
                .ingest_stats()
                .map_err(|e| TripError::Boundary(e.to_string()))?;
            Ok((
                out,
                DayStats {
                    ingest,
                    workers: 1,
                    steals: Vec::new(),
                },
            ))
        }
        Transport::Tcp => {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| TripError::Boundary(format!("bind: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| TripError::Boundary(format!("local_addr: {e}")))?;
            // Connect BEFORE spawning the server: the bound listener's
            // backlog holds the connection, and a failed connect returns
            // here with no accept() ever blocking — otherwise a connect
            // failure would leave the server thread parked in accept()
            // and the scope join would hang the whole registration day.
            let client =
                TcpClient::connect(addr).map_err(|e| TripError::Boundary(e.to_string()))?;
            std::thread::scope(|scope| {
                let server = scope.spawn(move || -> Result<(), ServiceError> {
                    let (stream, _) = listener.accept()?;
                    let mut host =
                        RegistrarHost::new(official, printer, ledger, kiosk_registry, threads);
                    serve_connection(stream, &mut host)
                });
                let run = |client: TcpClient| -> Result<(R, DayStats), TripError> {
                    let mut boundary = ServiceBoundary::new(client);
                    let out = client_run(&mut boundary, kiosks, adversary_loot);
                    let ingest = match &out {
                        Ok(_) => boundary.endpoint.ingest_stats().ok(),
                        Err(_) => None,
                    };
                    // Always attempt shutdown so the server thread exits
                    // even when the client run failed.
                    let down = boundary.endpoint.shutdown();
                    let out = out?;
                    down.map_err(|e| TripError::Boundary(e.to_string()))?;
                    Ok((
                        out,
                        DayStats {
                            ingest: ingest.unwrap_or_default(),
                            workers: 1,
                            steals: Vec::new(),
                        },
                    ))
                };
                let result = run(client);
                match server.join() {
                    Ok(Ok(())) => result,
                    Ok(Err(server_err)) => {
                        result.and(Err(TripError::Boundary(server_err.to_string())))
                    }
                    Err(_) => result.and(Err(TripError::Boundary("server panicked".into()))),
                }
            })
        }
    }
}

/// Runs a whole fleet registration day over `transport`, streaming
/// outcomes to `sink` in queue order. Bit-identical ledgers and outcomes
/// across transports for any `(seed, queue, kiosks, pool, threads)`.
/// Returns the day's service-layer telemetry.
pub fn register_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    mut sink: impl FnMut(RegistrationOutcome),
) -> Result<DayStats, TripError> {
    let mut pool = fleet.prepare_pool(system, plan);
    let threads = fleet.config().threads;
    with_boundary(system, transport, threads, move |boundary, kiosks, loot| {
        fleet.register_each_over(kiosks, boundary, plan, &mut pool, loot, &mut sink)
    })
    .map(|((), stats)| stats)
}

/// [`register_day`] plus per-window credential activation on fresh
/// devices, streaming `(outcome, device)` pairs in queue order.
pub fn register_and_activate_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    mut sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    let mut pool = fleet.prepare_pool(system, plan);
    let threads = fleet.config().threads;
    let authority_pk = system.authority.public_key;
    let printer_registry = system.printer_registry.clone();
    with_boundary(system, transport, threads, move |boundary, kiosks, loot| {
        fleet.register_and_activate_each_over(
            kiosks,
            boundary,
            plan,
            &mut pool,
            &authority_pk,
            &printer_registry,
            loot,
            &mut sink,
        )
    })
    .map(|((), stats)| stats)
}

/// Fetches both registrar ledger heads over `transport` (sanity hook for
/// examples and benches; implies a full ingest flush).
pub fn ledger_heads_over(
    system: &mut TripSystem,
    transport: Transport,
    threads: usize,
) -> Result<(TreeHead, TreeHead), TripError> {
    with_boundary(system, transport, threads, |boundary, _, _| {
        Ok((boundary.registration_head()?, boundary.envelope_head()?))
    })
    .map(|(heads, _)| heads)
}
