//! The pipelined registration-day engine: background pool refillers, a
//! sharded multi-worker ingest layer, and a multi-connection registrar
//! with dynamic kiosk work stealing.
//!
//! The barrier-synchronous day ([`crate::register_and_activate_day`])
//! executes its three stages lock-step: precompute refills the pool at
//! window boundaries, ledger admission flushes on the caller's thread at
//! every activation barrier, and the TCP server accepts exactly one
//! kiosk-coordinator connection. This module overlaps all three:
//!
//! - **Refillers** ([`vg_trip::pool::PoolFeed`]): each polling station
//!   runs a dedicated thread owning a `PrintService` client that keeps
//!   the station's ceremony pool above a low-water mark, hiding
//!   precompute behind ceremony latency mid-day, not just at warm start.
//! - **Sharded ingest**: N shard workers
//!   ([`PipelineConfig::workers`]) own disjoint station partitions of
//!   the session stream — shard = original kiosk-chunk owner, so a
//!   station's submissions always route to one worker. Each worker runs
//!   its own reorder buffers and the per-shard RLC admission sweeps
//!   (pure signature-chain verification, no ledger state:
//!   [`vg_ledger::RegistrationLedger::verify_batch`]), publishing
//!   verified groups into a shared inbox. One **commit sequencer**
//!   thread owns the ledgers: it drains the inbox's contiguous global
//!   prefix, appends through the preverified entry points in exact
//!   session order, and ends every sweep at the `persist()` commit
//!   barrier — so N workers saturate cores on verification while the
//!   day still yields **one signed head per ledger**, bit-identical to
//!   one worker. Prefix barriers
//!   ([`Request::SyncThrough`](crate::messages::Request)) resolve as
//!   admission advances; submissions come with real completion handles
//!   ([`IngestHandle`]) that can be polled or awaited.
//! - **Multi-connection registrar**: the TCP acceptor serves N
//!   kiosk-coordinator connections (one per polling station, plus each
//!   station's refiller client), with the commit sequencer as the single
//!   serialization point for ledger state.
//!
//! # Bit-identity
//!
//! Every pipeline configuration — station count, worker count, low-water
//! mark, ingest mode, activation lag, transport — produces ledgers and
//! credentials bit-identical to the sequential seeded reference: session
//! materials are pure functions of `(seed, global index, voter)`, kiosk
//! assignment stays `index mod |K|` (stations own disjoint kiosk
//! chunks), and the sequencer commits records in global session order no
//! matter which station or worker finished first. Pipelining changes
//! *when* work happens, never *what* lands on the ledger — pinned by
//! `tests/pipeline.rs`.
//!
//! # Failover: work stealing
//!
//! If a station's connection dies mid-window, the coordinator partitions
//! the dead station's undelivered kiosk range into contiguous chunks and
//! attributes one *steal-runner* connection per chunk to the surviving
//! stations — parallel recovery instead of one serial replay connection.
//! The kiosk assignment `i mod |K|` never moves (credentials keep the
//! same kiosk signatures); only transport ownership does. Re-derived
//! sessions are byte-identical (determinism again) and shard routing
//! keys off the *original* owner, so stolen re-submissions land on the
//! same worker whose reorder buffer drops duplicates — a partially
//! submitted window heals without double admission.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vg_crypto::par::par_map;
use vg_crypto::schnorr::NonceCoupon;
use vg_crypto::CompressedPoint;
use vg_ledger::{
    EnvelopeCommitment, EnvelopeLedger, Ledger, LedgerError, RegistrationLedger,
    RegistrationRecord, VoterId,
};
use vg_trip::boundary::{IngestTicket, RegistrarBoundary};
use vg_trip::fleet::{
    kiosk_owners, last_occurrence_of, partition_stations, ActivationContext, FeedSource,
    KioskFleet, PoolSource,
};
use vg_trip::kiosk::{Kiosk, StolenCredential};
use vg_trip::materials::{CheckInTicket, CheckOutQr, Envelope};
use vg_trip::official::Official;
use vg_trip::pool::PoolFeed;
use vg_trip::printer::EnvelopePrinter;
use vg_trip::protocol::RegistrationOutcome;
use vg_trip::setup::TripSystem;
use vg_trip::vsd::{activation_ledger_phase, ActivationClaim, Vsd};
use vg_trip::{PrintJob, TripError};

use crate::channel::{Connector, Deadlines, TcpConnector};
use crate::error::ServiceError;
use crate::fault::{FaultPlan, FaultyConnector};
use crate::gateway::{
    acceptor_loop, reactor_loop, Dispatched, GatewayDispatch, GatewayIntake, PipeHub, REAP_AFTER,
};
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, IngestReceipt, IngestStatsReply, LedgerHeads,
    PrintRequest, PrintResponse, Request, Response, SeqCheckOutRequest, SeqEnvelopeSubmitRequest,
};
use crate::registrar::MAX_PENDING_RECORDS;
use crate::retry::RetryPolicy;
use crate::traits::{ActivationService, LedgerIngestService, PrintService, RegistrarService};
use crate::transport::{
    client_policy, server_policy, ChannelClient, ChannelSecurity, DayStats, LinkKind,
    ServiceBoundary, StealRecord, TransportPlan,
};

/// When the ingest worker runs admission sweeps.
///
/// Either mode ends every sweep at the same commit point: records are
/// admitted to the in-memory Merkle state only after they are appended
/// (and, with fsync on, group-synced) to the durable WAL, and each sweep
/// closes by persisting a signed tree head covering everything admitted.
/// The modes differ only in *when* sweeps run, never in what a completed
/// sweep guarantees — so crash recovery replays to the same heads under
/// both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Flush only at barriers (sync/heads/activation) — the coalescing
    /// behavior of the single-connection host, behind a worker thread.
    #[default]
    Barrier,
    /// Additionally flush whenever the command channel goes idle, so
    /// admission sweeps overlap the next window's ceremonies.
    Background,
}

/// Tuning for a pipelined registration day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Polling-station connections. Must satisfy `1 <= stations <= |K|`
    /// (kiosks split into contiguous chunks, sessions follow their
    /// kiosk); anything else is a typed
    /// [`TripError::InvalidConfig`] — never silently clamped.
    pub stations: usize,
    /// Background-refiller low-water mark in sessions; `0` disables the
    /// refiller thread (stations refill synchronously at window
    /// boundaries).
    pub low_water: usize,
    /// When the ingest layer sweeps.
    pub ingest: IngestMode,
    /// Activate groups of this many windows behind one prefix barrier
    /// (`1` = a barrier per window, the lock-step reference). Larger lags
    /// amortize barrier and verification-fold fixed costs; peak memory
    /// grows to O(lag × pool batch).
    pub activation_lag: usize,
    /// Shard verification workers for the ingest layer. Shards key off
    /// the station owning each session's kiosk chunk, so the effective
    /// count is `min(workers, stations)` — the day reports it in
    /// [`DayStats::workers`]. `0` and `1` both mean the single-worker
    /// engine.
    pub workers: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            stations: 1,
            low_water: 0,
            ingest: IngestMode::Barrier,
            activation_lag: 1,
            workers: 1,
        }
    }
}

impl PipelineConfig {
    /// Whether any knob departs from the lock-step defaults.
    pub fn is_pipelined(&self) -> bool {
        self.stations > 1
            || self.low_water > 0
            || self.ingest == IngestMode::Background
            || self.activation_lag > 1
            || self.workers > 1
    }
}

/// A chaos hook for failover tests: station `station`'s boundary starts
/// failing every call after `after_ops` successful ones, simulating a
/// polling-station connection dying mid-window. Honest deployments pass
/// `None`.
#[derive(Clone, Copy, Debug)]
pub struct StationFault {
    /// Which station loses its connection.
    pub station: usize,
    /// Boundary calls that succeed before the connection "dies".
    pub after_ops: usize,
    /// If set, *recovery* (steal-runner) connections replaying the dead
    /// station's undelivered sessions also die after this many successful
    /// calls — the kill-during-failover case. How many runner
    /// generations die is bounded by [`StationFault::recovery_deaths`];
    /// once the bounded re-steal depth is exhausted the day aborts with a
    /// typed error. On a durable backend everything admitted before the
    /// kill is already persisted, so a reopened system replays it and
    /// dedups the re-submitted sessions against that persisted prefix.
    pub recovery_after_ops: Option<usize>,
    /// How many steal runners (in spawn order) the
    /// [`recovery_after_ops`](StationFault::recovery_after_ops) fault is
    /// injected into before subsequent runners run healthy. `usize::MAX`
    /// kills every generation, exhausting the bounded re-steal depth and
    /// aborting the day; a small count exercises the re-steal path that
    /// heals. Ignored when `recovery_after_ops` is `None`.
    pub recovery_deaths: usize,
}

/// How many times a failed steal chunk may be re-partitioned onto the
/// surviving stations before the day gives up with the runner's typed
/// error. Depth 0 is the initial steal off a dead station; each retry
/// re-steals only what is still undelivered, so bounded depth bounds
/// total replay work at roughly `depth × remaining`.
const MAX_RESTEAL_DEPTH: usize = 2;

/// Default coordinator liveness deadline: a station that delivers no
/// outcome for this long (while still holding undelivered sessions) is
/// declared *stalled* and its remainder is stolen exactly like a dead
/// station's. Deliberately generous — healthy stations deliver every few
/// milliseconds, and a false positive is merely wasteful (the dedup
/// layer absorbs the double delivery), never incorrect. Chaos tests
/// tighten it through [`ChaosOptions::stall_timeout`].
const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything the chaos harness can inject into a pipelined day. The
/// default injects nothing and runs with the production liveness
/// deadlines.
#[derive(Clone, Debug, Default)]
pub struct ChaosOptions {
    /// Clean connection-death schedule (the original failover hook).
    pub fault: Option<StationFault>,
    /// Seeded network/disk fault plan (see [`FaultPlan`]).
    pub plan: Option<FaultPlan>,
    /// Override for the coordinator's stall-detection deadline
    /// (`DEFAULT_STALL_TIMEOUT`, 30 s, when `None`).
    pub stall_timeout: Option<Duration>,
    /// Deterministic hang injection: the station stops mid-day WITHOUT
    /// erroring — the lost-without-dying scenario only the stall
    /// detector can recover from ([`StationFault`] deaths surface typed
    /// errors and take the ordinary failover path instead).
    pub hang: Option<StationHang>,
}

/// A station that silently stops making progress mid-day (see
/// [`ChaosOptions::hang`]). The hung thread parks until day teardown —
/// it never errors, never sends `Done` while the day runs — so healing
/// it is entirely on the coordinator's liveness deadline.
#[derive(Clone, Copy, Debug)]
pub struct StationHang {
    /// Which original station hangs.
    pub station: usize,
    /// Boundary operations the station completes before hanging.
    pub after_ops: usize,
}

// ---------------------------------------------------------------------------
// Completion handles
// ---------------------------------------------------------------------------

// Shared pipeline state (progress counters, the verified inbox) is
// internally consistent at every individual store, so locks recover from
// poisoning via `vg_crypto::sync::lock_recover` rather than panicking
// every waiting station and the day coordinator with it.
use vg_crypto::sync::lock_recover;

#[derive(Default)]
struct ProgressState {
    /// Sessions `[0, admitted_through)` are admitted on both ledgers.
    admitted_through: u64,
    /// Sticky first admission failure.
    failed: Option<ServiceError>,
    /// The worker exited; nothing further will resolve.
    finished: bool,
}

/// Shared admission progress the ingest worker publishes after every
/// sweep; [`IngestHandle`]s resolve against it.
#[derive(Clone, Default)]
pub struct IngestProgress {
    shared: Arc<(Mutex<ProgressState>, Condvar)>,
}

impl IngestProgress {
    /// Fresh progress at session zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn update(&self, admitted_through: u64, failed: Option<&ServiceError>) {
        let (lock, cv) = &*self.shared;
        let mut st = lock_recover(lock);
        st.admitted_through = st.admitted_through.max(admitted_through);
        if st.failed.is_none() {
            st.failed = failed.cloned();
        }
        cv.notify_all();
    }

    fn finish(&self) {
        let (lock, cv) = &*self.shared;
        lock_recover(lock).finished = true;
        cv.notify_all();
    }

    /// A handle that resolves once every session below `through` is
    /// admitted.
    pub fn handle(&self, through: u64) -> IngestHandle {
        IngestHandle {
            through,
            progress: self.clone(),
        }
    }
}

/// A real completion handle for an asynchronous ledger submission: where
/// the barrier-mode host hands out opaque tickets that only resolve at
/// the next sync, a pipelined submission can be polled or awaited while
/// the worker drives admission in the background.
pub struct IngestHandle {
    through: u64,
    progress: IngestProgress,
}

impl IngestHandle {
    /// Non-blocking check: `None` while admission is still pending,
    /// `Some(Ok)` once the covering prefix is admitted, `Some(Err)` on a
    /// sticky admission failure (or a worker that exited first).
    pub fn poll(&self) -> Option<Result<(), ServiceError>> {
        let (lock, _) = &*self.progress.shared;
        let st = lock_recover(lock);
        if let Some(e) = &st.failed {
            return Some(Err(e.clone()));
        }
        if st.admitted_through >= self.through {
            return Some(Ok(()));
        }
        if st.finished {
            return Some(Err(ServiceError::Transport(
                "ingest worker exited before admission".into(),
            )));
        }
        None
    }

    /// Blocks until the submission resolves.
    ///
    /// # Commit-point contract
    ///
    /// When `wait` returns `Ok(())`, every session up to and including
    /// the one this handle covers has been *admitted*: its envelope
    /// commitments and registration records passed the RLC admission
    /// sweep and were appended to the ledgers, and — on a durable
    /// backend — the sweep that admitted them ended with a `persist()`
    /// commit barrier (WAL group-fsync, then a signed tree head
    /// covering them). A crash after `Ok(())` therefore cannot lose the
    /// session: reopening the store replays it back under the same
    /// head. This holds identically under [`IngestMode::Barrier`] and
    /// [`IngestMode::Background`]; the modes only change when sweeps
    /// happen, not what an `Ok(())` means. On `Err`, nothing past the
    /// last successful sweep is guaranteed — but everything *before*
    /// the sticky failure was still persisted by its own sweep.
    pub fn wait(&self) -> Result<(), ServiceError> {
        let (lock, cv) = &*self.progress.shared;
        let mut st = lock_recover(lock);
        loop {
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.admitted_through >= self.through {
                return Ok(());
            }
            if st.finished {
                return Err(ServiceError::Transport(
                    "ingest worker exited before admission".into(),
                ));
            }
            st = vg_crypto::sync::wait_recover(cv, st);
        }
    }
}

// ---------------------------------------------------------------------------
// The sharded ingest engine
// ---------------------------------------------------------------------------

/// Minimum pending records before a channel-idle gap triggers a
/// background admission sweep (barriers always flush everything).
/// Smaller idle sweeps would fragment the RLC folds the coalescing win
/// comes from.
const MIN_IDLE_SWEEP: usize = 512;

/// Commands for the commit sequencer — the one thread owning the ledgers.
enum Cmd {
    CheckIn(VoterId, Sender<Result<CheckInTicket, ServiceError>>),
    SyncThrough(u64, Sender<Result<(), ServiceError>>),
    SyncAll(Sender<Result<(), ServiceError>>),
    Activate(Vec<ActivationClaim>, Sender<Result<(), ServiceError>>),
    Heads(Sender<Result<LedgerHeads, ServiceError>>),
    Stats(Sender<IngestStatsReply>),
    /// Fail every parked barrier so blocked stations unwind (day abort).
    Abort,
    /// A shard worker changed the shared inbox (released, verified or
    /// failed something): commit opportunistically and re-check parked
    /// barriers. Carries nothing — the inbox is the message.
    Poke,
    /// Day teardown, sent exactly once by the coordinator after every
    /// station is done: the sequencer drops its shard senders so the
    /// workers drain, exit-sweep into the inbox, and release their own
    /// sequencer senders in turn. Without this the worker ⇄ sequencer
    /// channel cycle would keep both sides parked in `recv` forever.
    Shutdown,
}

/// Commands for one shard verification worker.
enum ShardCmd {
    /// Session-tagged envelope-commitment groups for sessions this shard
    /// owns; the reply resolves once the groups are buffered (and any
    /// overflow sweep ran), mirroring the old submit acknowledgement.
    Envelopes(
        Vec<(u64, Vec<EnvelopeCommitment>)>,
        Sender<Result<(), ServiceError>>,
    ),
    /// Session-tagged registration-record groups, same contract.
    Records(
        Vec<(u64, Vec<RegistrationRecord>)>,
        Sender<Result<(), ServiceError>>,
    ),
    /// Barrier: verify everything pending now and publish it, then
    /// report what is still stuck in the reorder buffers (a nonzero
    /// report at day end means sessions were lost in transit).
    Flush(Sender<FlushReport>),
}

/// A shard worker's answer to [`ShardCmd::Flush`].
struct FlushReport {
    /// Session groups still waiting for earlier sessions, per lane.
    env_reorder: usize,
    reg_reorder: usize,
}

/// Which shard worker owns a global session index. Ownership keys off
/// the *original* station owning the session's kiosk (`i mod |K|`, then
/// the contiguous kiosk chunk map) — never off whichever connection
/// happens to carry the submission — so work-stealing re-submissions
/// route to the same worker and dedup in its reorder buffer.
#[derive(Clone)]
struct ShardRoute {
    /// Kiosk index → owning station (from
    /// [`vg_trip::fleet::kiosk_owners`]).
    owner: Arc<Vec<usize>>,
    workers: usize,
}

impl ShardRoute {
    fn worker_of(&self, session: u64) -> usize {
        self.owner[session as usize % self.owner.len()] % self.workers
    }
}

/// Per-worker telemetry snapshot, published into the inbox so the
/// sequencer can answer [`Cmd::Stats`] without stopping the workers.
#[derive(Clone, Copy, Default)]
struct WorkerTelemetry {
    env_batches: u64,
    env_sweeps: u64,
    reg_batches: u64,
    reg_sweeps: u64,
    busy_us: u64,
    idle_us: u64,
}

/// Verified-but-uncommitted state shared between the shard workers and
/// the commit sequencer: session groups that passed their shard's RLC
/// sweep wait here for the sequencer to drain them as one contiguous,
/// globally-ordered prefix.
struct VerifiedInbox {
    env: BTreeMap<u64, Vec<EnvelopeCommitment>>,
    reg: BTreeMap<u64, Vec<RegistrationRecord>>,
    /// Total records across both maps (commit-threshold bookkeeping).
    records: usize,
    /// Per-worker release floors: worker `w` has released every owned
    /// session below `env_floor[w]` (resp. `reg`). The global released
    /// prefix is the minimum across workers — what parked barriers can
    /// force a flush for.
    env_floor: Vec<u64>,
    reg_floor: Vec<u64>,
    /// Earliest verification failure across all workers, by session.
    failed: Option<(u64, ServiceError)>,
    stats: Vec<WorkerTelemetry>,
}

impl VerifiedInbox {
    fn new(worker_sessions: &[Vec<u64>]) -> Self {
        let floor: Vec<u64> = worker_sessions
            .iter()
            .map(|s| s.first().copied().unwrap_or(u64::MAX))
            .collect();
        Self {
            env: BTreeMap::new(),
            reg: BTreeMap::new(),
            records: 0,
            env_floor: floor.clone(),
            reg_floor: floor,
            failed: None,
            stats: vec![WorkerTelemetry::default(); worker_sessions.len()],
        }
    }

    /// Record a verification failure, keeping the earliest session.
    fn fail(&mut self, session: u64, error: ServiceError) {
        match &self.failed {
            Some((s, _)) if *s <= session => {}
            _ => self.failed = Some((session, error)),
        }
    }
}

/// One ledger lane of a shard worker: the reorder buffer over the
/// worker's *owned* sessions plus the verification backlog.
struct WorkerLane<R> {
    /// The worker's owned global session indices, ascending (sparse —
    /// shards interleave in the global order).
    sessions: Arc<Vec<u64>>,
    /// Position in `sessions` of the next owned session to release.
    pos: usize,
    /// Session groups waiting for an earlier owned session to arrive.
    reorder: BTreeMap<u64, Vec<R>>,
    /// Released, in-order groups awaiting a verification sweep.
    pending: Vec<(u64, Vec<R>)>,
    pending_records: usize,
    batches: u64,
    sweeps: u64,
}

impl<R> WorkerLane<R> {
    fn new(sessions: Arc<Vec<u64>>) -> Self {
        Self {
            sessions,
            pos: 0,
            reorder: BTreeMap::new(),
            pending: Vec::new(),
            pending_records: 0,
            batches: 0,
            sweeps: 0,
        }
    }

    /// The next owned session this lane has not yet released
    /// (`u64::MAX` once exhausted) — the worker's release floor.
    fn waiting_for(&self) -> u64 {
        self.sessions.get(self.pos).copied().unwrap_or(u64::MAX)
    }

    /// Buffers session-tagged groups, dropping duplicates (steal
    /// re-submissions are byte-identical, so first-wins is sound), then
    /// releases the in-order prefix of *owned* sessions: nonempty groups
    /// join the verification backlog, empty ones are returned so the
    /// caller can publish them straight to the inbox (they advance the
    /// commit prefix but verify nothing).
    fn absorb(&mut self, groups: Vec<(u64, Vec<R>)>) -> Vec<u64> {
        for (session, records) in groups {
            if session < self.waiting_for() || self.reorder.contains_key(&session) {
                continue; // duplicate (failover re-submission)
            }
            self.reorder.insert(session, records);
        }
        let mut empties = Vec::new();
        let mut released_any = false;
        while self.pos < self.sessions.len() {
            let next = self.sessions[self.pos];
            let Some(records) = self.reorder.remove(&next) else {
                break;
            };
            if records.is_empty() {
                empties.push(next);
            } else {
                self.pending_records += records.len();
                self.pending.push((next, records));
                released_any = true;
            }
            self.pos += 1;
        }
        if released_any {
            self.batches += 1;
        }
        empties
    }
}

/// One shard verification worker: owns the reorder buffers for its
/// session partition and runs the per-shard RLC admission sweeps. It
/// never touches a ledger — verification is pure signature-chain
/// checking ([`EnvelopeLedger::verify_batch`] /
/// [`RegistrationLedger::verify_batch`]), which is exactly why N of
/// these can run concurrently while commits stay single-owner.
struct ShardWorker {
    id: usize,
    threads: usize,
    mode: IngestMode,
    env: WorkerLane<EnvelopeCommitment>,
    reg: WorkerLane<RegistrationRecord>,
    inbox: Arc<Mutex<VerifiedInbox>>,
    seq: Sender<Cmd>,
    /// Sticky local mirror of the shared failure: refuses further
    /// submissions without taking the inbox lock.
    failed: Option<ServiceError>,
    busy: Duration,
    idle: Duration,
}

/// A sweep's outcome: the verified-good session groups in submission
/// order, plus the first verification failure (pinned to its session)
/// if the sweep hit one.
type SweepOutcome<R> = (Vec<(u64, Vec<R>)>, Option<(u64, ServiceError)>);

impl ShardWorker {
    fn telemetry(&self) -> WorkerTelemetry {
        WorkerTelemetry {
            env_batches: self.env.batches,
            env_sweeps: self.env.sweeps,
            reg_batches: self.reg.batches,
            reg_sweeps: self.reg.sweeps,
            busy_us: self.busy.as_micros() as u64,
            idle_us: self.idle.as_micros() as u64,
        }
    }

    /// The per-shard RLC admission sweep for the envelope lane: one
    /// coalesced fold over everything pending. On a fold failure,
    /// re-verify per group to attribute the offender: groups before it
    /// survive, the offender and everything after are dropped with the
    /// failure pinned to the offending session.
    fn sweep_env(&mut self) -> SweepOutcome<EnvelopeCommitment> {
        if self.env.pending.is_empty() {
            return (Vec::new(), None);
        }
        self.env.sweeps += 1;
        self.env.pending_records = 0;
        let groups = std::mem::take(&mut self.env.pending);
        let flat: Vec<EnvelopeCommitment> =
            groups.iter().flat_map(|(_, g)| g.iter().cloned()).collect();
        if EnvelopeLedger::verify_batch(&flat, self.threads).is_ok() {
            return (groups, None);
        }
        let mut good = Vec::new();
        for (session, group) in groups {
            match EnvelopeLedger::verify_batch(&group, self.threads) {
                Ok(()) => good.push((session, group)),
                Err(e) => return (good, Some((session, e.into()))),
            }
        }
        // The coalesced fold failed but no group reproduces it: the
        // per-group pass is authoritative (an RLC false accept is the
        // cryptographically negligible direction, not this one).
        (good, None)
    }

    /// [`Self::sweep_env`] for the registration lane.
    fn sweep_reg(&mut self) -> SweepOutcome<RegistrationRecord> {
        if self.reg.pending.is_empty() {
            return (Vec::new(), None);
        }
        self.reg.sweeps += 1;
        self.reg.pending_records = 0;
        let groups = std::mem::take(&mut self.reg.pending);
        let flat: Vec<RegistrationRecord> =
            groups.iter().flat_map(|(_, g)| g.iter().cloned()).collect();
        if RegistrationLedger::verify_batch(&flat, self.threads).is_ok() {
            return (groups, None);
        }
        let mut good = Vec::new();
        for (session, group) in groups {
            match RegistrationLedger::verify_batch(&group, self.threads) {
                Ok(()) => good.push((session, group)),
                Err(e) => return (good, Some((session, e.into()))),
            }
        }
        (good, None)
    }

    /// Pushes this worker's new state into the shared inbox under one
    /// lock — verified groups, released-empty sessions, release floors,
    /// telemetry and any verification failures — and returns the sticky
    /// *global* failure (possibly another worker's) if one is set.
    fn publish(
        &mut self,
        env_groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
        env_empties: Vec<u64>,
        reg_groups: Vec<(u64, Vec<RegistrationRecord>)>,
        reg_empties: Vec<u64>,
        failures: Vec<(u64, ServiceError)>,
    ) -> Option<ServiceError> {
        let telemetry = self.telemetry();
        let mut sh = lock_recover(&self.inbox);
        for session in env_empties {
            sh.env.entry(session).or_default();
        }
        for (session, group) in env_groups {
            sh.records += group.len();
            sh.env.insert(session, group);
        }
        for session in reg_empties {
            sh.reg.entry(session).or_default();
        }
        for (session, group) in reg_groups {
            sh.records += group.len();
            sh.reg.insert(session, group);
        }
        sh.env_floor[self.id] = self.env.waiting_for();
        sh.reg_floor[self.id] = self.reg.waiting_for();
        sh.stats[self.id] = telemetry;
        for (session, error) in failures {
            sh.fail(session, error);
        }
        sh.failed.as_ref().map(|(_, e)| e.clone())
    }

    /// Sweep both lanes and publish; poke the sequencer if anything
    /// moved so it can commit and re-check parked barriers.
    fn sweep_and_publish(&mut self) {
        let (env_groups, env_fail) = self.sweep_env();
        let (reg_groups, reg_fail) = self.sweep_reg();
        let moved = !env_groups.is_empty()
            || !reg_groups.is_empty()
            || env_fail.is_some()
            || reg_fail.is_some();
        let failures: Vec<_> = env_fail.into_iter().chain(reg_fail).collect();
        if let Some(e) = self.publish(env_groups, Vec::new(), reg_groups, Vec::new(), failures) {
            self.failed.get_or_insert(e);
        }
        if moved {
            let _ = self.seq.send(Cmd::Poke);
        }
    }

    fn handle(&mut self, cmd: ShardCmd) {
        match cmd {
            ShardCmd::Envelopes(groups, reply) => {
                if let Some(e) = self.failed.clone() {
                    let _ = reply.send(Err(e));
                    return;
                }
                let empties = self.env.absorb(groups);
                // Over the cap: sweep inline. Verification needs no
                // ledger, so unlike the old single worker there is no
                // flush-and-retry dance — the backlog just drains here,
                // on the shard's own thread.
                let (swept, fail) = if self.env.pending_records > MAX_PENDING_RECORDS {
                    self.sweep_env()
                } else {
                    (Vec::new(), None)
                };
                let sticky = self.publish(
                    swept,
                    empties,
                    Vec::new(),
                    Vec::new(),
                    fail.into_iter().collect(),
                );
                let _ = self.seq.send(Cmd::Poke);
                let out = match sticky {
                    Some(e) => {
                        self.failed.get_or_insert(e.clone());
                        Err(e)
                    }
                    None => Ok(()),
                };
                let _ = reply.send(out);
            }
            ShardCmd::Records(groups, reply) => {
                if let Some(e) = self.failed.clone() {
                    let _ = reply.send(Err(e));
                    return;
                }
                let empties = self.reg.absorb(groups);
                let (swept, fail) = if self.reg.pending_records > MAX_PENDING_RECORDS {
                    self.sweep_reg()
                } else {
                    (Vec::new(), None)
                };
                let sticky = self.publish(
                    Vec::new(),
                    Vec::new(),
                    swept,
                    empties,
                    fail.into_iter().collect(),
                );
                let _ = self.seq.send(Cmd::Poke);
                let out = match sticky {
                    Some(e) => {
                        self.failed.get_or_insert(e.clone());
                        Err(e)
                    }
                    None => Ok(()),
                };
                let _ = reply.send(out);
            }
            ShardCmd::Flush(ack) => {
                let (env_groups, env_fail) = self.sweep_env();
                let (reg_groups, reg_fail) = self.sweep_reg();
                let failures: Vec<_> = env_fail.into_iter().chain(reg_fail).collect();
                if let Some(e) =
                    self.publish(env_groups, Vec::new(), reg_groups, Vec::new(), failures)
                {
                    self.failed.get_or_insert(e);
                }
                // No poke: the sequencer is blocked on this ack and
                // commits as soon as every shard reports.
                let _ = ack.send(FlushReport {
                    env_reorder: self.env.reorder.len(),
                    reg_reorder: self.reg.reorder.len(),
                });
            }
        }
    }

    /// The worker loop: drain immediately-available commands first, use
    /// [`IngestMode::Background`] idle gaps for verification sweeps that
    /// overlap the stations' next ceremonies, and only then block.
    fn run(mut self, rx: Receiver<ShardCmd>) {
        loop {
            let cmd = match rx.try_recv() {
                Ok(cmd) => cmd,
                Err(TryRecvError::Empty) => {
                    if self.mode == IngestMode::Background
                        && self.failed.is_none()
                        && self.env.pending_records + self.reg.pending_records >= MIN_IDLE_SWEEP
                    {
                        let t = Instant::now();
                        self.sweep_and_publish();
                        self.busy += t.elapsed();
                        continue;
                    }
                    let t = Instant::now();
                    match rx.recv() {
                        Ok(cmd) => {
                            self.idle += t.elapsed();
                            cmd
                        }
                        Err(_) => break,
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            };
            let t = Instant::now();
            self.handle(cmd);
            self.busy += t.elapsed();
        }
        // The sequencer dropped our channel (day teardown): sweep the
        // remaining backlog into the inbox so the final commit pass sees
        // it, then release our sequencer sender by returning.
        let t = Instant::now();
        self.sweep_and_publish();
        self.busy += t.elapsed();
        let _ = self.seq.send(Cmd::Poke);
    }
}

/// The commit sequencer: the one thread owning the ledgers for the day.
/// It drains the shared inbox's contiguous verified prefix and appends
/// it in exact global session order through the preverified entry points
/// — eligibility is checked here, at the commit point — so N shard
/// workers change *where verification runs*, never what lands on the
/// ledger or how many signed heads a day produces. Every mutation
/// funnels through [`Sequencer::flush_all`], whose final `persist()` is
/// the one durable commit point: no code path publishes progress,
/// answers a barrier, or returns ledger heads for state that has not
/// already been fsynced under a signed head.
struct Sequencer<'a> {
    ledger: &'a mut Ledger,
    official: &'a Official,
    threads: usize,
    mode: IngestMode,
    workers: usize,
    shard_txs: Vec<Sender<ShardCmd>>,
    inbox: Arc<Mutex<VerifiedInbox>>,
    /// Next session to commit per lane; `[0, env_next)` is on the
    /// envelope ledger (resp. `reg`).
    env_next: u64,
    reg_next: u64,
    parked: Vec<(u64, Sender<Result<(), ServiceError>>)>,
    failed: Option<ServiceError>,
    /// Reorder-buffer occupancy reported by the last flush barrier —
    /// nonzero at day end means sessions were lost in transit.
    stalled_reorder: usize,
    progress: IngestProgress,
    busy: Duration,
    idle: Duration,
}

impl Sequencer<'_> {
    fn admitted_through(&self) -> u64 {
        self.env_next.min(self.reg_next)
    }

    /// The durable commit barrier, with graceful degradation: a WAL IO
    /// failure (disk full, torn write, failed fsync) becomes the
    /// sequencer's sticky day-abort error instead of a panic. The store
    /// itself is poisoned by the failure, so every subsequent barrier
    /// re-surfaces the same typed error and no head covering lost bytes
    /// is ever published.
    fn persist_ledger(&mut self) {
        if let Err(e) = self.ledger.persist() {
            self.failed
                .get_or_insert(ServiceError::from(LedgerError::from(e)));
        }
    }

    fn inbox_records(&self) -> usize {
        lock_recover(&self.inbox).records
    }

    /// Drains the contiguous verified prefix out of the inbox and
    /// commits it: coalesced, globally-ordered preverified appends, one
    /// per ledger, with a per-group fallback to attribute eligibility
    /// failures (the preverified entry points check eligibility before
    /// appending anything, so re-running per group never double-appends).
    /// Returns whether anything was appended; callers follow with the
    /// `persist()` commit barrier before publishing progress.
    fn commit_ready(&mut self) -> bool {
        if self.failed.is_some() {
            return false;
        }
        let (env_groups, reg_groups, verify_failed) = {
            let mut sh = lock_recover(&self.inbox);
            let mut env_groups = Vec::new();
            let mut next = self.env_next;
            while let Some(group) = sh.env.remove(&next) {
                sh.records -= group.len();
                env_groups.push(group);
                next += 1;
            }
            let mut reg_groups = Vec::new();
            let mut next = self.reg_next;
            while let Some(group) = sh.reg.remove(&next) {
                sh.records -= group.len();
                reg_groups.push(group);
                next += 1;
            }
            (env_groups, reg_groups, sh.failed.clone())
        };
        let mut appended = false;
        if !env_groups.is_empty() {
            let count = env_groups.len() as u64;
            let flat: Vec<EnvelopeCommitment> = env_groups.iter().flatten().cloned().collect();
            if flat.is_empty() {
                self.env_next += count;
            } else {
                match self
                    .ledger
                    .envelopes
                    .commit_batch_preverified(flat, self.threads)
                {
                    Ok(_) => {
                        self.env_next += count;
                        appended = true;
                    }
                    Err(_) => {
                        // Attribute to the offending session group.
                        for group in env_groups {
                            if group.is_empty() {
                                self.env_next += 1;
                                continue;
                            }
                            match self
                                .ledger
                                .envelopes
                                .commit_batch_preverified(group, self.threads)
                            {
                                Ok(_) => {
                                    self.env_next += 1;
                                    appended = true;
                                }
                                Err(e) => {
                                    self.failed = Some(e.into());
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        if self.failed.is_none() && !reg_groups.is_empty() {
            let count = reg_groups.len() as u64;
            let flat: Vec<RegistrationRecord> = reg_groups.iter().flatten().cloned().collect();
            if flat.is_empty() {
                self.reg_next += count;
            } else {
                match self
                    .ledger
                    .registration
                    .post_batch_preverified(flat, self.threads)
                {
                    Ok(_) => {
                        self.reg_next += count;
                        appended = true;
                    }
                    Err(_) => {
                        // Eligibility (roster, double registration) is a
                        // real failure mode: re-run per group to pin it
                        // to the first offending session and keep the
                        // committed prefix before it.
                        for group in reg_groups {
                            if group.is_empty() {
                                self.reg_next += 1;
                                continue;
                            }
                            match self
                                .ledger
                                .registration
                                .post_batch_preverified(group, self.threads)
                            {
                                Ok(_) => {
                                    self.reg_next += 1;
                                    appended = true;
                                }
                                Err(e) => {
                                    self.failed = Some(e.into());
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        // A verification failure parked in the inbox becomes sticky only
        // after the good prefix before it is committed (the workers only
        // publish verified-good groups below the failing session).
        if self.failed.is_none() {
            if let Some((_, e)) = verify_failed {
                self.failed = Some(e);
            }
        }
        appended
    }

    /// The full admission barrier: every shard worker sweeps its pending
    /// backlog *concurrently* (this fan-out is the throughput win of the
    /// shard layer), then one globally-ordered commit closes at the
    /// durable commit point — RLC admission → segment append → group
    /// fsync → signed-head publish. Progress is published (and handles
    /// resolve) only after `persist()` returns, so an admitted session
    /// is always a persisted session.
    fn flush_all(&mut self) {
        let mut acks = Vec::new();
        for tx in &self.shard_txs {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(ShardCmd::Flush(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        let mut stalled = 0;
        for ack in acks {
            if let Ok(report) = ack.recv() {
                stalled += report.env_reorder + report.reg_reorder;
            }
        }
        self.stalled_reorder = stalled;
        self.commit_ready();
        // Commit barrier: everything this sweep admitted reaches stable
        // storage (WAL fsync + signed head) before any handle observes
        // it as admitted. A no-op on volatile backends.
        self.persist_ledger();
        self.progress
            .update(self.admitted_through(), self.failed.as_ref());
    }

    /// Resolves parked prefix barriers: flushes when a parked barrier's
    /// prefix is fully released (per the workers' published floors) but
    /// not yet admitted, then answers whatever the sweep satisfied.
    /// Sticky failures answer everything.
    fn service_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        if self.failed.is_none() {
            let releasable = {
                let sh = lock_recover(&self.inbox);
                let env = sh.env_floor.iter().copied().min().unwrap_or(u64::MAX);
                let reg = sh.reg_floor.iter().copied().min().unwrap_or(u64::MAX);
                env.min(reg)
            };
            let admitted = self.admitted_through();
            if self
                .parked
                .iter()
                .any(|(needed, _)| *needed > admitted && *needed <= releasable)
            {
                self.flush_all();
            }
        }
        if let Some(e) = self.failed.clone() {
            for (_, reply) in self.parked.drain(..) {
                let _ = reply.send(Err(e.clone()));
            }
            return;
        }
        let admitted = self.admitted_through();
        self.parked.retain(|(needed, reply)| {
            if *needed <= admitted {
                let _ = reply.send(Ok(()));
                false
            } else {
                true
            }
        });
    }

    fn stats(&self) -> IngestStatsReply {
        let durability = self.ledger.durability_stats();
        let sh = lock_recover(&self.inbox);
        let mut reply = IngestStatsReply {
            env_batches: 0,
            env_sweeps: 0,
            reg_batches: 0,
            reg_sweeps: 0,
            worker_busy_us: self.busy.as_micros() as u64,
            worker_idle_us: self.idle.as_micros() as u64,
            wal_records: durability.wal_records,
            wal_fsyncs: durability.wal_fsyncs,
            workers: self.workers as u64,
            wal_failures: durability.wal_failures,
        };
        for t in &sh.stats {
            reply.env_batches += t.env_batches;
            reply.env_sweeps += t.env_sweeps;
            reply.reg_batches += t.reg_batches;
            reply.reg_sweeps += t.reg_sweeps;
            reply.worker_busy_us += t.busy_us;
            reply.worker_idle_us += t.idle_us;
        }
        reply
    }

    fn handle(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::CheckIn(voter, reply) => {
                let out = self
                    .official
                    .check_in(self.ledger, voter)
                    .map_err(ServiceError::Trip);
                let _ = reply.send(out);
            }
            Cmd::SyncThrough(sessions, reply) => {
                if self.admitted_through() >= sessions && self.failed.is_none() {
                    let _ = reply.send(Ok(()));
                } else {
                    self.parked.push((sessions, reply));
                }
            }
            Cmd::SyncAll(reply) => {
                self.flush_all();
                let residual = {
                    let sh = lock_recover(&self.inbox);
                    !sh.env.is_empty() || !sh.reg.is_empty()
                };
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else if self.stalled_reorder > 0 || residual {
                    Err(ServiceError::Transport(format!(
                        "sessions lost: admission stalled at {} (gap in submissions)",
                        self.admitted_through()
                    )))
                } else {
                    Ok(())
                };
                let _ = reply.send(out);
            }
            Cmd::Activate(claims, reply) => {
                self.flush_all();
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    let mut out = Ok(());
                    for claim in &claims {
                        if let Err(e) = activation_ledger_phase(self.ledger, claim) {
                            out = Err(ServiceError::Trip(e));
                            break;
                        }
                    }
                    // Activation appended reveal-WAL entries; sync them
                    // before acknowledging the claims.
                    self.persist_ledger();
                    out
                };
                let _ = reply.send(out);
            }
            Cmd::Heads(reply) => {
                self.flush_all();
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    Ok(LedgerHeads {
                        registration: self.ledger.registration.tree_head(),
                        envelopes: self.ledger.envelopes.tree_head(),
                    })
                };
                let _ = reply.send(out);
            }
            Cmd::Stats(reply) => {
                let _ = reply.send(self.stats());
            }
            Cmd::Abort => {
                let e = ServiceError::Transport("registration day aborted".into());
                self.failed.get_or_insert(e.clone());
                // Mirror into the inbox so the shard workers refuse
                // further submissions too.
                lock_recover(&self.inbox).fail(u64::MAX, e);
            }
            Cmd::Poke => {
                // The inbox changed; the shared post-command path below
                // commits, re-checks parked barriers and publishes.
            }
            Cmd::Shutdown => {
                // Drop the shard senders: the workers' receivers
                // disconnect, they exit-sweep into the inbox, and their
                // own sequencer senders drop in turn.
                self.shard_txs.clear();
            }
        }
    }

    fn run(mut self, rx: Receiver<Cmd>) {
        loop {
            let t = Instant::now();
            let Ok(cmd) = rx.recv() else { break };
            self.idle += t.elapsed();
            let t = Instant::now();
            self.handle(cmd);
            // Opportunistic commits: verified records must not pile up
            // in the inbox unboundedly. Background mode commits as soon
            // as a worthwhile batch is verified (overlapping the
            // stations' next ceremonies); Barrier mode only bounds
            // memory at the queue cap — everything else rides the next
            // barrier, preserving the coalescing behavior.
            let cap = match self.mode {
                IngestMode::Background => MIN_IDLE_SWEEP,
                IngestMode::Barrier => MAX_PENDING_RECORDS,
            };
            if self.failed.is_none() && self.inbox_records() >= cap && self.commit_ready() {
                self.persist_ledger();
            }
            self.service_parked();
            // Publish progress even when nothing flushed: releasing an
            // empty record group can advance the admitted prefix on its
            // own, and handles block on this.
            self.progress
                .update(self.admitted_through(), self.failed.as_ref());
            self.busy += t.elapsed();
        }
        // Day over: every client and worker sender is gone — the workers
        // exit-swept their backlogs into the inbox before releasing
        // their senders — so one final commit pass closes the day, then
        // fail anything still parked (a parked barrier at this point
        // means its prefix never arrived).
        self.flush_all();
        self.service_parked();
        for (_, reply) in self.parked.drain(..) {
            let _ = reply.send(Err(ServiceError::Transport(
                "registration day ended with submissions missing".into(),
            )));
        }
        self.progress.finish();
    }
}

/// Client half of the sharded engine (cheap to clone; one per connection
/// handler / in-process endpoint): submissions fan out to the shard
/// workers owning their sessions, everything stateful goes to the
/// sequencer.
#[derive(Clone)]
struct IngestClient {
    seq: Sender<Cmd>,
    shards: Arc<Vec<Sender<ShardCmd>>>,
    route: ShardRoute,
    /// One engine-wide ticket sequence, so tickets stay monotonic per
    /// connection no matter which shard served the submission.
    tickets: Arc<AtomicU64>,
    progress: IngestProgress,
}

impl IngestClient {
    fn call<T>(
        &self,
        build: impl FnOnce(Sender<Result<T, ServiceError>>) -> Cmd,
    ) -> Result<T, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.seq
            .send(build(tx))
            .map_err(|_| ServiceError::Transport("ingest sequencer gone".into()))?;
        rx.recv()
            .map_err(|_| ServiceError::Transport("ingest sequencer gone".into()))?
    }

    /// Sends one sequencer command and hands back the reply receiver
    /// without blocking (the gateway reactor polls it as a pending
    /// response instead of parking a thread on it).
    fn call_async<T: Send>(
        &self,
        build: impl FnOnce(Sender<Result<T, ServiceError>>) -> Cmd,
    ) -> Result<Receiver<Result<T, ServiceError>>, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.seq
            .send(build(tx))
            .map_err(|_| ServiceError::Transport("ingest sequencer gone".into()))?;
        Ok(rx)
    }

    /// Splits session-tagged groups by owning shard and waits for every
    /// touched worker's acknowledgement (a station's sessions all live
    /// in one shard, so the common case is exactly one send).
    fn fan_out<R>(
        &self,
        groups: Vec<(u64, Vec<R>)>,
        make: impl Fn(Vec<(u64, Vec<R>)>, Sender<Result<(), ServiceError>>) -> ShardCmd,
    ) -> Result<(), ServiceError> {
        for ack in self.fan_out_async(groups, make)? {
            ack.recv()
                .map_err(|_| ServiceError::Transport("ingest worker gone".into()))??;
        }
        Ok(())
    }

    /// The non-blocking half of [`IngestClient::fan_out`]: splits groups
    /// by owning shard, sends, and hands back one acknowledgement
    /// receiver per touched worker.
    fn fan_out_async<R>(
        &self,
        groups: Vec<(u64, Vec<R>)>,
        make: impl Fn(Vec<(u64, Vec<R>)>, Sender<Result<(), ServiceError>>) -> ShardCmd,
    ) -> Result<Vec<Receiver<Result<(), ServiceError>>>, ServiceError> {
        let mut per_worker: Vec<Vec<(u64, Vec<R>)>> =
            (0..self.route.workers).map(|_| Vec::new()).collect();
        for group in groups {
            per_worker[self.route.worker_of(group.0)].push(group);
        }
        let mut acks = Vec::new();
        for (worker, batch) in per_worker.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.shards[worker]
                .send(make(batch, tx))
                .map_err(|_| ServiceError::Transport("ingest worker gone".into()))?;
            acks.push(rx);
        }
        Ok(acks)
    }

    fn submit_envelopes(
        &self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<(u64, IngestHandle), ServiceError> {
        let through = groups.last().map_or(0, |(s, _)| s + 1);
        self.fan_out(groups, ShardCmd::Envelopes)?;
        let ticket = self.tickets.fetch_add(1, Ordering::SeqCst);
        Ok((ticket, self.progress.handle(through)))
    }

    fn submit_records(
        &self,
        groups: Vec<(u64, Vec<RegistrationRecord>)>,
    ) -> Result<(u64, IngestHandle), ServiceError> {
        let through = groups.last().map_or(0, |(s, _)| s + 1);
        self.fan_out(groups, ShardCmd::Records)?;
        let ticket = self.tickets.fetch_add(1, Ordering::SeqCst);
        Ok((ticket, self.progress.handle(through)))
    }

    fn stats(&self) -> Result<IngestStatsReply, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.seq
            .send(Cmd::Stats(tx))
            .map_err(|_| ServiceError::Transport("ingest sequencer gone".into()))?;
        rx.recv()
            .map_err(|_| ServiceError::Transport("ingest sequencer gone".into()))
    }

    fn abort(&self) {
        let _ = self.seq.send(Cmd::Abort);
    }

    /// Day teardown — must be sent exactly once, by the coordinator,
    /// after every station connection is gone (see [`Cmd::Shutdown`]).
    fn shutdown(&self) {
        let _ = self.seq.send(Cmd::Shutdown);
    }
}

/// The wired-but-unspawned sharded engine: [`build_ingest`] constructs
/// every piece before any thread exists so the caller controls spawning
/// (the day runner uses scoped threads; tests drive pieces directly).
struct IngestEngine<'a> {
    client: IngestClient,
    sequencer: Sequencer<'a>,
    seq_rx: Receiver<Cmd>,
    shards: Vec<(ShardWorker, Receiver<ShardCmd>)>,
}

/// Wires up the sharded ingest engine: one sequencer owning `ledger`,
/// one shard worker per entry of `worker_sessions` (each list the
/// ascending global session indices that worker owns — together a
/// partition of the day), and a cloneable client routing by `route`.
fn build_ingest<'a>(
    ledger: &'a mut Ledger,
    official: &'a Official,
    threads: usize,
    mode: IngestMode,
    route: ShardRoute,
    worker_sessions: Vec<Vec<u64>>,
) -> IngestEngine<'a> {
    let workers = worker_sessions.len();
    let (seq_tx, seq_rx) = mpsc::channel();
    let progress = IngestProgress::new();
    let inbox = Arc::new(Mutex::new(VerifiedInbox::new(&worker_sessions)));
    let mut shard_txs = Vec::with_capacity(workers);
    let mut shards = Vec::with_capacity(workers);
    for (id, sessions) in worker_sessions.into_iter().enumerate() {
        let (tx, rx) = mpsc::channel();
        shard_txs.push(tx);
        let sessions = Arc::new(sessions);
        shards.push((
            ShardWorker {
                id,
                threads,
                mode,
                env: WorkerLane::new(Arc::clone(&sessions)),
                reg: WorkerLane::new(sessions),
                inbox: Arc::clone(&inbox),
                seq: seq_tx.clone(),
                failed: None,
                busy: Duration::ZERO,
                idle: Duration::ZERO,
            },
            rx,
        ));
    }
    let client = IngestClient {
        seq: seq_tx,
        shards: Arc::new(shard_txs.clone()),
        route,
        tickets: Arc::new(AtomicU64::new(0)),
        progress: progress.clone(),
    };
    let sequencer = Sequencer {
        ledger,
        official,
        threads,
        mode,
        workers,
        shard_txs,
        inbox,
        env_next: 0,
        reg_next: 0,
        parked: Vec::new(),
        failed: None,
        stalled_reorder: 0,
        progress,
        busy: Duration::ZERO,
        idle: Duration::ZERO,
    };
    IngestEngine {
        client,
        sequencer,
        seq_rx,
        shards,
    }
}

// ---------------------------------------------------------------------------
// Registrar-side shared services (no ledger state)
// ---------------------------------------------------------------------------

/// The ledger-free registrar services every connection handler can run on
/// its own thread: printing and desk-side check-out verification. Only
/// the resulting records funnel into the worker.
#[derive(Clone, Copy)]
struct HostCore<'a> {
    official: &'a Official,
    printer: &'a EnvelopePrinter,
    kiosk_registry: &'a [CompressedPoint],
    threads: usize,
}

impl HostCore<'_> {
    fn print(&self, jobs: &[PrintJob]) -> Vec<(Envelope, EnvelopeCommitment)> {
        par_map(jobs, self.threads, |job| {
            self.printer.print_detached(job.challenge, job.symbol)
        })
    }

    /// Fig 10 lines 2–5 for a station's window: verify the whole window
    /// in one committed RLC sweep on the *caller's* thread (stations
    /// verify concurrently), countersign, and regroup by session.
    fn verify_and_countersign(
        &self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<Vec<(u64, Vec<RegistrationRecord>)>, ServiceError> {
        let counts: Vec<(u64, usize)> = groups.iter().map(|(s, c)| (*s, c.len())).collect();
        let flat: Vec<(CheckOutQr, NonceCoupon)> =
            groups.into_iter().flat_map(|(_, c)| c).collect();
        self.official
            .verify_checkouts(&flat, self.kiosk_registry, self.threads)?;
        let mut records = self.official.countersign_checkouts(flat).into_iter();
        Ok(counts
            .into_iter()
            .map(|(session, n)| (session, records.by_ref().take(n).collect()))
            .collect())
    }
}

/// The in-process pipelined endpoint: ledger-free services run inline on
/// the station's thread; submissions fan out to the shard workers and
/// everything touching ledger state crosses the sequencer channel.
/// Serves the same four service traits as [`crate::RegistrarHost`], so
/// the fleet drives it through the ordinary [`ServiceBoundary`].
struct PipelinedEndpoint<'a> {
    core: HostCore<'a>,
    client: IngestClient,
}

impl RegistrarService for PipelinedEndpoint<'_> {
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError> {
        self.client
            .call(|reply| Cmd::CheckIn(req.voter, reply))
            .map(|ticket| CheckInResponse { ticket })
    }

    fn check_out_batch(
        &mut self,
        _req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        Err(ServiceError::Transport(
            "pipelined registrar requires session-tagged submissions".into(),
        ))
    }

    fn check_out_groups(
        &mut self,
        req: SeqCheckOutRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        let groups = req
            .groups
            .into_iter()
            .map(|(s, checkouts)| {
                (
                    s,
                    checkouts
                        .into_iter()
                        .map(|(qr, coupon)| (qr, coupon.into()))
                        .collect(),
                )
            })
            .collect();
        let records = self.core.verify_and_countersign(groups)?;
        let (ticket, _handle) = self.client.submit_records(records)?;
        Ok(CheckOutBatchResponse { ticket })
    }
}

impl PrintService for PipelinedEndpoint<'_> {
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError> {
        Ok(PrintResponse {
            envelopes: self.core.print(&req.jobs),
        })
    }
}

impl LedgerIngestService for PipelinedEndpoint<'_> {
    fn submit_envelopes(
        &mut self,
        _req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        Err(ServiceError::Transport(
            "pipelined registrar requires session-tagged submissions".into(),
        ))
    }

    fn submit_envelope_groups(
        &mut self,
        req: SeqEnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        let (ticket, _handle) = self.client.submit_envelopes(req.groups)?;
        Ok(IngestReceipt { ticket })
    }

    fn sync(&mut self) -> Result<(), ServiceError> {
        self.client.call(Cmd::SyncAll)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), ServiceError> {
        self.client.call(|reply| Cmd::SyncThrough(sessions, reply))
    }

    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError> {
        self.client.call(Cmd::Heads)
    }

    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        self.client.stats()
    }
}

impl ActivationService for PipelinedEndpoint<'_> {
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError> {
        self.client.call(|reply| Cmd::Activate(req.claims, reply))
    }
}

// ---------------------------------------------------------------------------
// Client-side station runner
// ---------------------------------------------------------------------------

/// Wraps a boundary so every call past `remaining` fails as if the
/// station's connection dropped (the chaos hook behind [`StationFault`]).
struct FaultingBoundary<'a> {
    inner: &'a mut dyn RegistrarBoundary,
    remaining: usize,
    /// `Some` turns the fault into a HANG: once `remaining` hits zero
    /// the boundary parks until the flag (set at day teardown) releases
    /// it, modeling a station that stops making progress without the
    /// courtesy of an error. The release-then-error keeps the thread
    /// joinable; while the day runs, the station is simply silent.
    hang_until: Option<Arc<AtomicBool>>,
}

impl FaultingBoundary<'_> {
    fn tick(&mut self) -> Result<(), TripError> {
        if self.remaining == 0 {
            if let Some(released) = &self.hang_until {
                while !released.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                return Err(TripError::Boundary(
                    "hung station released at day teardown".into(),
                ));
            }
            return Err(TripError::Boundary(
                "station connection lost (injected fault)".into(),
            ));
        }
        self.remaining -= 1;
        Ok(())
    }
}

impl RegistrarBoundary for FaultingBoundary<'_> {
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError> {
        self.tick()?;
        self.inner.check_in(voter)
    }

    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError> {
        self.tick()?;
        self.inner.print_envelopes(jobs)
    }

    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_envelopes(commitments)
    }

    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_checkouts(checkouts)
    }

    fn submit_envelope_groups(
        &mut self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_envelope_groups(groups)
    }

    fn submit_checkout_groups(
        &mut self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_checkout_groups(groups)
    }

    fn sync(&mut self) -> Result<(), TripError> {
        self.tick()?;
        self.inner.sync()
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), TripError> {
        self.tick()?;
        self.inner.sync_through(sessions)
    }

    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError> {
        self.tick()?;
        self.inner.activation_sweep(claims)
    }

    fn registration_head(&mut self) -> Result<vg_ledger::TreeHead, TripError> {
        self.tick()?;
        self.inner.registration_head()
    }

    fn envelope_head(&mut self) -> Result<vg_ledger::TreeHead, TripError> {
        self.tick()?;
        self.inner.envelope_head()
    }
}

/// One delivered session, boxed: outcomes are large (credentials,
/// receipts, traces) and `Done` is tiny.
type SessionDelivery = Box<(RegistrationOutcome, Option<Vsd>, Option<StolenCredential>)>;

enum StationMsg {
    Outcome(usize, SessionDelivery),
    Done(usize, Result<(), TripError>),
}

/// How a station (or its refiller, or a steal lane) reaches the
/// registrar: direct in-process dispatch, or a pluggable [`Connector`]
/// that dials (and, per policy, secures) a gateway-served channel.
#[derive(Clone, Copy)]
enum Link<'a> {
    InProcess(HostCore<'a>),
    Gateway(&'a dyn Connector),
}

struct StationJob<'a> {
    fleet: &'a KioskFleet,
    kiosks: &'a [Kiosk],
    sessions: Vec<(usize, VoterId, usize)>,
    plans: Vec<(usize, vg_trip::pool::SessionPlan)>,
    authority_pk: vg_crypto::EdwardsPoint,
    activation: Option<&'a ActivationContext<'a>>,
    pipeline: PipelineConfig,
    fault_after: Option<usize>,
    /// `Some` makes `fault_after` a silent hang instead of a clean death
    /// (see [`StationHang`]); the flag releases the parked thread at
    /// day teardown.
    hang_release: Option<Arc<AtomicBool>>,
    /// Reconnect policy for every channel this job dials (station
    /// boundary, refiller, steal-lane reuse). Seeded per runner so a
    /// fleet that loses the registrar at once backs off desynchronized.
    retry: RetryPolicy,
    /// Shared degraded-mode telemetry, surfaced in [`DayStats`].
    counters: &'a DayCounters,
}

/// Day-wide degraded-mode counters shared across every station, steal
/// lane and refiller thread.
#[derive(Debug, Default)]
struct DayCounters {
    /// Deadline expiries observed at station boundaries (connect-time
    /// `ServiceError::Timeout`s plus in-flight stalls surfacing as
    /// `deadline expired` boundary failures).
    timeouts: AtomicU64,
    /// Retry-layer attempts beyond each operation's first try.
    reconnects: AtomicU64,
}

/// Dials (with retry) one gateway channel, counting reconnect attempts
/// and connect-time deadline expiries into the day's counters.
fn dial_with_retry(
    conn: &dyn Connector,
    retry: RetryPolicy,
    counters: &DayCounters,
) -> Result<ChannelClient, ServiceError> {
    retry.run(|attempt| {
        if attempt > 0 {
            counters.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        ChannelClient::connect(conn).inspect_err(|e| {
            if matches!(e, ServiceError::Timeout(_)) {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        })
    })
}

/// Opens a station-side boundary over `link`: the in-process pipelined
/// endpoint, or a freshly dialed (and policy-secured) channel.
fn station_boundary<'a>(
    link: Link<'a>,
    client: &IngestClient,
    retry: RetryPolicy,
    counters: &DayCounters,
) -> Result<Box<dyn RegistrarBoundary + 'a>, TripError> {
    Ok(match link {
        Link::InProcess(core) => Box::new(ServiceBoundary::new(PipelinedEndpoint {
            core,
            client: client.clone(),
        })),
        Link::Gateway(conn) => Box::new(ServiceBoundary::new(
            dial_with_retry(conn, retry, counters)
                .map_err(|e| TripError::Boundary(e.to_string()))?,
        )),
    })
}

/// One station's whole day: connect, optionally spawn the refiller on its
/// own connection, and drive the generalized fleet engine.
fn run_station(
    job: StationJob<'_>,
    link: Link<'_>,
    client: &IngestClient,
    tx: &Sender<StationMsg>,
) -> Result<(), TripError> {
    let mut boundary = station_boundary(link, client, job.retry, job.counters)?;
    drive_station(job, link, &mut *boundary, tx)
}

/// Drives one station job over an already-open boundary (stations open
/// their own; steal lanes amortize one across every chunk they absorb).
fn drive_station(
    mut job: StationJob<'_>,
    link: Link<'_>,
    boundary: &mut dyn RegistrarBoundary,
    tx: &Sender<StationMsg>,
) -> Result<(), TripError> {
    let mut faulting;
    let hang_release = job.hang_release.take();
    let boundary: &mut dyn RegistrarBoundary = match job.fault_after {
        Some(after_ops) => {
            faulting = FaultingBoundary {
                inner: boundary,
                remaining: after_ops,
                hang_until: hang_release,
            };
            &mut faulting
        }
        None => boundary,
    };
    let activation = job
        .activation
        .map(|ctx| (ctx, job.pipeline.activation_lag.max(1)));
    let mut sink = |idx: usize,
                    outcome: RegistrationOutcome,
                    vsd: Option<Vsd>,
                    stolen: Option<StolenCredential>| {
        let _ = tx.send(StationMsg::Outcome(idx, Box::new((outcome, vsd, stolen))));
    };
    // The indexed plan is only needed by the pool; move it rather than
    // cloning megabytes of SessionPlans per station (and per recovery).
    let plans = std::mem::take(&mut job.plans);
    if job.pipeline.low_water > 0 {
        let mut pool = job.fleet.prepare_pool_indexed(job.authority_pk, plans);
        let feed = PoolFeed::new(job.pipeline.low_water);
        let threads = job.fleet.config().threads;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The refiller owns its own print client: a second
                // connection for TCP days, direct printer calls locally.
                let result = match link {
                    Link::InProcess(core) => feed.run_refiller(&mut pool, &mut |jobs| {
                        Ok(par_map(jobs, threads, |j| {
                            core.printer.print_detached(j.challenge, j.symbol)
                        }))
                    }),
                    Link::Gateway(conn) => match dial_with_retry(conn, job.retry, job.counters) {
                        Ok(mut client) => feed.run_refiller(&mut pool, &mut |jobs| {
                            client
                                .print_envelopes(PrintRequest {
                                    jobs: jobs.to_vec(),
                                })
                                .map(|r| r.envelopes)
                                .map_err(ServiceError::into_trip)
                        }),
                        Err(e) => Err(TripError::Boundary(e.to_string())),
                    },
                };
                // A refiller failure reaches the consumer through the
                // feed; nothing further to do here.
                let _ = result;
            });
            let run = job.fleet.run_station_over(
                job.kiosks,
                &mut *boundary,
                &job.sessions,
                &mut FeedSource { feed: &feed },
                activation,
                &mut sink,
            );
            feed.close();
            run
        })
    } else {
        let mut pool = job.fleet.prepare_pool_indexed(job.authority_pk, plans);
        job.fleet.run_station_over(
            job.kiosks,
            &mut *boundary,
            &job.sessions,
            &mut PoolSource { pool: &mut pool },
            activation,
            &mut sink,
        )
    }
}

/// One stolen chunk queued onto a surviving station's steal lane.
struct StealJob<'a> {
    /// Coordinator-assigned runner id (`stations + steal_seq`), the key
    /// for per-chunk failure attribution and bounded re-steal.
    runner_id: usize,
    job: StationJob<'a>,
}

/// Coordinator bookkeeping for one in-flight steal chunk: enough to
/// re-partition its sessions onto the remaining survivors if the chunk's
/// runner dies too, up to [`MAX_RESTEAL_DEPTH`] retries deep.
struct StealMeta {
    /// The original dead station (attribution in [`StealRecord`]s).
    victim: usize,
    /// Retry depth of this chunk (0 = stolen from the victim itself).
    depth: usize,
    /// Global session indices the chunk was responsible for.
    sessions: Vec<usize>,
    /// The steal lane carrying the chunk, or `None` for a dedicated
    /// one-shot runner (spawned when every candidate lane was busy).
    lane: Option<usize>,
}

/// A surviving station's steal lane: ONE extra connection per thief,
/// amortized across every chunk (and re-stolen chunk) attributed to it,
/// instead of one connection per chunk. Jobs run sequentially; a failed
/// job bounces back to the coordinator as a `Done(runner_id, Err)` and
/// the lane reconnects before the next job (an injected fault only
/// poisons the per-job wrapper, but a real transport failure would not
/// survive reuse). Exits when the coordinator drops the job sender.
///
/// A lane is only ever handed a job while it is IDLE. Steal chunks park
/// on the sequencer's global-session-order prefix barriers, so a chunk
/// queued behind a parked chunk whose barrier needs the queued chunk's
/// sessions would deadlock the day; the coordinator therefore falls
/// back to a dedicated one-shot runner whenever every candidate lane
/// still has a chunk in flight.
fn run_steal_lane<'a>(
    jobs: Receiver<StealJob<'a>>,
    link: Link<'a>,
    client: &IngestClient,
    tx: &Sender<StationMsg>,
) {
    let mut boundary: Option<Box<dyn RegistrarBoundary + 'a>> = None;
    while let Ok(StealJob { runner_id, job }) = jobs.recv() {
        let result = (|| -> Result<(), TripError> {
            let open = match &mut boundary {
                Some(open) => open,
                None => boundary.insert(station_boundary(link, client, job.retry, job.counters)?),
            };
            drive_station(job, link, &mut **open, tx)
        })();
        if result.is_err() {
            boundary = None;
        }
        let _ = tx.send(StationMsg::Done(runner_id, result));
    }
}

// ---------------------------------------------------------------------------
// The gateway dispatch
// ---------------------------------------------------------------------------

/// The pipelined engine behind the multiplexed gateway: ledger-free
/// requests (printing, check-out verification) run inline on the reactor,
/// everything stateful is forwarded to the sequencer / shard workers and
/// *parked* — the reactor polls the reply channel instead of blocking, so
/// one station's barrier never stalls another station's connection.
struct PipelineDispatch<'a> {
    core: HostCore<'a>,
    client: IngestClient,
}

/// Parks a unit-reply sequencer command as a pending gateway response.
fn park_unit(rx: Receiver<Result<(), ServiceError>>, ok: Response) -> Dispatched {
    let mut ok = Some(ok);
    park(rx, move |()| {
        // The reactor clears `pending` on the first `Some`, so the
        // closure resolves at most once; a second call is a reactor bug
        // answered typed rather than by killing the thread.
        ok.take().unwrap_or_else(|| {
            Response::Err(ServiceError::Transport(
                "pending response polled after resolution".into(),
            ))
        })
    })
}

/// Parks a typed-reply sequencer command as a pending gateway response.
fn park<T: Send + 'static>(
    rx: Receiver<Result<T, ServiceError>>,
    mut wrap: impl FnMut(T) -> Response + Send + 'static,
) -> Dispatched {
    Dispatched::Pending(Box::new(move || match rx.try_recv() {
        Ok(Ok(v)) => Some(wrap(v)),
        Ok(Err(e)) => Some(Response::Err(e)),
        Err(TryRecvError::Empty) => None,
        Err(TryRecvError::Disconnected) => Some(Response::Err(ServiceError::Transport(
            "ingest sequencer gone".into(),
        ))),
    }))
}

impl PipelineDispatch<'_> {
    /// Fans session-tagged groups out to the shard workers and parks on
    /// the workers' acknowledgements; the submission ticket is allocated
    /// when the last ack lands, mirroring the blocking path's ordering.
    fn park_fan_out<R>(
        &self,
        groups: Vec<(u64, Vec<R>)>,
        make: impl Fn(Vec<(u64, Vec<R>)>, Sender<Result<(), ServiceError>>) -> ShardCmd,
        done: impl Fn(u64) -> Response + Send + 'static,
    ) -> Dispatched {
        let mut acks = match self.client.fan_out_async(groups, make) {
            Ok(acks) => acks,
            Err(e) => return Dispatched::Now(Response::Err(e)),
        };
        let tickets = Arc::clone(&self.client.tickets);
        Dispatched::Pending(Box::new(move || {
            while let Some(rx) = acks.last() {
                match rx.try_recv() {
                    Ok(Ok(())) => {
                        acks.pop();
                    }
                    Ok(Err(e)) => return Some(Response::Err(e)),
                    Err(TryRecvError::Empty) => return None,
                    Err(TryRecvError::Disconnected) => {
                        return Some(Response::Err(ServiceError::Transport(
                            "ingest worker gone".into(),
                        )))
                    }
                }
            }
            Some(done(tickets.fetch_add(1, Ordering::SeqCst)))
        }))
    }
}

impl GatewayDispatch for PipelineDispatch<'_> {
    fn dispatch(&mut self, req: Request) -> Dispatched {
        match req {
            Request::CheckIn(m) => match self.client.call_async(|r| Cmd::CheckIn(m.voter, r)) {
                Ok(rx) => park(rx, |ticket| Response::CheckIn(CheckInResponse { ticket })),
                Err(e) => Dispatched::Now(Response::Err(e)),
            },
            Request::Print(m) => Dispatched::Now(Response::Print(PrintResponse {
                envelopes: self.core.print(&m.jobs),
            })),
            Request::SubmitEnvelopes(_) | Request::CheckOutBatch(_) => {
                Dispatched::Now(Response::Err(ServiceError::Transport(
                    "pipelined registrar requires session-tagged submissions".into(),
                )))
            }
            Request::SubmitEnvelopesSeq(m) => {
                self.park_fan_out(m.groups, ShardCmd::Envelopes, |ticket| {
                    Response::SubmitEnvelopesSeq(IngestReceipt { ticket })
                })
            }
            Request::CheckOutBatchSeq(m) => {
                let groups = m
                    .groups
                    .into_iter()
                    .map(|(s, checkouts)| {
                        (
                            s,
                            checkouts
                                .into_iter()
                                .map(|(qr, coupon)| (qr, coupon.into()))
                                .collect(),
                        )
                    })
                    .collect();
                match self.core.verify_and_countersign(groups) {
                    Ok(records) => self.park_fan_out(records, ShardCmd::Records, |ticket| {
                        Response::CheckOutBatchSeq(CheckOutBatchResponse { ticket })
                    }),
                    Err(e) => Dispatched::Now(Response::Err(e)),
                }
            }
            Request::Sync => match self.client.call_async(Cmd::SyncAll) {
                Ok(rx) => park_unit(rx, Response::Sync),
                Err(e) => Dispatched::Now(Response::Err(e)),
            },
            Request::SyncThrough(m) => {
                match self.client.call_async(|r| Cmd::SyncThrough(m.sessions, r)) {
                    Ok(rx) => park_unit(rx, Response::SyncThrough),
                    Err(e) => Dispatched::Now(Response::Err(e)),
                }
            }
            Request::LedgerHeads => match self.client.call_async(Cmd::Heads) {
                Ok(rx) => park(rx, Response::LedgerHeads),
                Err(e) => Dispatched::Now(Response::Err(e)),
            },
            Request::IngestStats => {
                let (tx, rx) = mpsc::channel();
                if self.client.seq.send(Cmd::Stats(tx)).is_err() {
                    return Dispatched::Now(Response::Err(ServiceError::Transport(
                        "ingest sequencer gone".into(),
                    )));
                }
                Dispatched::Pending(Box::new(move || match rx.try_recv() {
                    Ok(stats) => Some(Response::IngestStats(stats)),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => Some(Response::Err(
                        ServiceError::Transport("ingest sequencer gone".into()),
                    )),
                }))
            }
            Request::ActivationSweep(m) => {
                match self.client.call_async(|r| Cmd::Activate(m.claims, r)) {
                    Ok(rx) => park_unit(rx, Response::ActivationSweep),
                    Err(e) => Dispatched::Now(Response::Err(e)),
                }
            }
            // No ingest flush: the coordinator owns the day's final
            // barrier (matching the old multi-connection semantics).
            Request::Shutdown => Dispatched::CloseAfter(Response::Shutdown),
        }
    }
}

// ---------------------------------------------------------------------------
// The whole pipelined day
// ---------------------------------------------------------------------------

/// [`register_day`](crate::register_day) on the pipelined engine:
/// background refillers, the server-side ingest worker, and one
/// connection per polling station. Outcomes stream to `sink` in global
/// queue order; ledgers are bit-identical to the sequential reference for
/// any [`PipelineConfig`].
pub fn pipelined_register_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    pipeline: PipelineConfig,
    mut sink: impl FnMut(RegistrationOutcome),
) -> Result<DayStats, TripError> {
    run_pipelined_day(
        fleet,
        system,
        plan,
        transport.into(),
        pipeline,
        false,
        ChaosOptions::default(),
        &mut |_, outcome, _| sink(outcome),
    )
}

/// [`register_and_activate_day`](crate::register_and_activate_day) on the
/// pipelined engine (see [`pipelined_register_day`]); activation runs in
/// groups of [`PipelineConfig::activation_lag`] windows behind shared
/// prefix barriers.
pub fn pipelined_register_and_activate_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    pipeline: PipelineConfig,
    sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    pipelined_register_and_activate_day_with_fault(
        fleet, system, plan, transport, pipeline, None, sink,
    )
}

/// [`pipelined_register_and_activate_day`] with an optional injected
/// station fault: the faulted station's connection dies mid-day and the
/// coordinator re-runs its undelivered sessions on a fresh recovery
/// connection — the failover path the adversarial tests exercise.
pub fn pipelined_register_and_activate_day_with_fault(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    pipeline: PipelineConfig,
    fault: Option<StationFault>,
    sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    pipelined_register_and_activate_day_chaos(
        fleet,
        system,
        plan,
        transport,
        pipeline,
        ChaosOptions {
            fault,
            ..ChaosOptions::default()
        },
        sink,
    )
}

/// [`pipelined_register_and_activate_day`] under a full [`ChaosOptions`]
/// envelope: clean connection deaths, a seeded [`FaultPlan`] (network
/// faults on every dialed channel plus disk faults under the WAL), and a
/// tightened stall-detection deadline. The contract the chaos sweep
/// asserts: the day either completes with ledgers bit-identical to the
/// unfaulted sequential reference, or returns a typed [`TripError`] —
/// never a panic, never a hang.
pub fn pipelined_register_and_activate_day_chaos(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: impl Into<TransportPlan>,
    pipeline: PipelineConfig,
    chaos: ChaosOptions,
    mut sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    run_pipelined_day(
        fleet,
        system,
        plan,
        transport.into(),
        pipeline,
        true,
        chaos,
        &mut |_, outcome, vsd| sink(outcome, vsd.unwrap_or_default()),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_pipelined_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: TransportPlan,
    pipeline: PipelineConfig,
    activate: bool,
    chaos: ChaosOptions,
    sink: &mut dyn FnMut(usize, RegistrationOutcome, Option<Vsd>),
) -> Result<DayStats, TripError> {
    let fault = chaos.fault;
    let stall_timeout = chaos.stall_timeout.unwrap_or(DEFAULT_STALL_TIMEOUT);
    let authority_pk = system.authority.public_key;
    let printer_registry = system.printer_registry.clone();
    let last_occurrence = last_occurrence_of(plan);
    let total_sessions = plan.len();
    let TripSystem {
        officials,
        printers,
        ledger,
        kiosks,
        kiosk_registry,
        adversary_loot,
        transport_keys,
        ..
    } = system;
    let (Some(official), Some(printer)) = (officials.first(), printers.first()) else {
        return Err(TripError::InvalidConfig(
            "a registration day needs at least one official and one printer".into(),
        ));
    };
    let core = HostCore {
        official,
        printer,
        kiosk_registry,
        threads: fleet.config().threads,
    };
    let ctx = ActivationContext {
        authority_pk: &authority_pk,
        printer_registry: &printer_registry,
        last_occurrence: &last_occurrence,
    };
    let station_plans = partition_stations(plan, kiosks, pipeline.stations)?;

    // Shard ownership: one worker per station partition, folded down to
    // the effective worker count. Routing keys off the *original* kiosk
    // owner so steal re-submissions land on the same shard.
    let workers = pipeline.workers.max(1).min(station_plans.len());
    let route = ShardRoute {
        owner: Arc::new(kiosk_owners(kiosks.len(), station_plans.len())),
        workers,
    };
    let mut worker_sessions: Vec<Vec<u64>> = vec![Vec::new(); workers];
    for session in 0..total_sessions as u64 {
        worker_sessions[route.worker_of(session)].push(session);
    }

    // Disk faults go in before the engine is wired so the very first
    // WAL write is already under the injected schedule.
    if let Some(ff) = chaos.plan.as_ref().and_then(FaultPlan::fault_fs) {
        ledger.install_fault_fs(ff);
    }

    // The whole engine — sequencer, shard workers, client — is wired
    // before any thread spawns.
    let IngestEngine {
        client,
        sequencer,
        seq_rx,
        shards,
    } = build_ingest(
        ledger,
        official,
        core.threads,
        pipeline.ingest,
        route,
        worker_sessions,
    );

    // TCP: bind before the scope so stations can connect immediately.
    let listener = match transport.link {
        LinkKind::InProcess => None,
        LinkKind::Tcp => Some(
            TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| TripError::Boundary(format!("bind: {e}")))?,
        ),
    };
    let addr = listener
        .as_ref()
        .map(|l| l.local_addr())
        .transpose()
        .map_err(|e| TripError::Boundary(format!("local_addr: {e}")))?;
    // One flag tears the whole gateway down: the acceptor stops
    // admitting and the reactors exit once their connections drain.
    let accepting = Arc::new(AtomicBool::new(true));

    // The gateway serves every remote-ish day: real TCP links, and
    // in-process links that the policy secures (the handshake needs the
    // frame-level server). Only the plaintext in-process day bypasses it
    // and dispatches straight into the engine — that is the bit-identity
    // reference and the zero-overhead perf path.
    let use_gateway =
        transport.link == LinkKind::Tcp || transport.security == ChannelSecurity::Secure;

    // Reactor pool: bounded by the deployment, not the connection count.
    const MAX_REACTORS: usize = 4;
    let mut reactor_rxs = Vec::new();
    let mut intake = None;
    if use_gateway {
        let n = station_plans.len().clamp(1, MAX_REACTORS);
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| mpsc::channel()).unzip();
        reactor_rxs = rxs;
        intake = Some(GatewayIntake::new(txs));
    }
    // One pluggable connector per station, carrying that station's
    // enrolled channel identity; its refiller and steal lanes dial the
    // same connector (they act on the station's behalf).
    let connectors: Option<Vec<Box<dyn Connector>>> = intake.as_ref().map(|intake| {
        station_plans
            .iter()
            .map(|sp| -> Box<dyn Connector> {
                let policy = client_policy(transport_keys, transport.security, sp.station);
                let base: Box<dyn Connector> = match addr {
                    Some(addr) => Box::new(TcpConnector {
                        addr,
                        policy,
                        deadlines: Deadlines::default(),
                    }),
                    None => Box::new(PipeHub::new(intake.clone(), policy)),
                };
                // Network faults wrap the *established* channel, so the
                // schedule applies uniformly to plaintext and secured
                // links (injection sits outside the security policy).
                match &chaos.plan {
                    Some(fp) if fp.net_rate_permille > 0 => {
                        Box::new(FaultyConnector::new(base, fp.clone(), sp.station))
                    }
                    _ => base,
                }
            })
            .collect()
    });

    // Day-wide degraded-mode telemetry: boundary counters shared by the
    // station/lane threads, reap count owned by the gateway reactors.
    let counters = DayCounters::default();
    let reaped = Arc::new(AtomicU64::new(0));
    // Releases injected hangs at teardown so their threads join.
    let day_over = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| -> Result<DayStats, TripError> {
        scope.spawn(move || sequencer.run(seq_rx));
        for (worker, rx) in shards {
            scope.spawn(move || worker.run(rx));
        }

        // The multiplexed gateway: a bounded reactor pool serves every
        // connection — stations, refillers, steal lanes — and the
        // acceptor (TCP days only; in-process dials inject straight into
        // the intake) only hands sockets over.
        if use_gateway {
            let server_pol = server_policy(transport_keys, transport.security);
            for rx in reactor_rxs.drain(..) {
                let policy = server_pol.clone();
                let dispatch = PipelineDispatch {
                    core,
                    client: client.clone(),
                };
                let open = Arc::clone(&accepting);
                let reaped = Arc::clone(&reaped);
                scope.spawn(move || reactor_loop(rx, policy, dispatch, open, REAP_AFTER, reaped));
            }
        }
        if let Some(listener) = listener {
            let open = Arc::clone(&accepting);
            let Some(intake) = intake.clone() else {
                return Err(TripError::InvalidConfig(
                    "TCP listener configured without a gateway intake".into(),
                ));
            };
            scope.spawn(move || acceptor_loop(listener, open, intake));
        }

        let station_link = |station: usize| match &connectors {
            Some(conns) => Link::Gateway(conns[station].as_ref()),
            None => Link::InProcess(core),
        };

        let (msg_tx, msg_rx) = mpsc::channel::<StationMsg>();
        let mut spawned = 0usize;
        for sp in &station_plans {
            let hang = chaos.hang.filter(|h| h.station == sp.station);
            let job = StationJob {
                fleet,
                kiosks,
                sessions: sp.sessions.clone(),
                plans: sp.plans.clone(),
                authority_pk,
                activation: activate.then_some(&ctx),
                pipeline,
                fault_after: fault
                    .filter(|f| f.station == sp.station)
                    .map(|f| f.after_ops)
                    .or(hang.map(|h| h.after_ops)),
                hang_release: hang.map(|_| Arc::clone(&day_over)),
                retry: RetryPolicy::reconnect(sp.station as u64),
                counters: &counters,
            };
            let tx = msg_tx.clone();
            let client = client.clone();
            let station_id = sp.station;
            let link = station_link(sp.station);
            scope.spawn(move || {
                let result = run_station(job, link, &client, &tx);
                let _ = tx.send(StationMsg::Done(station_id, result));
            });
            spawned += 1;
        }

        // Coordinator: release outcomes in global session order, push
        // adversary loot in that same order, and steal a dead station's
        // undelivered kiosk range onto the survivors. Runs as an
        // immediately-invoked closure so EVERY exit path — including the
        // error returns — falls through to the acceptor wake-up below;
        // returning early from the scope with the acceptor still parked
        // in accept() would deadlock the scope join.
        let coordinate = || -> Result<DayStats, TripError> {
            let mut next_emit = 0usize;
            let mut buffered: BTreeMap<usize, SessionDelivery> = BTreeMap::new();
            let mut done = 0usize;
            let mut recovered: HashSet<usize> = HashSet::new();
            let mut alive = vec![true; station_plans.len()];
            let mut steals: Vec<StealRecord> = Vec::new();
            let mut steal_seq = 0usize;
            let mut first_error: Option<TripError> = None;
            // Per-thief steal lanes: ONE extra connection per surviving
            // station, shared by every chunk (and re-stolen chunk) that
            // thief absorbs. Declared inside the coordinator so every
            // return path drops the job senders and the lanes unwind
            // before the scope joins.
            let mut steal_lanes: HashMap<usize, Sender<StealJob>> = HashMap::new();
            // In-flight chunks per lane. A lane only accepts a job at
            // load 0 (see `run_steal_lane` on why queueing can deadlock).
            let mut lane_load: HashMap<usize, usize> = HashMap::new();
            let mut steal_meta: HashMap<usize, StealMeta> = HashMap::new();
            // Chaos budget: how many recovery runners the injected fault
            // may still kill (so bounded re-steal is testable without
            // the fault killing every retry forever).
            let mut recovery_deaths_left = fault.map_or(0, |f| f.recovery_deaths);
            // Stall-aware liveness. `session_owner` resolves a delivered
            // session index back to its original station so each outcome
            // refreshes its station's activity clock; a station with
            // undelivered sessions and a stale clock is declared
            // *stalled* — lost without the courtesy of dying — and its
            // remainder is stolen through the exact same path as a dead
            // station's, by synthesizing the `Done(id, Err)` it never
            // sent. If the stalled station later recovers and sends its
            // REAL `Done`, that message is swallowed (`stalled` set):
            // the synthetic one already advanced the `done` accounting,
            // and a late error must not abort a day the steal healed.
            let session_owner: HashMap<usize, usize> = station_plans
                .iter()
                .enumerate()
                .flat_map(|(s, sp)| sp.sessions.iter().map(move |&(idx, _, _)| (idx, s)))
                .collect();
            let mut last_activity: Vec<Instant> = vec![Instant::now(); station_plans.len()];
            let mut finished: HashSet<usize> = HashSet::new();
            let mut stalled: HashSet<usize> = HashSet::new();
            let mut stall_steals = 0u64;
            let mut synthetic: VecDeque<StationMsg> = VecDeque::new();
            let stall_poll =
                (stall_timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
            while done < spawned {
                let (msg, synthesized) = match synthetic.pop_front() {
                    Some(msg) => (msg, true),
                    None => match msg_rx.recv_timeout(stall_poll) {
                        Ok(msg) => (msg, false),
                        Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            // Liveness scan: only stations that are still
                            // nominally alive, unfinished, hold sessions
                            // nobody has delivered, and have been silent
                            // past the deadline. A healthy station parked
                            // on an activation barrier keeps its clock
                            // fresh through the other stations' outcomes
                            // only if it owns none of the missing
                            // sessions — so a false positive costs a
                            // redundant (deduped) replay, never
                            // correctness.
                            for id in 0..station_plans.len() {
                                if !alive[id]
                                    || finished.contains(&id)
                                    || stalled.contains(&id)
                                    || last_activity[id].elapsed() < stall_timeout
                                {
                                    continue;
                                }
                                let undelivered =
                                    station_plans[id].sessions.iter().any(|&(idx, _, _)| {
                                        idx >= next_emit && !buffered.contains_key(&idx)
                                    });
                                if !undelivered {
                                    continue;
                                }
                                stalled.insert(id);
                                stall_steals += 1;
                                synthetic.push_back(StationMsg::Done(
                                    id,
                                    Err(TripError::Boundary(format!(
                                        "station {id} stalled: no outcome within \
                                         {stall_timeout:?}"
                                    ))),
                                ));
                            }
                            continue;
                        }
                    },
                };
                if !synthesized {
                    if let StationMsg::Done(id, _) = &msg {
                        if stalled.remove(id) {
                            continue;
                        }
                    }
                }
                match msg {
                    StationMsg::Outcome(idx, delivery) => {
                        if let Some(&owner) = session_owner.get(&idx) {
                            last_activity[owner] = Instant::now();
                        }
                        buffered.entry(idx).or_insert(delivery);
                        while let Some(delivery) = buffered.remove(&next_emit) {
                            let (outcome, vsd, stolen) = *delivery;
                            if let Some(looted) = stolen {
                                adversary_loot.push(looted);
                            }
                            sink(next_emit, outcome, vsd);
                            next_emit += 1;
                        }
                    }
                    StationMsg::Done(id, Ok(())) => {
                        done += 1;
                        if id < station_plans.len() {
                            finished.insert(id);
                        }
                        // Retire a finished steal chunk's lane slot.
                        if let Some(t) = steal_meta.remove(&id).and_then(|m| m.lane) {
                            lane_load.entry(t).and_modify(|n| *n = n.saturating_sub(1));
                        }
                    }
                    StationMsg::Done(id, Err(e)) => {
                        done += 1;
                        if matches!(&e, TripError::Boundary(m) if m.contains("deadline expired")) {
                            counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        let meta = steal_meta.remove(&id);
                        if let Some(t) = meta.as_ref().and_then(|m| m.lane) {
                            lane_load.entry(t).and_modify(|n| *n = n.saturating_sub(1));
                        }
                        // Attribute the death: an *original* station's
                        // first death is stolen; a dead steal chunk is
                        // re-stolen onto the remaining survivors up to
                        // MAX_RESTEAL_DEPTH retries deep; anything else
                        // aborts the day.
                        let resteal: Option<(usize, usize, Vec<usize>)> =
                            if id < station_plans.len()
                                && recovered.insert(id)
                                && first_error.is_none()
                            {
                                alive[id] = false;
                                Some((
                                    id,
                                    0,
                                    station_plans[id]
                                        .sessions
                                        .iter()
                                        .map(|&(idx, _, _)| idx)
                                        .collect(),
                                ))
                            } else if let Some(meta) = meta {
                                (first_error.is_none() && meta.depth < MAX_RESTEAL_DEPTH)
                                    .then_some((meta.victim, meta.depth + 1, meta.sessions))
                            } else {
                                None
                            };
                        let Some((victim, depth, candidates)) = resteal else {
                            // Unrecoverable: remember the first error and
                            // fail every parked barrier so blocked stations
                            // unwind instead of deadlocking the scope join.
                            first_error.get_or_insert(e);
                            client.abort();
                            continue;
                        };
                        // Undelivered = not yet emitted and not buffered.
                        let remaining: Vec<usize> = candidates
                            .into_iter()
                            .filter(|idx| *idx >= next_emit && !buffered.contains_key(idx))
                            .collect();
                        if remaining.is_empty() {
                            continue;
                        }
                        // Dynamic work stealing: split the undelivered
                        // kiosk range into contiguous chunks attributed
                        // round-robin to the surviving stations, so
                        // recovery re-derivation runs in parallel
                        // instead of on one serial replay connection.
                        // Each chunk rides its thief's steal *lane* —
                        // one amortized connection per thief, not one
                        // per chunk — unless every lane is busy, in
                        // which case it gets a dedicated runner (see
                        // `run_steal_lane`). The kiosk assignment never
                        // moves; shard routing (keyed off the original
                        // owner) dedups the re-submissions.
                        let sp = &station_plans[victim];
                        let k = kiosks.len();
                        let mut stolen_kiosks: Vec<usize> =
                            remaining.iter().map(|idx| idx % k).collect();
                        stolen_kiosks.sort_unstable();
                        stolen_kiosks.dedup();
                        let survivors: Vec<usize> =
                            (0..station_plans.len()).filter(|s| alive[*s]).collect();
                        // No survivors: one chunk, replayed by the
                        // victim itself (the pre-stealing behavior).
                        let chunks = survivors.len().clamp(1, stolen_kiosks.len());
                        for c in 0..chunks {
                            let lo = c * stolen_kiosks.len() / chunks;
                            let hi = (c + 1) * stolen_kiosks.len() / chunks;
                            let owned: HashSet<usize> =
                                stolen_kiosks[lo..hi].iter().copied().collect();
                            let keep: HashSet<usize> = remaining
                                .iter()
                                .copied()
                                .filter(|idx| owned.contains(&(idx % k)))
                                .collect();
                            if keep.is_empty() {
                                continue;
                            }
                            // Prefer riding an IDLE survivor lane (one
                            // amortized connection per thief); when every
                            // candidate lane has a chunk in flight, fall
                            // back to a dedicated one-shot runner so
                            // session-ordered chunks never serialize
                            // behind each other (prefix-barrier deadlock).
                            let preferred = survivors
                                .get(c % survivors.len().max(1))
                                .copied()
                                .unwrap_or(victim);
                            let lane_thief = (0..survivors.len())
                                .map(|o| survivors[(c + o) % survivors.len()])
                                .find(|t| lane_load.get(t).is_none_or(|n| *n == 0));
                            let thief = lane_thief.unwrap_or(preferred);
                            steals.push(StealRecord {
                                victim,
                                thief,
                                sessions: keep.len(),
                                depth,
                            });
                            let sessions: Vec<(usize, VoterId, usize)> = sp
                                .sessions
                                .iter()
                                .filter(|(idx, _, _)| keep.contains(idx))
                                .copied()
                                .collect();
                            let session_idxs: Vec<usize> =
                                sessions.iter().map(|&(idx, _, _)| idx).collect();
                            // Steal chunks draw their materials from a
                            // pre-built pool instead of spinning up a
                            // refiller connection per chunk (same
                            // seeded plans → same bytes either way).
                            let mut chunk_pipeline = pipeline;
                            chunk_pipeline.low_water = 0;
                            // Kill-during-failover chaos hook: the
                            // fault may kill up to `recovery_deaths`
                            // recovery runners before the retries are
                            // allowed to succeed.
                            let fault_after = match fault {
                                Some(f) if f.station == victim && recovery_deaths_left > 0 => {
                                    f.recovery_after_ops.inspect(|_| recovery_deaths_left -= 1)
                                }
                                _ => None,
                            };
                            let job = StationJob {
                                fleet,
                                kiosks,
                                sessions,
                                plans: sp
                                    .plans
                                    .iter()
                                    .filter(|(idx, _)| keep.contains(idx))
                                    .copied()
                                    .collect(),
                                authority_pk,
                                activation: activate.then_some(&ctx),
                                pipeline: chunk_pipeline,
                                fault_after,
                                hang_release: None,
                                retry: RetryPolicy::reconnect(
                                    (station_plans.len() + steal_seq) as u64,
                                ),
                                counters: &counters,
                            };
                            let runner_id = station_plans.len() + steal_seq;
                            steal_seq += 1;
                            steal_meta.insert(
                                runner_id,
                                StealMeta {
                                    victim,
                                    depth,
                                    sessions: session_idxs,
                                    lane: lane_thief,
                                },
                            );
                            match lane_thief {
                                Some(t) => {
                                    *lane_load.entry(t).or_insert(0) += 1;
                                    let lane = steal_lanes.entry(t).or_insert_with(|| {
                                        let (job_tx, job_rx) = mpsc::channel::<StealJob>();
                                        let tx = msg_tx.clone();
                                        let client = client.clone();
                                        let link = station_link(t);
                                        scope.spawn(move || {
                                            run_steal_lane(job_rx, link, &client, &tx)
                                        });
                                        job_tx
                                    });
                                    // The lane cannot be gone while we
                                    // hold its sender; a send failure is
                                    // unreachable.
                                    let _ = lane.send(StealJob { runner_id, job });
                                }
                                None => {
                                    let tx = msg_tx.clone();
                                    let client = client.clone();
                                    let link = station_link(thief);
                                    scope.spawn(move || {
                                        let result = run_station(job, link, &client, &tx);
                                        let _ = tx.send(StationMsg::Done(runner_id, result));
                                    });
                                }
                            }
                            spawned += 1;
                        }
                    }
                }
            }
            drop(msg_tx);

            if let Some(e) = first_error {
                return Err(e);
            }
            if next_emit != total_sessions {
                return Err(TripError::Boundary(format!(
                    "day ended with {next_emit}/{total_sessions} sessions delivered"
                )));
            }

            // Final barrier + telemetry straight over the engine channel.
            client.call(Cmd::SyncAll).map_err(ServiceError::into_trip)?;
            let ingest = client
                .stats()
                .map_err(|e| TripError::Boundary(e.to_string()))?;
            Ok(DayStats {
                ingest,
                workers,
                steals,
                timeouts: counters.timeouts.load(Ordering::Relaxed),
                reconnects: counters.reconnects.load(Ordering::Relaxed),
                reaped: reaped.load(Ordering::Relaxed),
                stall_steals,
            })
        };
        let result = coordinate();

        // Tear the gateway down — on success AND failure alike (see the
        // coordinator comment): clear the flag so the reactors exit once
        // their connections drain, and wake the acceptor (parked in
        // accept()) with a throwaway connection so it observes the flag.
        // Injected hangs release first so their threads join.
        day_over.store(true, Ordering::SeqCst);
        accepting.store(false, Ordering::SeqCst);
        if let Some(addr) = addr {
            drop(TcpStream::connect(addr));
        }
        // Teardown handshake: the sequencer drops its shard senders so
        // the workers drain and exit; dropping the coordinator's client
        // (the reactors' clones go with their threads) then lets the
        // sequencer itself exit. Both must happen on every exit path or
        // the scope join deadlocks.
        client.shutdown();
        drop(client);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::{HmacDrbg, Rng};
    use vg_trip::setup::TripConfig;

    /// The sharded engine over a real ledger: two shard workers own the
    /// even/odd session interleave, handles resolve by poll/wait while
    /// the per-worker reorder buffers restore cross-station submission
    /// order, and the sequencer still commits one global prefix.
    #[test]
    fn ingest_handles_resolve_in_global_order() {
        let mut rng = HmacDrbg::from_u64(9);
        let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);
        let printer = EnvelopePrinter::new(&mut rng);
        let TripSystem {
            officials, ledger, ..
        } = &mut system;
        let commitment = |i: u64| {
            let mut r = HmacDrbg::from_u64(i);
            printer
                .print_detached(r.scalar(), vg_trip::materials::Symbol::Star)
                .1
        };

        // Two kiosks owned by two stations, folded onto two workers:
        // worker 0 owns session 0, worker 1 owns session 1.
        let route = ShardRoute {
            owner: Arc::new(kiosk_owners(2, 2)),
            workers: 2,
        };
        let engine = build_ingest(
            ledger,
            &officials[0],
            1,
            IngestMode::Background,
            route,
            vec![vec![0], vec![1]],
        );
        let IngestEngine {
            client,
            sequencer,
            seq_rx,
            shards,
        } = engine;
        std::thread::scope(|scope| {
            scope.spawn(move || sequencer.run(seq_rx));
            for (worker, rx) in shards {
                scope.spawn(move || worker.run(rx));
            }

            // Session 1 arrives before session 0: its handle must stay
            // pending (the registration lane gates admitted_through too,
            // so we drive both lanes).
            let (_, h1) = client
                .submit_envelopes(vec![(1, vec![commitment(1)])])
                .unwrap();
            assert!(h1.poll().is_none(), "gap: session 0 missing");
            let (_, h0) = client
                .submit_envelopes(vec![(0, vec![commitment(0)])])
                .unwrap();
            // Registration lane: both sessions' records are required
            // before the global prefix counts as admitted. An empty
            // record group per session keeps the lanes' bookkeeping
            // moving without real check-out material.
            client
                .submit_records(vec![(0, vec![]), (1, vec![])])
                .unwrap();
            // Two pending commitments sit below the idle-sweep floor, so
            // drive the sweep with a prefix barrier — exactly what a
            // station's activation group does.
            client
                .call(|reply| Cmd::SyncThrough(2, reply))
                .expect("prefix barrier");
            h0.wait().expect("prefix admitted");
            h1.wait().expect("prefix admitted");
            assert_eq!(h1.poll(), Some(Ok(())));
            // Duplicate (failover-style) resubmission is dropped, not
            // double-admitted.
            let (_, dup) = client
                .submit_envelopes(vec![(0, vec![commitment(0)])])
                .unwrap();
            dup.wait().expect("already admitted");
            let stats = client.stats().unwrap();
            assert!(stats.env_batches > 0);
            assert_eq!(stats.workers, 2);
            // Teardown handshake (see `Cmd::Shutdown`): the sequencer
            // releases the workers, then the last client drop releases
            // the sequencer.
            client.shutdown();
            drop(client);
        });
        assert!(system.ledger.envelopes.committed_count() >= 2);
    }
}
