//! The pipelined registration-day engine: background pool refillers, a
//! server-side ingest worker, and a multi-connection registrar.
//!
//! The barrier-synchronous day ([`crate::register_and_activate_day`])
//! executes its three stages lock-step: precompute refills the pool at
//! window boundaries, ledger admission flushes on the caller's thread at
//! every activation barrier, and the TCP server accepts exactly one
//! kiosk-coordinator connection. This module overlaps all three:
//!
//! - **Refillers** ([`vg_trip::pool::PoolFeed`]): each polling station
//!   runs a dedicated thread owning a `PrintService` client that keeps
//!   the station's ceremony pool above a low-water mark, hiding
//!   precompute behind ceremony latency mid-day, not just at warm start.
//! - **Ingest worker**: one server-side thread owns the ledgers. Stations
//!   submit session-tagged record groups and continue immediately; the
//!   worker restores *global* session order across stations (a reorder
//!   buffer per ledger), coalesces whatever is in flight into single
//!   RLC-folded admission sweeps, and resolves prefix barriers
//!   ([`Request::SyncThrough`](crate::messages::Request)) as admission
//!   advances. Submissions come with real completion handles
//!   ([`IngestHandle`]) that can be polled or awaited.
//! - **Multi-connection registrar**: the TCP acceptor serves N
//!   kiosk-coordinator connections (one per polling station, plus each
//!   station's refiller client), with the ingest worker as the single
//!   serialization point for ledger state.
//!
//! # Bit-identity
//!
//! Every pipeline configuration — station count, low-water mark, ingest
//! mode, activation lag, transport — produces ledgers and credentials
//! bit-identical to the sequential seeded reference: session materials
//! are pure functions of `(seed, global index, voter)`, kiosk assignment
//! stays `index mod |K|` (stations own disjoint kiosk chunks), and the
//! worker admits records in global session order no matter which station
//! finished first. Pipelining changes *when* work happens, never *what*
//! lands on the ledger — pinned by `tests/pipeline.rs`.
//!
//! # Failover
//!
//! If a station's connection dies mid-window, the coordinator re-runs its
//! undelivered sessions on a fresh recovery connection. Re-derived
//! sessions are byte-identical (determinism again), and the worker's
//! reorder buffer drops duplicate session groups, so a partially
//! submitted window heals without double admission.

use std::collections::{BTreeMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vg_crypto::par::par_map;
use vg_crypto::schnorr::NonceCoupon;
use vg_crypto::CompressedPoint;
use vg_ledger::{EnvelopeCommitment, Ledger, RegistrationRecord, VoterId};
use vg_trip::boundary::{IngestTicket, RegistrarBoundary};
use vg_trip::fleet::{
    last_occurrence_of, partition_stations, ActivationContext, FeedSource, KioskFleet, PoolSource,
};
use vg_trip::kiosk::{Kiosk, StolenCredential};
use vg_trip::materials::{CheckInTicket, CheckOutQr, Envelope};
use vg_trip::official::Official;
use vg_trip::pool::PoolFeed;
use vg_trip::printer::EnvelopePrinter;
use vg_trip::protocol::RegistrationOutcome;
use vg_trip::setup::TripSystem;
use vg_trip::vsd::{activation_ledger_phase, ActivationClaim, Vsd};
use vg_trip::{PrintJob, TripError};

use crate::error::ServiceError;
use crate::ingest::IngestQueue;
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, IngestReceipt, IngestStatsReply, LedgerHeads,
    PrintRequest, PrintResponse, Request, Response, SeqCheckOutRequest, SeqEnvelopeSubmitRequest,
};
use crate::registrar::MAX_PENDING_RECORDS;
use crate::traits::{ActivationService, LedgerIngestService, PrintService, RegistrarService};
use crate::transport::{DayStats, ServiceBoundary, TcpClient, Transport};
use crate::wire::{read_frame, write_frame};

/// When the ingest worker runs admission sweeps.
///
/// Either mode ends every sweep at the same commit point: records are
/// admitted to the in-memory Merkle state only after they are appended
/// (and, with fsync on, group-synced) to the durable WAL, and each sweep
/// closes by persisting a signed tree head covering everything admitted.
/// The modes differ only in *when* sweeps run, never in what a completed
/// sweep guarantees — so crash recovery replays to the same heads under
/// both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Flush only at barriers (sync/heads/activation) — the coalescing
    /// behavior of the single-connection host, behind a worker thread.
    #[default]
    Barrier,
    /// Additionally flush whenever the command channel goes idle, so
    /// admission sweeps overlap the next window's ceremonies.
    Background,
}

/// Tuning for a pipelined registration day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Polling-station connections (clamped to `1..=|K|`; kiosks split
    /// into contiguous chunks, sessions follow their kiosk).
    pub stations: usize,
    /// Background-refiller low-water mark in sessions; `0` disables the
    /// refiller thread (stations refill synchronously at window
    /// boundaries).
    pub low_water: usize,
    /// When the ingest worker sweeps.
    pub ingest: IngestMode,
    /// Activate groups of this many windows behind one prefix barrier
    /// (`1` = a barrier per window, the lock-step reference). Larger lags
    /// amortize barrier and verification-fold fixed costs; peak memory
    /// grows to O(lag × pool batch).
    pub activation_lag: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            stations: 1,
            low_water: 0,
            ingest: IngestMode::Barrier,
            activation_lag: 1,
        }
    }
}

impl PipelineConfig {
    /// Whether any knob departs from the lock-step defaults.
    pub fn is_pipelined(&self) -> bool {
        self.stations > 1
            || self.low_water > 0
            || self.ingest == IngestMode::Background
            || self.activation_lag > 1
    }
}

/// A chaos hook for failover tests: station `station`'s boundary starts
/// failing every call after `after_ops` successful ones, simulating a
/// polling-station connection dying mid-window. Honest deployments pass
/// `None`.
#[derive(Clone, Copy, Debug)]
pub struct StationFault {
    /// Which station loses its connection.
    pub station: usize,
    /// Boundary calls that succeed before the connection "dies".
    pub after_ops: usize,
    /// If set, the *recovery* connection replaying the dead station's
    /// undelivered sessions also dies after this many successful calls —
    /// the kill-during-failover case. The day then aborts with a typed
    /// error; on a durable backend everything admitted before the kill
    /// is already persisted, so a reopened system replays it and dedups
    /// the re-submitted sessions against that persisted prefix.
    pub recovery_after_ops: Option<usize>,
}

// ---------------------------------------------------------------------------
// Completion handles
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ProgressState {
    /// Sessions `[0, admitted_through)` are admitted on both ledgers.
    admitted_through: u64,
    /// Sticky first admission failure.
    failed: Option<ServiceError>,
    /// The worker exited; nothing further will resolve.
    finished: bool,
}

/// Shared admission progress the ingest worker publishes after every
/// sweep; [`IngestHandle`]s resolve against it.
#[derive(Clone, Default)]
pub struct IngestProgress {
    shared: Arc<(Mutex<ProgressState>, Condvar)>,
}

impl IngestProgress {
    /// Fresh progress at session zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn update(&self, admitted_through: u64, failed: Option<&ServiceError>) {
        let (lock, cv) = &*self.shared;
        let mut st = lock.lock().expect("progress lock");
        st.admitted_through = st.admitted_through.max(admitted_through);
        if st.failed.is_none() {
            st.failed = failed.cloned();
        }
        cv.notify_all();
    }

    fn finish(&self) {
        let (lock, cv) = &*self.shared;
        lock.lock().expect("progress lock").finished = true;
        cv.notify_all();
    }

    /// A handle that resolves once every session below `through` is
    /// admitted.
    pub fn handle(&self, through: u64) -> IngestHandle {
        IngestHandle {
            through,
            progress: self.clone(),
        }
    }
}

/// A real completion handle for an asynchronous ledger submission: where
/// the barrier-mode host hands out opaque tickets that only resolve at
/// the next sync, a pipelined submission can be polled or awaited while
/// the worker drives admission in the background.
pub struct IngestHandle {
    through: u64,
    progress: IngestProgress,
}

impl IngestHandle {
    /// Non-blocking check: `None` while admission is still pending,
    /// `Some(Ok)` once the covering prefix is admitted, `Some(Err)` on a
    /// sticky admission failure (or a worker that exited first).
    pub fn poll(&self) -> Option<Result<(), ServiceError>> {
        let (lock, _) = &*self.progress.shared;
        let st = lock.lock().expect("progress lock");
        if let Some(e) = &st.failed {
            return Some(Err(e.clone()));
        }
        if st.admitted_through >= self.through {
            return Some(Ok(()));
        }
        if st.finished {
            return Some(Err(ServiceError::Transport(
                "ingest worker exited before admission".into(),
            )));
        }
        None
    }

    /// Blocks until the submission resolves.
    ///
    /// # Commit-point contract
    ///
    /// When `wait` returns `Ok(())`, every session up to and including
    /// the one this handle covers has been *admitted*: its envelope
    /// commitments and registration records passed the RLC admission
    /// sweep and were appended to the ledgers, and — on a durable
    /// backend — the sweep that admitted them ended with a `persist()`
    /// commit barrier (WAL group-fsync, then a signed tree head
    /// covering them). A crash after `Ok(())` therefore cannot lose the
    /// session: reopening the store replays it back under the same
    /// head. This holds identically under [`IngestMode::Barrier`] and
    /// [`IngestMode::Background`]; the modes only change when sweeps
    /// happen, not what an `Ok(())` means. On `Err`, nothing past the
    /// last successful sweep is guaranteed — but everything *before*
    /// the sticky failure was still persisted by its own sweep.
    pub fn wait(&self) -> Result<(), ServiceError> {
        let (lock, cv) = &*self.progress.shared;
        let mut st = lock.lock().expect("progress lock");
        loop {
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.admitted_through >= self.through {
                return Ok(());
            }
            if st.finished {
                return Err(ServiceError::Transport(
                    "ingest worker exited before admission".into(),
                ));
            }
            st = cv.wait(st).expect("progress lock");
        }
    }
}

// ---------------------------------------------------------------------------
// The ingest worker
// ---------------------------------------------------------------------------

/// Minimum pending records before a channel-idle gap triggers a
/// background admission sweep (barriers always flush everything).
/// Smaller idle sweeps would fragment the RLC folds the coalescing win
/// comes from.
const MIN_IDLE_SWEEP: usize = 512;

enum Cmd {
    CheckIn(VoterId, Sender<Result<CheckInTicket, ServiceError>>),
    SubmitEnvelopes(
        Vec<(u64, Vec<EnvelopeCommitment>)>,
        Sender<Result<u64, ServiceError>>,
    ),
    SubmitRecords(
        Vec<(u64, Vec<RegistrationRecord>)>,
        Sender<Result<u64, ServiceError>>,
    ),
    SyncThrough(u64, Sender<Result<(), ServiceError>>),
    SyncAll(Sender<Result<(), ServiceError>>),
    Activate(Vec<ActivationClaim>, Sender<Result<(), ServiceError>>),
    Heads(Sender<Result<LedgerHeads, ServiceError>>),
    Stats(Sender<IngestStatsReply>),
    /// Fail every parked barrier so blocked stations unwind (day abort).
    Abort,
}

/// One ledger's reorder-buffer + coalescing-queue lane.
struct Lane<R> {
    /// Session groups waiting for earlier sessions to arrive.
    reorder: BTreeMap<u64, Vec<R>>,
    /// Next session index to release into the queue.
    next_expected: u64,
    queue: IngestQueue<R>,
    /// Sessions `[0, flushed_through)` are admitted on this ledger.
    flushed_through: u64,
}

impl<R: Clone> Lane<R> {
    fn new() -> Self {
        Self {
            reorder: BTreeMap::new(),
            next_expected: 0,
            queue: IngestQueue::with_capacity(MAX_PENDING_RECORDS),
            flushed_through: 0,
        }
    }

    /// Sessions `[0, ..)` admitted on this ledger: everything released is
    /// either still pending in the queue or already flushed, so an empty
    /// queue means the whole released prefix is on the ledger (this also
    /// covers sessions whose record group was empty and never enqueued).
    fn admitted_through(&self) -> u64 {
        if self.queue.pending_records() == 0 {
            self.next_expected
        } else {
            self.flushed_through
        }
    }

    /// Buffers session-tagged groups, dropping duplicates (recovery
    /// re-submissions are byte-identical, so first-wins is sound), then
    /// releases the in-order prefix into the coalescing queue. `post` is
    /// only used when the queue applies backpressure mid-release.
    fn absorb(
        &mut self,
        groups: Vec<(u64, Vec<R>)>,
        post: &mut dyn FnMut(Vec<R>) -> Result<std::ops::Range<usize>, vg_ledger::LedgerError>,
    ) -> Result<(), ServiceError> {
        for (session, records) in groups {
            if session < self.next_expected || self.reorder.contains_key(&session) {
                continue; // duplicate (failover re-submission)
            }
            self.reorder.insert(session, records);
        }
        let released_before = self.next_expected;
        let mut batch = Vec::new();
        while let Some(records) = self.reorder.remove(&self.next_expected) {
            batch.extend(records);
            self.next_expected += 1;
        }
        if batch.is_empty() {
            return Ok(());
        }
        match self.queue.submit(batch) {
            Ok(_) => Ok(()),
            Err((_, refused)) => {
                // Backpressure: sweep what's pending (sessions
                // [flushed_through, released_before)), then retry.
                self.queue.flush(&mut *post)?;
                self.flushed_through = released_before;
                self.queue
                    .submit(refused)
                    .map(|_| ())
                    .map_err(|_| ServiceError::Transport("ingest queue refused after flush".into()))
            }
        }
    }
}

/// The single-threaded admission engine behind the pipelined host. It
/// owns the ledgers for the day; every mutation funnels through
/// [`IngestWorker::flush_all`], whose final `persist()` is the one and
/// only durable commit point — no code path publishes progress, answers
/// a barrier, or returns ledger heads for state that has not already
/// been fsynced under a signed head.
struct IngestWorker<'a> {
    ledger: &'a mut Ledger,
    official: &'a Official,
    threads: usize,
    mode: IngestMode,
    env: Lane<EnvelopeCommitment>,
    reg: Lane<RegistrationRecord>,
    parked: Vec<(u64, Sender<Result<(), ServiceError>>)>,
    failed: Option<ServiceError>,
    next_ticket: u64,
    progress: IngestProgress,
    busy: Duration,
    idle: Duration,
}

impl<'a> IngestWorker<'a> {
    fn admitted_through(&self) -> u64 {
        self.env.admitted_through().min(self.reg.admitted_through())
    }

    /// Pending records across both queues.
    fn pending_records(&self) -> usize {
        self.env.queue.pending_records() + self.reg.queue.pending_records()
    }

    /// One coalesced admission sweep per ledger over everything
    /// released, ending at the durable commit point: RLC admission →
    /// segment append → group fsync → signed-head publish. Progress is
    /// published (and handles resolve) only after `persist()` returns,
    /// so an admitted session is always a persisted session.
    fn flush_all(&mut self) {
        if self.failed.is_some() {
            return;
        }
        let ledger = &mut *self.ledger;
        let threads = self.threads;
        let env_target = self.env.next_expected;
        match self
            .env
            .queue
            .flush(|c| ledger.envelopes.commit_batch(c, threads))
        {
            Ok(()) => self.env.flushed_through = env_target,
            Err(e) => self.failed = Some(e.into()),
        }
        if self.failed.is_none() {
            let reg_target = self.reg.next_expected;
            match self
                .reg
                .queue
                .flush(|r| ledger.registration.post_batch(r, threads))
            {
                Ok(()) => self.reg.flushed_through = reg_target,
                Err(e) => self.failed = Some(e.into()),
            }
        }
        // Commit barrier: everything this sweep admitted reaches stable
        // storage (WAL fsync + signed head) before any handle observes
        // it as admitted. A no-op on volatile backends.
        self.ledger.persist();
        self.progress
            .update(self.admitted_through(), self.failed.as_ref());
    }

    /// Resolves parked prefix barriers: flushes when a parked barrier's
    /// prefix is fully released but not yet admitted, then answers
    /// whatever the sweep satisfied. Sticky failures answer everything.
    fn service_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        if self.failed.is_none() {
            let releasable = self.env.next_expected.min(self.reg.next_expected);
            let admitted = self.admitted_through();
            if self
                .parked
                .iter()
                .any(|(needed, _)| *needed > admitted && *needed <= releasable)
            {
                self.flush_all();
            }
        }
        if let Some(e) = self.failed.clone() {
            for (_, reply) in self.parked.drain(..) {
                let _ = reply.send(Err(e.clone()));
            }
            return;
        }
        let admitted = self.admitted_through();
        self.parked.retain(|(needed, reply)| {
            if *needed <= admitted {
                let _ = reply.send(Ok(()));
                false
            } else {
                true
            }
        });
    }

    fn stats(&self) -> IngestStatsReply {
        let (env_batches, env_sweeps) = self.env.queue.stats();
        let (reg_batches, reg_sweeps) = self.reg.queue.stats();
        let durability = self.ledger.durability_stats();
        IngestStatsReply {
            env_batches,
            env_sweeps,
            reg_batches,
            reg_sweeps,
            worker_busy_us: self.busy.as_micros() as u64,
            worker_idle_us: self.idle.as_micros() as u64,
            wal_records: durability.wal_records,
            wal_fsyncs: durability.wal_fsyncs,
        }
    }

    fn handle(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::CheckIn(voter, reply) => {
                let out = self
                    .official
                    .check_in(self.ledger, voter)
                    .map_err(ServiceError::Trip);
                let _ = reply.send(out);
            }
            Cmd::SubmitEnvelopes(groups, reply) => {
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    let ledger = &mut *self.ledger;
                    let threads = self.threads;
                    self.env
                        .absorb(groups, &mut |c| ledger.envelopes.commit_batch(c, threads))
                        .map(|()| {
                            let t = self.next_ticket;
                            self.next_ticket += 1;
                            t
                        })
                };
                if let Err(e) = &out {
                    self.failed.get_or_insert(e.clone());
                }
                let _ = reply.send(out);
            }
            Cmd::SubmitRecords(groups, reply) => {
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    let ledger = &mut *self.ledger;
                    let threads = self.threads;
                    self.reg
                        .absorb(groups, &mut |r| ledger.registration.post_batch(r, threads))
                        .map(|()| {
                            let t = self.next_ticket;
                            self.next_ticket += 1;
                            t
                        })
                };
                if let Err(e) = &out {
                    self.failed.get_or_insert(e.clone());
                }
                let _ = reply.send(out);
            }
            Cmd::SyncThrough(sessions, reply) => {
                if self.admitted_through() >= sessions && self.failed.is_none() {
                    let _ = reply.send(Ok(()));
                } else {
                    self.parked.push((sessions, reply));
                }
            }
            Cmd::SyncAll(reply) => {
                self.flush_all();
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else if !self.env.reorder.is_empty() || !self.reg.reorder.is_empty() {
                    Err(ServiceError::Transport(format!(
                        "sessions lost: admission stalled at {} (gap in submissions)",
                        self.admitted_through()
                    )))
                } else {
                    Ok(())
                };
                let _ = reply.send(out);
            }
            Cmd::Activate(claims, reply) => {
                self.flush_all();
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    let mut out = Ok(());
                    for claim in &claims {
                        if let Err(e) = activation_ledger_phase(self.ledger, claim) {
                            out = Err(ServiceError::Trip(e));
                            break;
                        }
                    }
                    // Activation appended reveal-WAL entries; sync them
                    // before acknowledging the claims.
                    self.ledger.persist();
                    out
                };
                let _ = reply.send(out);
            }
            Cmd::Heads(reply) => {
                self.flush_all();
                let out = if let Some(e) = self.failed.clone() {
                    Err(e)
                } else {
                    Ok(LedgerHeads {
                        registration: self.ledger.registration.tree_head(),
                        envelopes: self.ledger.envelopes.tree_head(),
                    })
                };
                let _ = reply.send(out);
            }
            Cmd::Stats(reply) => {
                let _ = reply.send(self.stats());
            }
            Cmd::Abort => {
                self.failed
                    .get_or_insert(ServiceError::Transport("registration day aborted".into()));
                self.progress
                    .update(self.admitted_through(), self.failed.as_ref());
            }
        }
    }

    /// The worker loop: drain every immediately-available command first
    /// (so bursts coalesce), then — in [`IngestMode::Background`] — use
    /// idle gaps for admission sweeps that overlap the stations' next
    /// ceremonies, and only then block.
    fn run(mut self, rx: Receiver<Cmd>) {
        loop {
            let cmd = match rx.try_recv() {
                Ok(cmd) => cmd,
                Err(TryRecvError::Empty) => {
                    // Background sweeps wait for a worthwhile batch:
                    // sweeping every stray submission would fragment the
                    // RLC folds (and their Pippenger batches) that the
                    // coalescing win comes from. Anything smaller rides
                    // the next barrier.
                    if self.mode == IngestMode::Background
                        && self.pending_records() >= MIN_IDLE_SWEEP
                        && self.failed.is_none()
                    {
                        let t = Instant::now();
                        self.flush_all();
                        self.service_parked();
                        self.busy += t.elapsed();
                        continue;
                    }
                    let t = Instant::now();
                    match rx.recv() {
                        Ok(cmd) => {
                            self.idle += t.elapsed();
                            cmd
                        }
                        Err(_) => break,
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            };
            let t = Instant::now();
            self.handle(cmd);
            self.service_parked();
            // Publish progress even when nothing flushed: absorbing an
            // empty record group can advance the admitted prefix on its
            // own, and handles block on this.
            self.progress
                .update(self.admitted_through(), self.failed.as_ref());
            self.busy += t.elapsed();
        }
        // Day over: final sweep, then fail anything still parked (a
        // parked barrier at this point means its prefix never arrived).
        self.flush_all();
        self.service_parked();
        for (_, reply) in self.parked.drain(..) {
            let _ = reply.send(Err(ServiceError::Transport(
                "registration day ended with submissions missing".into(),
            )));
        }
        self.progress.finish();
    }
}

/// Client half of the worker channel (cheap to clone; one per connection
/// handler / in-process endpoint).
#[derive(Clone)]
struct WorkerClient {
    tx: Sender<Cmd>,
    progress: IngestProgress,
}

impl WorkerClient {
    fn call<T>(
        &self,
        build: impl FnOnce(Sender<Result<T, ServiceError>>) -> Cmd,
    ) -> Result<T, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(build(tx))
            .map_err(|_| ServiceError::Transport("ingest worker gone".into()))?;
        rx.recv()
            .map_err(|_| ServiceError::Transport("ingest worker gone".into()))?
    }

    fn submit_envelopes(
        &self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<(u64, IngestHandle), ServiceError> {
        let through = groups.last().map_or(0, |(s, _)| s + 1);
        let ticket = self.call(|reply| Cmd::SubmitEnvelopes(groups, reply))?;
        Ok((ticket, self.progress.handle(through)))
    }

    fn submit_records(
        &self,
        groups: Vec<(u64, Vec<RegistrationRecord>)>,
    ) -> Result<(u64, IngestHandle), ServiceError> {
        let through = groups.last().map_or(0, |(s, _)| s + 1);
        let ticket = self.call(|reply| Cmd::SubmitRecords(groups, reply))?;
        Ok((ticket, self.progress.handle(through)))
    }

    fn stats(&self) -> Result<IngestStatsReply, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Cmd::Stats(tx))
            .map_err(|_| ServiceError::Transport("ingest worker gone".into()))?;
        rx.recv()
            .map_err(|_| ServiceError::Transport("ingest worker gone".into()))
    }

    fn abort(&self) {
        let _ = self.tx.send(Cmd::Abort);
    }
}

// ---------------------------------------------------------------------------
// Registrar-side shared services (no ledger state)
// ---------------------------------------------------------------------------

/// The ledger-free registrar services every connection handler can run on
/// its own thread: printing and desk-side check-out verification. Only
/// the resulting records funnel into the worker.
#[derive(Clone, Copy)]
struct HostCore<'a> {
    official: &'a Official,
    printer: &'a EnvelopePrinter,
    kiosk_registry: &'a [CompressedPoint],
    threads: usize,
}

impl HostCore<'_> {
    fn print(&self, jobs: &[PrintJob]) -> Vec<(Envelope, EnvelopeCommitment)> {
        par_map(jobs, self.threads, |job| {
            self.printer.print_detached(job.challenge, job.symbol)
        })
    }

    /// Fig 10 lines 2–5 for a station's window: verify the whole window
    /// in one committed RLC sweep on the *caller's* thread (stations
    /// verify concurrently), countersign, and regroup by session.
    fn verify_and_countersign(
        &self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<Vec<(u64, Vec<RegistrationRecord>)>, ServiceError> {
        let counts: Vec<(u64, usize)> = groups.iter().map(|(s, c)| (*s, c.len())).collect();
        let flat: Vec<(CheckOutQr, NonceCoupon)> =
            groups.into_iter().flat_map(|(_, c)| c).collect();
        self.official
            .verify_checkouts(&flat, self.kiosk_registry, self.threads)?;
        let mut records = self.official.countersign_checkouts(flat).into_iter();
        Ok(counts
            .into_iter()
            .map(|(session, n)| (session, records.by_ref().take(n).collect()))
            .collect())
    }
}

/// The in-process pipelined endpoint: ledger-free services run inline on
/// the station's thread; everything touching ledger state crosses the
/// worker channel. Serves the same four service traits as
/// [`crate::RegistrarHost`], so the fleet drives it through the ordinary
/// [`ServiceBoundary`].
struct PipelinedEndpoint<'a> {
    core: HostCore<'a>,
    worker: WorkerClient,
}

impl RegistrarService for PipelinedEndpoint<'_> {
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError> {
        self.worker
            .call(|reply| Cmd::CheckIn(req.voter, reply))
            .map(|ticket| CheckInResponse { ticket })
    }

    fn check_out_batch(
        &mut self,
        _req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        Err(ServiceError::Transport(
            "pipelined registrar requires session-tagged submissions".into(),
        ))
    }

    fn check_out_groups(
        &mut self,
        req: SeqCheckOutRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        let groups = req
            .groups
            .into_iter()
            .map(|(s, checkouts)| {
                (
                    s,
                    checkouts
                        .into_iter()
                        .map(|(qr, coupon)| (qr, coupon.into()))
                        .collect(),
                )
            })
            .collect();
        let records = self.core.verify_and_countersign(groups)?;
        let (ticket, _handle) = self.worker.submit_records(records)?;
        Ok(CheckOutBatchResponse { ticket })
    }
}

impl PrintService for PipelinedEndpoint<'_> {
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError> {
        Ok(PrintResponse {
            envelopes: self.core.print(&req.jobs),
        })
    }
}

impl LedgerIngestService for PipelinedEndpoint<'_> {
    fn submit_envelopes(
        &mut self,
        _req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        Err(ServiceError::Transport(
            "pipelined registrar requires session-tagged submissions".into(),
        ))
    }

    fn submit_envelope_groups(
        &mut self,
        req: SeqEnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        let (ticket, _handle) = self.worker.submit_envelopes(req.groups)?;
        Ok(IngestReceipt { ticket })
    }

    fn sync(&mut self) -> Result<(), ServiceError> {
        self.worker.call(Cmd::SyncAll)
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), ServiceError> {
        self.worker.call(|reply| Cmd::SyncThrough(sessions, reply))
    }

    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError> {
        self.worker.call(Cmd::Heads)
    }

    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        self.worker.stats()
    }
}

impl ActivationService for PipelinedEndpoint<'_> {
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError> {
        self.worker.call(|reply| Cmd::Activate(req.claims, reply))
    }
}

/// Serves one station (or refiller) connection of the multi-connection
/// registrar: ledger-free requests run on this handler thread, stateful
/// ones cross the worker channel. One bad frame answers with a typed
/// error; EOF (the client vanished) just ends the handler — the
/// coordinator's failover owns the consequences.
fn serve_station_conn(
    stream: TcpStream,
    core: HostCore<'_>,
    worker: WorkerClient,
) -> Result<(), ServiceError> {
    stream.set_nodelay(true)?;
    let mut endpoint = PipelinedEndpoint { core, worker };
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let frame = read_frame(&mut reader)?;
        let (response, done) = match Request::from_wire(&frame) {
            Ok(req) => crate::transport::dispatch(&mut endpoint, req, false),
            Err(e) => (
                Response::Err(ServiceError::Transport(format!("bad request: {e}"))),
                false,
            ),
        };
        write_frame(&mut writer, &response.to_wire())?;
        if done {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------------
// Client-side station runner
// ---------------------------------------------------------------------------

/// Wraps a boundary so every call past `remaining` fails as if the
/// station's connection dropped (the chaos hook behind [`StationFault`]).
struct FaultingBoundary<'a> {
    inner: Box<dyn RegistrarBoundary + 'a>,
    remaining: usize,
}

impl FaultingBoundary<'_> {
    fn tick(&mut self) -> Result<(), TripError> {
        if self.remaining == 0 {
            return Err(TripError::Boundary(
                "station connection lost (injected fault)".into(),
            ));
        }
        self.remaining -= 1;
        Ok(())
    }
}

impl RegistrarBoundary for FaultingBoundary<'_> {
    fn check_in(&mut self, voter: VoterId) -> Result<CheckInTicket, TripError> {
        self.tick()?;
        self.inner.check_in(voter)
    }

    fn print_envelopes(
        &mut self,
        jobs: &[PrintJob],
    ) -> Result<Vec<(Envelope, EnvelopeCommitment)>, TripError> {
        self.tick()?;
        self.inner.print_envelopes(jobs)
    }

    fn submit_envelopes(
        &mut self,
        commitments: Vec<EnvelopeCommitment>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_envelopes(commitments)
    }

    fn submit_checkouts(
        &mut self,
        checkouts: Vec<(CheckOutQr, NonceCoupon)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_checkouts(checkouts)
    }

    fn submit_envelope_groups(
        &mut self,
        groups: Vec<(u64, Vec<EnvelopeCommitment>)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_envelope_groups(groups)
    }

    fn submit_checkout_groups(
        &mut self,
        groups: Vec<(u64, Vec<(CheckOutQr, NonceCoupon)>)>,
    ) -> Result<IngestTicket, TripError> {
        self.tick()?;
        self.inner.submit_checkout_groups(groups)
    }

    fn sync(&mut self) -> Result<(), TripError> {
        self.tick()?;
        self.inner.sync()
    }

    fn sync_through(&mut self, sessions: u64) -> Result<(), TripError> {
        self.tick()?;
        self.inner.sync_through(sessions)
    }

    fn activation_sweep(&mut self, claims: &[ActivationClaim]) -> Result<(), TripError> {
        self.tick()?;
        self.inner.activation_sweep(claims)
    }

    fn registration_head(&mut self) -> Result<vg_ledger::TreeHead, TripError> {
        self.tick()?;
        self.inner.registration_head()
    }

    fn envelope_head(&mut self) -> Result<vg_ledger::TreeHead, TripError> {
        self.tick()?;
        self.inner.envelope_head()
    }
}

/// One delivered session, boxed: outcomes are large (credentials,
/// receipts, traces) and `Done` is tiny.
type SessionDelivery = Box<(RegistrationOutcome, Option<Vsd>, Option<StolenCredential>)>;

enum StationMsg {
    Outcome(usize, SessionDelivery),
    Done(usize, Result<(), TripError>),
}

/// How a station (or its refiller) reaches the registrar.
#[derive(Clone, Copy)]
enum Link<'a> {
    InProcess(HostCore<'a>),
    Tcp(std::net::SocketAddr),
}

struct StationJob<'a> {
    fleet: &'a KioskFleet,
    kiosks: &'a [Kiosk],
    sessions: Vec<(usize, VoterId, usize)>,
    plans: Vec<(usize, vg_trip::pool::SessionPlan)>,
    authority_pk: vg_crypto::EdwardsPoint,
    activation: Option<&'a ActivationContext<'a>>,
    pipeline: PipelineConfig,
    fault_after: Option<usize>,
}

/// One station's whole day: connect, optionally spawn the refiller on its
/// own connection, and drive the generalized fleet engine.
fn run_station(
    mut job: StationJob<'_>,
    link: Link<'_>,
    worker: &WorkerClient,
    tx: &Sender<StationMsg>,
) -> Result<(), TripError> {
    let mut boundary: Box<dyn RegistrarBoundary + '_> = match link {
        Link::InProcess(core) => Box::new(ServiceBoundary::new(PipelinedEndpoint {
            core,
            worker: worker.clone(),
        })),
        Link::Tcp(addr) => Box::new(ServiceBoundary::new(
            TcpClient::connect(addr).map_err(|e| TripError::Boundary(e.to_string()))?,
        )),
    };
    if let Some(after_ops) = job.fault_after {
        boundary = Box::new(FaultingBoundary {
            inner: boundary,
            remaining: after_ops,
        });
    }
    let activation = job
        .activation
        .map(|ctx| (ctx, job.pipeline.activation_lag.max(1)));
    let mut sink = |idx: usize,
                    outcome: RegistrationOutcome,
                    vsd: Option<Vsd>,
                    stolen: Option<StolenCredential>| {
        let _ = tx.send(StationMsg::Outcome(idx, Box::new((outcome, vsd, stolen))));
    };
    // The indexed plan is only needed by the pool; move it rather than
    // cloning megabytes of SessionPlans per station (and per recovery).
    let plans = std::mem::take(&mut job.plans);
    if job.pipeline.low_water > 0 {
        let mut pool = job.fleet.prepare_pool_indexed(job.authority_pk, plans);
        let feed = PoolFeed::new(job.pipeline.low_water);
        let threads = job.fleet.config().threads;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The refiller owns its own print client: a second
                // connection for TCP days, direct printer calls locally.
                let result = match link {
                    Link::InProcess(core) => feed.run_refiller(&mut pool, &mut |jobs| {
                        Ok(par_map(jobs, threads, |j| {
                            core.printer.print_detached(j.challenge, j.symbol)
                        }))
                    }),
                    Link::Tcp(addr) => match TcpClient::connect(addr) {
                        Ok(mut client) => feed.run_refiller(&mut pool, &mut |jobs| {
                            client
                                .print_envelopes(PrintRequest {
                                    jobs: jobs.to_vec(),
                                })
                                .map(|r| r.envelopes)
                                .map_err(ServiceError::into_trip)
                        }),
                        Err(e) => Err(TripError::Boundary(e.to_string())),
                    },
                };
                // A refiller failure reaches the consumer through the
                // feed; nothing further to do here.
                let _ = result;
            });
            let run = job.fleet.run_station_over(
                job.kiosks,
                &mut *boundary,
                &job.sessions,
                &mut FeedSource { feed: &feed },
                activation,
                &mut sink,
            );
            feed.close();
            run
        })
    } else {
        let mut pool = job.fleet.prepare_pool_indexed(job.authority_pk, plans);
        job.fleet.run_station_over(
            job.kiosks,
            &mut *boundary,
            &job.sessions,
            &mut PoolSource { pool: &mut pool },
            activation,
            &mut sink,
        )
    }
}

// ---------------------------------------------------------------------------
// The whole pipelined day
// ---------------------------------------------------------------------------

/// [`register_day`](crate::register_day) on the pipelined engine:
/// background refillers, the server-side ingest worker, and one
/// connection per polling station. Outcomes stream to `sink` in global
/// queue order; ledgers are bit-identical to the sequential reference for
/// any [`PipelineConfig`].
pub fn pipelined_register_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    pipeline: PipelineConfig,
    mut sink: impl FnMut(RegistrationOutcome),
) -> Result<DayStats, TripError> {
    run_pipelined_day(
        fleet,
        system,
        plan,
        transport,
        pipeline,
        false,
        None,
        &mut |_, outcome, _| sink(outcome),
    )
}

/// [`register_and_activate_day`](crate::register_and_activate_day) on the
/// pipelined engine (see [`pipelined_register_day`]); activation runs in
/// groups of [`PipelineConfig::activation_lag`] windows behind shared
/// prefix barriers.
pub fn pipelined_register_and_activate_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    pipeline: PipelineConfig,
    sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    pipelined_register_and_activate_day_with_fault(
        fleet, system, plan, transport, pipeline, None, sink,
    )
}

/// [`pipelined_register_and_activate_day`] with an optional injected
/// station fault: the faulted station's connection dies mid-day and the
/// coordinator re-runs its undelivered sessions on a fresh recovery
/// connection — the failover path the adversarial tests exercise.
pub fn pipelined_register_and_activate_day_with_fault(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    pipeline: PipelineConfig,
    fault: Option<StationFault>,
    mut sink: impl FnMut(RegistrationOutcome, Vsd),
) -> Result<DayStats, TripError> {
    run_pipelined_day(
        fleet,
        system,
        plan,
        transport,
        pipeline,
        true,
        fault,
        &mut |_, outcome, vsd| sink(outcome, vsd.unwrap_or_default()),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_pipelined_day(
    fleet: &KioskFleet,
    system: &mut TripSystem,
    plan: &[(VoterId, usize)],
    transport: Transport,
    pipeline: PipelineConfig,
    activate: bool,
    fault: Option<StationFault>,
    sink: &mut dyn FnMut(usize, RegistrationOutcome, Option<Vsd>),
) -> Result<DayStats, TripError> {
    let authority_pk = system.authority.public_key;
    let printer_registry = system.printer_registry.clone();
    let last_occurrence = last_occurrence_of(plan);
    let total_sessions = plan.len();
    let TripSystem {
        officials,
        printers,
        ledger,
        kiosks,
        kiosk_registry,
        adversary_loot,
        ..
    } = system;
    let official = &officials[0];
    let core = HostCore {
        official,
        printer: &printers[0],
        kiosk_registry,
        threads: fleet.config().threads,
    };
    let ctx = ActivationContext {
        authority_pk: &authority_pk,
        printer_registry: &printer_registry,
        last_occurrence: &last_occurrence,
    };
    let station_plans = partition_stations(plan, kiosks, pipeline.stations);

    // The worker channel + progress exist before any thread.
    let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
    let progress = IngestProgress::new();
    let worker_client = WorkerClient {
        tx: cmd_tx,
        progress: progress.clone(),
    };

    // TCP: bind before the scope so stations can connect immediately.
    let listener = match transport {
        Transport::InProcess => None,
        Transport::Tcp => Some(
            TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| TripError::Boundary(format!("bind: {e}")))?,
        ),
    };
    let addr = listener
        .as_ref()
        .map(|l| l.local_addr())
        .transpose()
        .map_err(|e| TripError::Boundary(format!("local_addr: {e}")))?;
    let accepting = AtomicBool::new(true);

    let worker = IngestWorker {
        ledger,
        official,
        threads: core.threads,
        mode: pipeline.ingest,
        env: Lane::new(),
        reg: Lane::new(),
        parked: Vec::new(),
        failed: None,
        next_ticket: 0,
        progress,
        busy: Duration::ZERO,
        idle: Duration::ZERO,
    };

    std::thread::scope(|scope| -> Result<DayStats, TripError> {
        scope.spawn(move || worker.run(cmd_rx));

        // Acceptor: serve every incoming connection (stations, refiller
        // clients, recovery, and finally the wake-up connection that
        // carries the stop flag) on its own handler thread.
        if let Some(listener) = &listener {
            let handler_client = worker_client.clone();
            let accepting = &accepting;
            scope.spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    let worker = handler_client.clone();
                    scope.spawn(move || {
                        let _ = serve_station_conn(stream, core, worker);
                    });
                    if !accepting.load(Ordering::SeqCst) {
                        break;
                    }
                }
            });
        }

        let link = match addr {
            Some(addr) => Link::Tcp(addr),
            None => Link::InProcess(core),
        };

        let (msg_tx, msg_rx) = mpsc::channel::<StationMsg>();
        let mut spawned = 0usize;
        for sp in &station_plans {
            let job = StationJob {
                fleet,
                kiosks,
                sessions: sp.sessions.clone(),
                plans: sp.plans.clone(),
                authority_pk,
                activation: activate.then_some(&ctx),
                pipeline,
                fault_after: fault
                    .filter(|f| f.station == sp.station)
                    .map(|f| f.after_ops),
            };
            let tx = msg_tx.clone();
            let worker = worker_client.clone();
            let station_id = sp.station;
            scope.spawn(move || {
                let result = run_station(job, link, &worker, &tx);
                let _ = tx.send(StationMsg::Done(station_id, result));
            });
            spawned += 1;
        }

        // Coordinator: release outcomes in global session order, push
        // adversary loot in that same order, and re-run a dead station's
        // undelivered sessions on a fresh recovery connection. Runs as an
        // immediately-invoked closure so EVERY exit path — including the
        // error returns — falls through to the acceptor wake-up below;
        // returning early from the scope with the acceptor still parked
        // in accept() would deadlock the scope join.
        let coordinate = || -> Result<DayStats, TripError> {
            let mut next_emit = 0usize;
            let mut buffered: BTreeMap<usize, SessionDelivery> = BTreeMap::new();
            let mut done = 0usize;
            let mut recovered: HashSet<usize> = HashSet::new();
            let mut first_error: Option<TripError> = None;
            while done < spawned {
                let Ok(msg) = msg_rx.recv() else { break };
                match msg {
                    StationMsg::Outcome(idx, delivery) => {
                        buffered.entry(idx).or_insert(delivery);
                        while let Some(delivery) = buffered.remove(&next_emit) {
                            let (outcome, vsd, stolen) = *delivery;
                            if let Some(looted) = stolen {
                                adversary_loot.push(looted);
                            }
                            sink(next_emit, outcome, vsd);
                            next_emit += 1;
                        }
                    }
                    StationMsg::Done(_, Ok(())) => done += 1,
                    StationMsg::Done(station, Err(e)) => {
                        done += 1;
                        let recoverable = station < station_plans.len()
                            && recovered.insert(station)
                            && first_error.is_none();
                        if recoverable {
                            // Undelivered = not yet emitted and not buffered.
                            let sp = &station_plans[station];
                            let remaining: Vec<usize> = sp
                                .sessions
                                .iter()
                                .map(|&(idx, _, _)| idx)
                                .filter(|idx| *idx >= next_emit && !buffered.contains_key(idx))
                                .collect();
                            if remaining.is_empty() {
                                continue;
                            }
                            let keep: HashSet<usize> = remaining.iter().copied().collect();
                            let job = StationJob {
                                fleet,
                                kiosks,
                                sessions: sp
                                    .sessions
                                    .iter()
                                    .filter(|(idx, _, _)| keep.contains(idx))
                                    .copied()
                                    .collect(),
                                plans: sp
                                    .plans
                                    .iter()
                                    .filter(|(idx, _)| keep.contains(idx))
                                    .copied()
                                    .collect(),
                                authority_pk,
                                activation: activate.then_some(&ctx),
                                pipeline,
                                // Kill-during-failover chaos hook: the
                                // recovery connection itself can be
                                // faulted. A dead recovery is
                                // unrecoverable (the station is already
                                // in `recovered`), so the day aborts.
                                fault_after: fault
                                    .filter(|f| f.station == station)
                                    .and_then(|f| f.recovery_after_ops),
                            };
                            let tx = msg_tx.clone();
                            let worker = worker_client.clone();
                            let recovery_id = station_plans.len() + station;
                            scope.spawn(move || {
                                let result = run_station(job, link, &worker, &tx);
                                let _ = tx.send(StationMsg::Done(recovery_id, result));
                            });
                            spawned += 1;
                        } else {
                            // Unrecoverable: remember the first error and
                            // fail every parked barrier so blocked stations
                            // unwind instead of deadlocking the scope join.
                            first_error.get_or_insert(e);
                            worker_client.abort();
                        }
                    }
                }
            }
            drop(msg_tx);

            if let Some(e) = first_error {
                return Err(e);
            }
            if next_emit != total_sessions {
                return Err(TripError::Boundary(format!(
                    "day ended with {next_emit}/{total_sessions} sessions delivered"
                )));
            }

            // Final barrier + telemetry straight over the worker channel.
            worker_client
                .call(Cmd::SyncAll)
                .map_err(ServiceError::into_trip)?;
            let ingest = worker_client
                .stats()
                .map_err(|e| TripError::Boundary(e.to_string()))?;
            Ok(DayStats { ingest })
        };
        let result = coordinate();

        // Wake the acceptor so it observes the stop flag and exits — on
        // success AND failure alike (see the coordinator comment).
        accepting.store(false, Ordering::SeqCst);
        if let Some(addr) = addr {
            drop(TcpStream::connect(addr));
        }
        drop(worker_client);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::{HmacDrbg, Rng};
    use vg_trip::setup::TripConfig;

    /// A worker over a real ledger: handles resolve by poll/wait while
    /// the reorder buffer restores cross-station submission order.
    #[test]
    fn ingest_handles_resolve_in_global_order() {
        let mut rng = HmacDrbg::from_u64(9);
        let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);
        let printer = EnvelopePrinter::new(&mut rng);
        let TripSystem {
            officials, ledger, ..
        } = &mut system;
        let commitment = |i: u64| {
            let mut r = HmacDrbg::from_u64(i);
            printer
                .print_detached(r.scalar(), vg_trip::materials::Symbol::Star)
                .1
        };

        let (cmd_tx, cmd_rx) = mpsc::channel();
        let progress = IngestProgress::new();
        let client = WorkerClient {
            tx: cmd_tx,
            progress: progress.clone(),
        };
        std::thread::scope(|scope| {
            let worker = IngestWorker {
                ledger,
                official: &officials[0],
                threads: 1,
                mode: IngestMode::Background,
                env: Lane::new(),
                reg: Lane::new(),
                parked: Vec::new(),
                failed: None,
                next_ticket: 0,
                progress,
                busy: Duration::ZERO,
                idle: Duration::ZERO,
            };
            scope.spawn(move || worker.run(cmd_rx));

            // Session 1 arrives before session 0: its handle must stay
            // pending (the registration lane gates admitted_through too,
            // so we drive both lanes).
            let (_, h1) = client
                .submit_envelopes(vec![(1, vec![commitment(1)])])
                .unwrap();
            assert!(h1.poll().is_none(), "gap: session 0 missing");
            let (_, h0) = client
                .submit_envelopes(vec![(0, vec![commitment(0)])])
                .unwrap();
            // Registration lane: both sessions' records are required
            // before the global prefix counts as admitted. An empty
            // record group per session keeps the lane's bookkeeping
            // moving without real check-out material.
            client
                .submit_records(vec![(0, vec![]), (1, vec![])])
                .unwrap();
            // Two pending commitments sit below the idle-sweep floor, so
            // drive the sweep with a prefix barrier — exactly what a
            // station's activation group does.
            client
                .call(|reply| Cmd::SyncThrough(2, reply))
                .expect("prefix barrier");
            h0.wait().expect("prefix admitted");
            h1.wait().expect("prefix admitted");
            assert_eq!(h1.poll(), Some(Ok(())));
            // Duplicate (failover-style) resubmission is dropped, not
            // double-admitted.
            let (_, dup) = client
                .submit_envelopes(vec![(0, vec![commitment(0)])])
                .unwrap();
            dup.wait().expect("already admitted");
            let stats = client.stats().unwrap();
            assert!(stats.env_batches > 0);
            drop(client);
        });
        assert!(system.ledger.envelopes.committed_count() >= 2);
    }
}
