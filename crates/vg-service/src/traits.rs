//! The four registrar service traits: the typed RPC surface of a TRIP
//! deployment, one trait per paper role.
//!
//! | Service | Paper role | Machine |
//! |---|---|---|
//! | [`RegistrarService`] | registration officials' desks (Figs 8, 10) | registrar |
//! | [`LedgerIngestService`] | the public bulletin board's admission front-end | ledger operator |
//! | [`PrintService`] | envelope printers (Fig 7 line 5) | print room |
//! | [`ActivationService`] | the ledger-facing half of activation (Fig 11 lines 9–11) | registrar |
//!
//! Implementations: `RegistrarHost` serves all four in-process;
//! `TcpClient` speaks them over a framed socket. The fleet consumes them
//! bundled as a [`RegistrarEndpoint`] through the `ServiceBoundary`
//! adapter.

use crate::error::ServiceError;
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, IngestReceipt, IngestStatsReply, LedgerHeads,
    PrintRequest, PrintResponse, SeqCheckOutRequest, SeqEnvelopeSubmitRequest,
};

/// The registration officials' desk service.
///
/// # Trust assumptions
///
/// Trusted to apply the roster at check-in and Fig 10's verification rules
/// at check-out; it holds the official's signing key and the shared MAC
/// secret `s_rk`. It is **not** trusted with voter privacy beyond what the
/// paper grants the registrar: everything it sees (check-out QRs, records)
/// is also on the public ledger or visible at the desk. A compromised
/// implementation can deny service or register ineligible voters — both
/// publicly auditable against the roster — but cannot forge a voter's
/// credential tag without the kiosk signature chain.
pub trait RegistrarService {
    /// Check-in (Fig 8): authenticates the voter, issues a session ticket.
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError>;

    /// Batched check-out (Fig 10): verifies kiosk signatures, countersigns
    /// from the supplied coupons, and queues the records for L_R
    /// admission. The returned ticket resolves by the next
    /// [`LedgerIngestService::sync`].
    fn check_out_batch(
        &mut self,
        req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError>;

    /// Session-tagged batched check-out from one polling station. A
    /// single-connection host may flatten to
    /// [`RegistrarService::check_out_batch`] (the default — submissions
    /// arrive pre-ordered there); a multi-station registrar uses the
    /// global indices to restore queue order before admission.
    fn check_out_groups(
        &mut self,
        req: SeqCheckOutRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        self.check_out_batch(CheckOutBatchRequest {
            checkouts: req.groups.into_iter().flat_map(|(_, c)| c).collect(),
        })
    }
}

/// The bulletin board's asynchronous admission front-end.
///
/// # Trust assumptions
///
/// Runs with the ledger operator's signing key. Submissions are **ordered
/// and coalesced**: in-flight batches may be folded into one
/// random-linear-combination admission sweep, but always admit in
/// submission order — the signed tree heads any auditor checks are
/// therefore bit-identical to a synchronous, batch-at-a-time ledger. A
/// compromised implementation is exactly a compromised ledger operator:
/// it can withhold or reorder *pending* submissions (detectable by the
/// submitting registrar at `sync`) but cannot rewrite admitted history
/// without breaking the Merkle consistency proofs.
///
/// # Commit-point contract
///
/// On a durable ledger backend every barrier in this trait is also a
/// *durability* barrier. When [`LedgerIngestService::sync`],
/// [`LedgerIngestService::sync_through`] or
/// [`LedgerIngestService::ledger_heads`] returns `Ok`, everything the
/// barrier covers has been appended to the write-ahead log,
/// group-fsynced (when fsync is enabled), and covered by a persisted
/// signed tree head — in that order, records strictly before the head
/// that commits them. A crash after the barrier returns loses nothing
/// it covered: reopening the store replays the WAL back to the same
/// heads, bit-identically. Receipts from
/// [`LedgerIngestService::submit_envelopes`] alone promise ordering,
/// not durability; durability attaches at the next barrier (or, on the
/// pipelined host, when the covering `IngestHandle` resolves — its
/// `wait` documents the same contract per ingest mode).
pub trait LedgerIngestService {
    /// Queues a window's envelope commitments for L_E admission.
    fn submit_envelopes(
        &mut self,
        req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError>;

    /// Barrier: drives every queued submission (envelopes *and* check-out
    /// records) to admission, surfacing the earliest failure.
    fn sync(&mut self) -> Result<(), ServiceError>;

    /// Signed tree heads of L_R and L_E (implies a sync).
    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError>;

    /// Session-tagged envelope submission from one polling station
    /// (ordering contract as [`RegistrarService::check_out_groups`];
    /// default flattens for single-connection hosts).
    fn submit_envelope_groups(
        &mut self,
        req: SeqEnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        self.submit_envelopes(crate::messages::EnvelopeSubmitRequest {
            commitments: req.groups.into_iter().flat_map(|(_, g)| g).collect(),
        })
    }

    /// Prefix barrier: returns once every session with global index below
    /// `sessions` is admitted on both ledgers. On a single-connection
    /// host the whole queue is the prefix, so the default full
    /// [`LedgerIngestService::sync`] is equivalent.
    fn sync_through(&mut self, sessions: u64) -> Result<(), ServiceError> {
        let _ = sessions;
        self.sync()
    }

    /// Coalescing and worker-utilization telemetry (see
    /// [`IngestStatsReply`]); hosts without an ingest worker report zero
    /// busy/idle time.
    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        Ok(IngestStatsReply::default())
    }
}

/// The envelope print service.
///
/// # Trust assumptions
///
/// Holds a printer signing key from the printer registry. The paper
/// trusts printers not to leak or duplicate challenges (a duplicating
/// printer is caught by activation's duplicate-challenge detector,
/// Appendix F.3.5); this service additionally learns which challenges
/// belong to one refill batch, which the physical print room learns
/// anyway. It never sees credential keys or voter identities.
pub trait PrintService {
    /// Signs one envelope per job, in order, returning the envelopes with
    /// their not-yet-posted L_E commitments.
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError>;
}

/// The ledger-facing half of credential activation.
///
/// # Trust assumptions
///
/// Performs only Fig 11 lines 9–11: the L_R cross-check and the L_E
/// challenge reveal. The device-side checks (lines 2–8) — and the
/// credential *secret* — stay on the voter's device; this service learns
/// exactly what the public ledger learns at activation (which challenges
/// were revealed, and the aggregate activation count the coercion
/// adversary is allowed to see, Appendix F.1). It cannot distinguish real
/// from fake credentials, by design.
pub trait ActivationService {
    /// Runs the ledger phase for a batch of claims, in order, stopping at
    /// the first failure exactly as a sequential activation loop would.
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError>;
}

/// Everything the fleet coordinator needs, as one bundle.
pub trait RegistrarEndpoint:
    RegistrarService + LedgerIngestService + PrintService + ActivationService
{
}

impl<T: RegistrarService + LedgerIngestService + PrintService + ActivationService> RegistrarEndpoint
    for T
{
}
