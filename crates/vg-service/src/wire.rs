//! The versioned wire format: canonical message bytes plus
//! length-prefixed framing.
//!
//! Every message body follows the `vg_crypto::codec` conventions — a
//! strict, injective encoding validated field by field on decode (points
//! decompressed, scalars canonical, lengths bounded, no trailing bytes).
//! A complete wire message is
//!
//! ```text
//!   MAGIC "VGRS" (4) ‖ VERSION u16 ‖ TAG u16 ‖ body…
//! ```
//!
//! and travels inside a frame of `u32 length ‖ message`, so the socket
//! loop can recover message boundaries without parsing bodies. Unknown
//! versions and implausible lengths are rejected before any body decoding
//! happens.

use std::io::{Read, Write};

use vg_crypto::codec::Reader;
use vg_crypto::CryptoError;

use crate::error::ServiceError;

/// The wire magic: identifies a Votegral registrar service stream.
pub const MAGIC: [u8; 4] = *b"VGRS";

/// The wire protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Hard ceiling on a single frame (64 MiB). A registration window of
/// thousands of sessions stays far below this; anything larger is a
/// protocol violation or an attack.
pub const MAX_FRAME: usize = 64 << 20;

/// A type with a canonical body encoding under the shared codec rules.
pub trait Wire: Sized {
    /// Appends the canonical encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes and validates from a reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError>;

    /// The full encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes from a complete buffer, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Encodes `Vec<T>` as a length-prefixed sequence.
impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        vg_crypto::codec::put_len(buf, self.len());
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let n = r.len_prefix()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Wraps a tagged message body in the versioned envelope.
pub fn seal(tag: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Opens a versioned envelope, returning `(tag, body reader)`.
pub fn unseal(msg: &[u8]) -> Result<(u16, Reader<'_>), CryptoError> {
    let mut r = Reader::new(msg);
    if r.take(4)? != MAGIC {
        return Err(CryptoError::Malformed("bad wire magic"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CryptoError::Malformed("unsupported wire version"));
    }
    let tag = r.u16()?;
    Ok((tag, r))
}

/// Writes one `u32 length ‖ message` frame.
pub fn write_frame(w: &mut impl Write, msg: &[u8]) -> Result<(), ServiceError> {
    if msg.len() > MAX_FRAME {
        return Err(ServiceError::Transport("frame exceeds MAX_FRAME".into()));
    }
    w.write_all(&(msg.len() as u32).to_le_bytes())?;
    w.write_all(msg)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServiceError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ServiceError::Transport("oversized frame".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let msg = seal(7, b"payload");
        let (tag, mut r) = unseal(&msg).expect("opens");
        assert_eq!(tag, 7);
        assert_eq!(r.take(7).unwrap(), b"payload");
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut msg = seal(1, b"");
        msg[0] ^= 0xff;
        assert!(unseal(&msg).is_err());
        let mut msg = seal(1, b"");
        msg[4] = 0xee; // version
        assert!(unseal(&msg).is_err());
    }

    #[test]
    fn frame_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        // An adversarial length prefix is refused before allocation of
        // anything larger than MAX_FRAME.
        let mut evil = Vec::new();
        evil.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(evil);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
