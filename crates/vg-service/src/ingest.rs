//! The asynchronous ledger ingestion queue.
//!
//! Ledger admission is the coordinator-side cost the service layer can
//! hide: instead of posting every fleet window synchronously, submissions
//! enter a FIFO queue and are driven to admission at the next barrier —
//! coalescing however many windows are in flight into **one**
//! RLC-folded admission sweep (one weight derivation, one Pippenger
//! multi-scalar multiplication, one signed-head refresh instead of one
//! per window).
//!
//! # Equivalence
//!
//! Coalescing is invisible to auditors: a Merkle root depends only on the
//! record sequence, and both sub-ledgers' batch admission appends in
//! submission order, so `flush(post)` over `[A, B]` and `post(A);
//! post(B)` produce identical tree heads. Error semantics are preserved
//! by the fallback: if the coalesced sweep rejects, every submission is
//! re-posted individually in order, so the earliest offending submission
//! surfaces with its precise error and earlier submissions still land —
//! exactly as the synchronous reference would have behaved.

use std::ops::Range;

use vg_ledger::LedgerError;

use crate::error::ServiceError;

/// Why a submission was not queued.
///
/// The queue's capacity bound is a **backpressure contract**, not a silent
/// drop: a submission that would push the pending-record count past the
/// cap is refused with [`IngestError::Backpressure`], and the submitter
/// (or the host owning the queue) must flush before retrying. The
/// `RegistrarHost` and the pipelined ingest worker both handle this by
/// flushing and retrying — i.e. the RPC caller blocks for one admission
/// sweep instead of the server buffering without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The queue is at capacity; flush before resubmitting.
    Backpressure {
        /// Records already pending.
        pending: usize,
        /// The configured ceiling.
        capacity: usize,
    },
}

impl core::fmt::Display for IngestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IngestError::Backpressure { pending, capacity } => write!(
                f,
                "ingest backpressure: {pending} records pending of {capacity} capacity"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// A FIFO of pending record batches awaiting one coalesced admission.
pub struct IngestQueue<R> {
    pending: Vec<(u64, Vec<R>)>,
    next_ticket: u64,
    capacity: usize,
    /// Count of individually-admitted batches (telemetry).
    flushed_batches: u64,
    /// Count of flush calls that did real work (telemetry: the coalescing
    /// ratio is `flushed_batches / sweeps`).
    sweeps: u64,
}

impl<R> Default for IngestQueue<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> IngestQueue<R> {
    /// An unbounded queue (capacity `usize::MAX`).
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A queue refusing submissions once `capacity` records are pending
    /// (see [`IngestError::Backpressure`]). An empty queue always accepts
    /// one submission of any size, so a single oversized batch cannot
    /// livelock its submitter.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            pending: Vec::new(),
            next_ticket: 0,
            capacity: capacity.max(1),
            flushed_batches: 0,
            sweeps: 0,
        }
    }

    /// The configured pending-record ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<R: Clone> IngestQueue<R> {
    /// Queues a batch, returning its ticket. Tickets resolve in order at
    /// the next [`IngestQueue::flush`]. A non-empty queue refuses batches
    /// that would exceed the capacity, handing the untouched batch back
    /// alongside the typed [`IngestError::Backpressure`] so the submitter
    /// can flush and resubmit without cloning.
    #[allow(clippy::result_large_err)]
    pub fn submit(&mut self, records: Vec<R>) -> Result<u64, (IngestError, Vec<R>)> {
        let pending = self.pending_records();
        if !self.pending.is_empty() && pending + records.len() > self.capacity {
            return Err((
                IngestError::Backpressure {
                    pending,
                    capacity: self.capacity,
                },
                records,
            ));
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        if !records.is_empty() {
            self.pending.push((ticket, records));
        }
        Ok(ticket)
    }

    /// Records queued but not yet admitted.
    pub fn pending_records(&self) -> usize {
        self.pending.iter().map(|(_, r)| r.len()).sum()
    }

    /// `(batches admitted, admission sweeps run)` so far — the coalescing
    /// win is the ratio between them.
    pub fn stats(&self) -> (u64, u64) {
        (self.flushed_batches, self.sweeps)
    }

    /// Drives everything pending to admission through `post` (the
    /// ledger's batched admission entry point). One coalesced call on the
    /// happy path; ordered per-submission fallback on rejection (see the
    /// module docs).
    pub fn flush(
        &mut self,
        mut post: impl FnMut(Vec<R>) -> Result<Range<usize>, LedgerError>,
    ) -> Result<(), LedgerError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut pending = std::mem::take(&mut self.pending);
        self.sweeps += 1;
        if pending.len() == 1 {
            if let Some((_, records)) = pending.pop() {
                post(records)?;
                self.flushed_batches += 1;
            }
            return Ok(());
        }
        let coalesced: Vec<R> = pending
            .iter()
            .flat_map(|(_, records)| records.iter().cloned())
            .collect();
        let batches = pending.len() as u64;
        if post(coalesced).is_ok() {
            self.flushed_batches += batches;
            return Ok(());
        }
        // The coalesced sweep rejected: re-post per submission, in order,
        // to attribute the failure and keep earlier submissions admitted.
        for (_, records) in pending {
            post(records)?;
            self.flushed_batches += 1;
        }
        // Every submission passed individually — a negligible-probability
        // RLC artifact; per-batch acceptance is authoritative.
        Ok(())
    }
}

/// Bound on flush-and-retry attempts before a backpressured submission
/// gives up with the typed [`ServiceError::Ingest`] error.
///
/// A single retry is *not* enough: with concurrent producers (multiple
/// station connections, multiple ingest workers) another producer can
/// refill the queue between the flush and the resubmission, refusing the
/// retry again — and the old single-retry path then reported an opaque
/// transport error while the batch was dropped on the floor. Eight
/// attempts means a submitter only gives up after the queue has been
/// drained and refilled from under it eight times in a row, at which
/// point the system is genuinely saturated and the typed give-up is the
/// honest answer.
pub const BACKPRESSURE_RETRIES: usize = 8;

/// Submits `records`, responding to [`IngestError::Backpressure`] with a
/// bounded flush-and-retry loop: each refusal runs `flush` (an admission
/// sweep over everything pending) and resubmits the refused batch.
///
/// Returns the submission ticket on success. After
/// [`BACKPRESSURE_RETRIES`] refusals the *final* refusal is returned as
/// [`ServiceError::Ingest`] — a typed give-up instead of a silent drop —
/// and flush errors (admission failures) propagate immediately with their
/// own typed variants.
pub fn submit_with_retry<R: Clone>(
    queue: &mut IngestQueue<R>,
    mut records: Vec<R>,
    mut flush: impl FnMut(&mut IngestQueue<R>) -> Result<(), ServiceError>,
) -> Result<u64, ServiceError> {
    let mut attempts = 0;
    loop {
        match queue.submit(records) {
            Ok(ticket) => return Ok(ticket),
            Err((err, refused)) => {
                attempts += 1;
                if attempts >= BACKPRESSURE_RETRIES {
                    return Err(ServiceError::Ingest(err));
                }
                records = refused;
                flush(queue)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_coalesces_in_order() {
        let mut q: IngestQueue<u32> = IngestQueue::new();
        assert_eq!(q.submit(vec![1, 2]), Ok(0));
        assert_eq!(q.submit(vec![]), Ok(1));
        assert_eq!(q.submit(vec![3]), Ok(2));
        assert_eq!(q.pending_records(), 3);
        let mut seen = Vec::new();
        q.flush(|records| {
            let start = seen.len();
            seen.extend(records);
            Ok(start..seen.len())
        })
        .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.pending_records(), 0);
        // Two non-empty batches in one sweep.
        assert_eq!(q.stats(), (2, 1));
    }

    #[test]
    fn capped_queue_applies_backpressure_then_recovers() {
        let mut q: IngestQueue<u32> = IngestQueue::with_capacity(3);
        q.submit(vec![1, 2]).expect("under cap");
        // Third record still fits exactly; the fourth must be refused
        // with the typed error, not dropped or buffered past the cap.
        q.submit(vec![3]).expect("at cap");
        let (err, refused) = q.submit(vec![4]).expect_err("over cap");
        assert_eq!(
            err,
            IngestError::Backpressure {
                pending: 3,
                capacity: 3,
            }
        );
        // The refused batch comes back untouched for the retry.
        assert_eq!(refused, vec![4]);
        // The refused submission consumed no ticket and left the queue
        // intact.
        assert_eq!(q.pending_records(), 3);
        let mut seen = Vec::new();
        q.flush(|records| {
            let start = seen.len();
            seen.extend(records);
            Ok(start..seen.len())
        })
        .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        // After the flush the submitter's retry succeeds.
        q.submit(vec![4]).expect("accepted after flush");
        assert_eq!(q.pending_records(), 1);
    }

    #[test]
    fn empty_capped_queue_accepts_oversized_batch() {
        // One batch larger than the cap must not livelock: an empty queue
        // always accepts it, and the cap only defers *further* batches.
        let mut q: IngestQueue<u32> = IngestQueue::with_capacity(2);
        q.submit(vec![1, 2, 3, 4]).expect("oversized but empty");
        assert!(q.submit(vec![5]).is_err());
    }

    #[test]
    fn failed_coalesce_falls_back_per_submission() {
        let mut q: IngestQueue<u32> = IngestQueue::new();
        q.submit(vec![1]).unwrap();
        q.submit(vec![13]).unwrap(); // poison
        q.submit(vec![3]).unwrap();
        let mut admitted = Vec::new();
        let err = q.flush(|records| {
            if records.contains(&13) {
                return Err(LedgerError::NotOnRoster);
            }
            let start = admitted.len();
            admitted.extend(records);
            Ok(start..admitted.len())
        });
        assert_eq!(err, Err(LedgerError::NotOnRoster));
        // The submission before the poison still landed, in order.
        assert_eq!(admitted, vec![1]);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let mut q: IngestQueue<u32> = IngestQueue::new();
        q.flush(|_| unreachable!("nothing pending")).unwrap();
        assert_eq!(q.stats(), (0, 0));
    }

    /// Contention pin for the bounded-retry loop: a rival producer
    /// refills the queue after every flush, so the retry is refused
    /// again each round. The loop must keep flushing (bounded) and land
    /// the batch once the rival relents — the old single-retry path gave
    /// up (and dropped the batch) after one refill.
    #[test]
    fn retry_loop_survives_contending_producer() {
        let mut q: IngestQueue<u32> = IngestQueue::with_capacity(2);
        q.submit(vec![1, 2]).unwrap();
        let mut drained = Vec::new();
        let mut rival_rounds = 3;
        let ticket = submit_with_retry(&mut q, vec![9], |q| {
            q.flush(|records| {
                let start = drained.len();
                drained.extend(records);
                Ok(start..drained.len())
            })
            .map_err(ServiceError::from)?;
            // A rival connection refills to the cap before the retry
            // lands, for the first few rounds.
            if rival_rounds > 0 {
                rival_rounds -= 1;
                q.submit(vec![100 + rival_rounds, 200 + rival_rounds])
                    .unwrap();
            }
            Ok(())
        })
        .expect("lands once the rival relents");
        assert!(ticket > 0);
        // Nothing was dropped: every rival batch was flushed through and
        // the contended batch is pending.
        assert_eq!(drained, vec![1, 2, 102, 202, 101, 201, 100, 200]);
        assert_eq!(q.pending_records(), 1);
    }

    /// A rival that never relents: after [`BACKPRESSURE_RETRIES`]
    /// refusals the submitter gets the typed give-up carrying the final
    /// refusal, not a panic, a drop, or an untyped transport string.
    #[test]
    fn retry_loop_gives_up_typed_under_persistent_contention() {
        let mut q: IngestQueue<u32> = IngestQueue::with_capacity(2);
        q.submit(vec![1, 2]).unwrap();
        let mut flushes = 0;
        let err = submit_with_retry(&mut q, vec![9, 9], |q| {
            flushes += 1;
            q.flush(|_| Ok(0..0)).map_err(ServiceError::from)?;
            // The rival instantly refills to the cap, every time.
            q.submit(vec![7, 7]).unwrap();
            Ok(())
        })
        .expect_err("persistent contention must give up");
        assert_eq!(
            err,
            ServiceError::Ingest(IngestError::Backpressure {
                pending: 2,
                capacity: 2,
            })
        );
        assert_eq!(flushes, BACKPRESSURE_RETRIES - 1);
    }

    /// Admission failures inside the flush propagate immediately with
    /// their own typed variant; the retry loop must not mask them as
    /// backpressure give-ups.
    #[test]
    fn retry_loop_propagates_flush_errors() {
        let mut q: IngestQueue<u32> = IngestQueue::with_capacity(1);
        q.submit(vec![13]).unwrap();
        let err = submit_with_retry(&mut q, vec![9], |q| {
            q.flush(|_| Err(LedgerError::NotOnRoster))
                .map_err(ServiceError::from)?;
            Ok(())
        })
        .expect_err("flush failure surfaces");
        assert!(matches!(
            err,
            ServiceError::Trip(vg_trip::TripError::Ledger(LedgerError::NotOnRoster))
        ));
    }
}
