//! The multiplexed station gateway: a non-blocking acceptor that serves
//! every pipelined-day connection — stations, refillers, steal lanes —
//! on a small bounded pool of reactor threads instead of one thread per
//! connection.
//!
//! Each reactor owns a set of connections and drives them with a poll
//! loop: drain newly accepted connections from the intake, step every
//! connection's channel state machine (plaintext, or the server side of
//! the secure handshake frame by frame), decode at most a budgeted
//! number of frames per tick per connection, and hand decoded requests
//! to a `GatewayDispatch`. A dispatch may answer immediately or return
//! a *pending* poll closure (a request parked on the sequencer); while a
//! connection has a response in flight the reactor stops reading it —
//! that per-connection stop-and-wait is the gateway's backpressure, and
//! it composes with the ingest queue's own bounded-retry
//! [`backpressure`](crate::ingest::IngestError::Backpressure) contract.
//!
//! The reactor pool size is fixed (bounded by the deployment, not the
//! connection count), so a day with hundreds of station connections runs
//! on the same few threads as a day with four.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vg_crypto::channel::FrameSealer;

use crate::channel::{
    finish_server_handshake, pipe_pair, server_hello, ChannelPolicy, Connector, FramedChannel,
    PipeChannel, ServerHello,
};
use crate::error::ServiceError;
use crate::messages::{HandshakeFrame, Request, Response, SealedRecord};
use crate::wire::MAX_FRAME;

/// Frames decoded per connection per reactor tick. Keeps one chatty
/// connection from starving the rest of its reactor's set.
const FRAMES_PER_TICK: usize = 32;

/// Bytes read from a socket per syscall.
const READ_CHUNK: usize = 64 << 10;

/// Idle passes spent yielding before the reactor starts timer-sleeping.
/// A parked response usually resolves as soon as the sequencer thread
/// gets the core, so `yield_now` (one scheduler quantum) beats a timed
/// sleep, whose default Linux timer slack rounds even a 10 µs request
/// up to ~60 µs — a visible per-barrier tax on single-core hosts.
const IDLE_YIELDS: u32 = 64;

/// Idle backoff ceiling. Reactors sleep-with-doubling once the yield
/// budget is spent, so an idle gateway costs ~nothing on a small
/// machine.
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Default reap deadline for half-open and mid-frame-stalled
/// connections. A connection parked in a handshake state, or holding a
/// partial frame, that makes no progress for this long is torn down —
/// it can only be a dead or byzantine peer, and holding it open leaks a
/// reactor slot forever. Healthy idle connections (established channel,
/// empty read buffer, no pending response) are **never** reaped: an
/// idle station waiting out a quiet registration hour is liveness, not
/// a leak.
pub(crate) const REAP_AFTER: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------
// Non-blocking IO
// ---------------------------------------------------------------------

/// A non-blocking TCP connection with userspace read/write buffers and
/// `u32 length ‖ message` frame extraction.
pub(crate) struct TcpIo {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: VecDeque<u8>,
}

/// A served in-process pipe half (frames arrive whole; sends never
/// block).
pub(crate) struct PipeIo {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// One gateway-served connection's IO, link-agnostic.
pub(crate) enum GatewayIo {
    /// A loopback TCP connection.
    Tcp(TcpIo),
    /// An in-process pipe server half.
    Pipe(PipeIo),
}

impl GatewayIo {
    /// Wraps an accepted TCP stream (switches it to non-blocking).
    pub(crate) fn from_stream(stream: TcpStream) -> Result<Self, ServiceError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(GatewayIo::Tcp(TcpIo {
            stream,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
        }))
    }

    /// Wraps a dialed pipe's server half.
    pub(crate) fn from_pipe(pipe: PipeChannel) -> Self {
        let (tx, rx) = pipe.into_parts();
        GatewayIo::Pipe(PipeIo { tx, rx })
    }

    /// Pulls the next complete frame if one is available *now*.
    /// `Ok(None)` means no full frame yet; `Err` means the connection is
    /// gone (EOF, reset) or violated framing.
    fn try_read_frame(&mut self) -> Result<Option<Vec<u8>>, ServiceError> {
        match self {
            GatewayIo::Tcp(io) => {
                if let Some(frame) = io.extract_frame()? {
                    return Ok(Some(frame));
                }
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match io.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(ServiceError::Transport("peer closed connection".into()))
                        }
                        Ok(n) => {
                            io.rbuf.extend_from_slice(&chunk[..n]);
                            if let Some(frame) = io.extract_frame()? {
                                return Ok(Some(frame));
                            }
                            // A short read means the socket is drained.
                            if n < chunk.len() {
                                return Ok(None);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            GatewayIo::Pipe(io) => match io.rx.try_recv() {
                Ok(frame) => Ok(Some(frame)),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => {
                    Err(ServiceError::Transport("peer closed connection".into()))
                }
            },
        }
    }

    /// `true` when a partial frame sits in the read buffer: bytes
    /// arrived but the frame never completed. Pipes transfer whole
    /// frames, so they are never mid-frame.
    fn mid_frame(&self) -> bool {
        match self {
            GatewayIo::Tcp(io) => !io.rbuf.is_empty(),
            GatewayIo::Pipe(_) => false,
        }
    }

    /// Queues one frame for sending (pipes deliver immediately).
    fn queue_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        if frame.len() > MAX_FRAME {
            return Err(ServiceError::Transport("frame exceeds MAX_FRAME".into()));
        }
        match self {
            GatewayIo::Tcp(io) => {
                io.wbuf.extend(&(frame.len() as u32).to_le_bytes());
                io.wbuf.extend(frame.iter().copied());
                Ok(())
            }
            GatewayIo::Pipe(io) => io
                .tx
                .send(frame.to_vec())
                .map_err(|_| ServiceError::Transport("peer closed connection".into())),
        }
    }

    /// Pushes buffered bytes to the socket. Returns `true` when the
    /// write buffer is fully drained.
    fn flush(&mut self) -> Result<bool, ServiceError> {
        match self {
            GatewayIo::Tcp(io) => {
                while !io.wbuf.is_empty() {
                    let (head, _) = io.wbuf.as_slices();
                    match io.stream.write(head) {
                        Ok(0) => {
                            return Err(ServiceError::Transport("peer closed connection".into()))
                        }
                        Ok(n) => {
                            io.wbuf.drain(..n);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(true)
            }
            GatewayIo::Pipe(_) => Ok(true),
        }
    }
}

impl TcpIo {
    /// Extracts one complete frame from the read buffer, if present.
    fn extract_frame(&mut self) -> Result<Option<Vec<u8>>, ServiceError> {
        let Some(header) = self.rbuf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*header) as usize;
        if len > MAX_FRAME {
            return Err(ServiceError::Transport("oversized frame".into()));
        }
        if self.rbuf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.rbuf.drain(..4 + len).skip(4).collect();
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// The outcome of dispatching one request.
pub(crate) enum Dispatched {
    /// Answer now; keep serving the connection.
    Now(Response),
    /// Answer now, then close the connection once the response flushes
    /// (e.g. a station's `Shutdown`).
    CloseAfter(Response),
    /// The request is parked (typically on the sequencer). The reactor
    /// polls the closure each tick until it yields the response; the
    /// connection is not read meanwhile — strictly one request in flight
    /// per connection, which is the gateway's backpressure.
    Pending(Box<dyn FnMut() -> Option<Response> + Send>),
}

/// Maps decoded requests to responses for gateway-served connections.
/// One clone per reactor thread.
pub(crate) trait GatewayDispatch: Send {
    /// Handles one request. Must not block on other connections'
    /// progress — park on a [`Dispatched::Pending`] closure instead.
    fn dispatch(&mut self, req: Request) -> Dispatched;
}

// ---------------------------------------------------------------------
// Intake
// ---------------------------------------------------------------------

/// Round-robin distributor of accepted connections over the reactor
/// pool. Cloneable: the TCP acceptor and the in-process [`PipeHub`]
/// both feed the same intake.
#[derive(Clone)]
pub(crate) struct GatewayIntake {
    txs: Arc<Vec<Sender<GatewayIo>>>,
    next: Arc<AtomicUsize>,
}

impl GatewayIntake {
    /// Builds an intake feeding the given reactor inboxes.
    pub(crate) fn new(txs: Vec<Sender<GatewayIo>>) -> Self {
        Self {
            txs: Arc::new(txs),
            next: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Assigns a connection to the next reactor. Returns `false` when
    /// every reactor is gone (day teardown).
    pub(crate) fn push(&self, mut io: GatewayIo) -> bool {
        for _ in 0..self.txs.len() {
            let i = self.next.fetch_add(1, Ordering::Relaxed) % self.txs.len();
            match self.txs[i].send(io) {
                Ok(()) => return true,
                Err(e) => io = e.0,
            }
        }
        false
    }
}

/// Blocking TCP accept loop feeding the intake. Exits when `open`
/// clears (the coordinator wakes it with a throwaway connection) or the
/// listener/intake dies.
pub(crate) fn acceptor_loop(listener: TcpListener, open: Arc<AtomicBool>, intake: GatewayIntake) {
    while open.load(Ordering::Acquire) {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if !open.load(Ordering::Acquire) {
            break; // the wake-up connection; drop it unserved
        }
        match GatewayIo::from_stream(stream) {
            Ok(io) => {
                if !intake.push(io) {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
}

/// In-process connector onto the gateway: dialing builds a pipe, pushes
/// the server half straight into the reactor intake, and completes the
/// policy's client handshake over the client half. Cloneable so many
/// stations (and their refillers / steal lanes) can dial one gateway.
#[derive(Clone)]
pub(crate) struct PipeHub {
    intake: GatewayIntake,
    policy: ChannelPolicy,
}

impl PipeHub {
    /// Builds a hub dialing the given intake under the client `policy`.
    pub(crate) fn new(intake: GatewayIntake, policy: ChannelPolicy) -> Self {
        Self { intake, policy }
    }
}

impl Connector for PipeHub {
    fn connect(&self) -> Result<Box<dyn FramedChannel>, ServiceError> {
        let (client_half, server_half) = pipe_pair();
        if !self.intake.push(GatewayIo::from_pipe(server_half)) {
            return Err(ServiceError::Transport("pipe gateway is gone".into()));
        }
        self.policy.establish_client(Box::new(client_half))
    }
}

// ---------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------

/// Channel-layer state of one served connection.
enum ConnState {
    /// Plaintext frames are requests.
    Plain,
    /// Secure policy: waiting for the client's `Init`.
    AwaitInit,
    /// Sent our `Reply`; waiting for the client's `Fin`. Boxed: the
    /// half-done handshake dwarfs every other state and lives only for
    /// one round trip.
    AwaitFin(Box<ServerHello>),
    /// Handshake confirmed; frames are sealed records.
    Secure { tx: FrameSealer, rx: FrameSealer },
}

/// One served connection.
struct GatewayConn {
    io: GatewayIo,
    state: ConnState,
    /// An in-flight parked response; the connection is not read while
    /// this is set.
    pending: Option<Box<dyn FnMut() -> Option<Response> + Send>>,
    /// Close once the write buffer drains.
    closing: bool,
    /// When this connection entered a reapable condition (half-open
    /// handshake or mid-frame stall) without progress; cleared by any
    /// progress. See [`REAP_AFTER`].
    stalled_since: Option<Instant>,
}

enum Step {
    /// Made progress; keep going.
    Progress,
    /// Nothing to do on this connection right now.
    Idle,
    /// Drop the connection (peer gone, or fatal channel violation after
    /// any queued rejection flushes).
    Dead,
    /// Drop the connection: half-open or mid-frame with no progress past
    /// the reap deadline (counted separately from organic deaths).
    Reaped,
}

impl GatewayConn {
    fn new(io: GatewayIo, policy: &ChannelPolicy) -> Self {
        let state = match policy {
            ChannelPolicy::Plaintext => ConnState::Plain,
            ChannelPolicy::Secure(_) => ConnState::AwaitInit,
        };
        Self {
            io,
            state,
            pending: None,
            closing: false,
            stalled_since: None,
        }
    }

    /// `true` when this connection is in a state only a dead or
    /// byzantine peer would hold for long: a half-open handshake
    /// (accepted but never finished — the classic half-open flood), or a
    /// partial frame that stopped growing. Established idle channels are
    /// not reapable.
    fn reapable(&self) -> bool {
        matches!(self.state, ConnState::AwaitInit | ConnState::AwaitFin(_)) || self.io.mid_frame()
    }

    /// Sends a response, sealed when the channel is secure.
    fn queue_response(&mut self, resp: &Response) -> Result<(), ServiceError> {
        let wire = resp.to_wire();
        match &mut self.state {
            ConnState::Secure { tx, .. } => {
                let sealed = tx.seal(&wire);
                self.io
                    .queue_frame(&HandshakeFrame::Record(SealedRecord { sealed }).to_wire())
            }
            // Pre-handshake rejections and plaintext traffic go in the
            // clear (the peer has no keys yet).
            _ => self.io.queue_frame(&wire),
        }
    }

    /// Queues a typed rejection and marks the connection for close.
    fn reject(&mut self, e: ServiceError) {
        let _ = self.queue_response(&Response::Err(e));
        self.closing = true;
    }

    fn apply(&mut self, outcome: Dispatched) {
        match outcome {
            Dispatched::Now(resp) => {
                if self.queue_response(&resp).is_err() {
                    self.closing = true;
                }
            }
            Dispatched::CloseAfter(resp) => {
                let _ = self.queue_response(&resp);
                self.closing = true;
            }
            Dispatched::Pending(poll) => self.pending = Some(poll),
        }
    }

    /// Steps one received frame through the channel state machine.
    fn on_frame(
        &mut self,
        frame: Vec<u8>,
        policy: &ChannelPolicy,
        dispatch: &mut impl GatewayDispatch,
    ) {
        match &mut self.state {
            ConnState::Plain => match Request::from_wire(&frame) {
                Ok(req) => self.apply(dispatch.dispatch(req)),
                Err(_) if HandshakeFrame::is_channel_frame(&frame) => {
                    self.reject(ServiceError::HandshakeFailed(
                        "plaintext gateway received a secure-channel frame".into(),
                    ));
                }
                Err(e) => {
                    // One malformed frame answers typed and the
                    // connection lives on.
                    let _ = self.queue_response(&Response::Err(ServiceError::Transport(format!(
                        "bad request: {e}"
                    ))));
                }
            },
            ConnState::AwaitInit => {
                let ChannelPolicy::Secure(cfg) = policy else {
                    // Connections only enter AwaitInit under a secure
                    // policy; a mismatch means reactor state corruption,
                    // answered typed rather than by tearing the thread down.
                    self.reject(ServiceError::HandshakeFailed(
                        "channel policy changed mid-handshake".into(),
                    ));
                    return;
                };
                match HandshakeFrame::from_wire(&frame) {
                    Ok(HandshakeFrame::Init(init)) => match server_hello(&init, cfg) {
                        Ok(hello) => {
                            let reply = HandshakeFrame::Reply(hello.reply.clone()).to_wire();
                            if self.io.queue_frame(&reply).is_err() {
                                self.closing = true;
                                return;
                            }
                            self.state = ConnState::AwaitFin(Box::new(hello));
                        }
                        Err(e) => self.reject(e),
                    },
                    _ => self.reject(ServiceError::HandshakeFailed(
                        "secure gateway requires a handshake; peer sent something else".into(),
                    )),
                }
            }
            ConnState::AwaitFin(hello) => {
                let ChannelPolicy::Secure(cfg) = policy else {
                    self.reject(ServiceError::HandshakeFailed(
                        "channel policy changed mid-handshake".into(),
                    ));
                    return;
                };
                match HandshakeFrame::from_wire(&frame) {
                    Ok(HandshakeFrame::Fin(fin)) => {
                        match finish_server_handshake(hello, &fin, cfg) {
                            Ok(keys) => {
                                self.state = ConnState::Secure {
                                    tx: FrameSealer::new(keys.server_to_client),
                                    rx: FrameSealer::new(keys.client_to_server),
                                };
                            }
                            Err(e) => self.reject(e),
                        }
                    }
                    _ => self.reject(ServiceError::HandshakeFailed(
                        "expected handshake fin".into(),
                    )),
                }
            }
            ConnState::Secure { rx, .. } => match HandshakeFrame::from_wire(&frame) {
                Ok(HandshakeFrame::Record(rec)) => match rx.open(&rec.sealed) {
                    Ok(plain) => match Request::from_wire(&plain) {
                        Ok(req) => self.apply(dispatch.dispatch(req)),
                        Err(e) => {
                            let _ = self.queue_response(&Response::Err(ServiceError::Transport(
                                format!("bad request: {e}"),
                            )));
                        }
                    },
                    Err(e) => self.reject(ServiceError::Transport(format!(
                        "secure channel rejected a record: {e}"
                    ))),
                },
                _ => self.reject(ServiceError::HandshakeFailed(
                    "expected an encrypted record on an established channel".into(),
                )),
            },
        }
    }

    /// One reactor tick over this connection.
    fn tick(
        &mut self,
        policy: &ChannelPolicy,
        dispatch: &mut impl GatewayDispatch,
        reap_after: Duration,
    ) -> Step {
        let mut progressed = false;
        // 1. Poll an in-flight parked response.
        if let Some(poll) = &mut self.pending {
            if let Some(resp) = poll() {
                self.pending = None;
                self.apply(Dispatched::Now(resp));
                progressed = true;
            }
        }
        // 2. Read frames (unless closing or a response is in flight).
        if self.pending.is_none() && !self.closing {
            for _ in 0..FRAMES_PER_TICK {
                match self.io.try_read_frame() {
                    Ok(Some(frame)) => {
                        progressed = true;
                        self.on_frame(frame, policy, dispatch);
                        if self.pending.is_some() || self.closing {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return Step::Dead,
                }
            }
        }
        // 3. Flush writes; close once drained if marked.
        match self.io.flush() {
            Ok(true) if self.closing => Step::Dead,
            Ok(_) => {
                if progressed {
                    self.stalled_since = None;
                    Step::Progress
                } else if self.reapable() {
                    // 4. Liveness: a half-open or mid-frame connection
                    // that stays stuck past the deadline is torn down.
                    let since = *self.stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= reap_after {
                        Step::Reaped
                    } else {
                        Step::Idle
                    }
                } else {
                    self.stalled_since = None;
                    Step::Idle
                }
            }
            Err(_) => Step::Dead,
        }
    }
}

/// Serves connections from `inbox` until every connection has closed
/// and either the inbox disconnected or `open` cleared (connectors may
/// outlive the day's scope, so the coordinator signals teardown through
/// the flag rather than by dropping senders). One of these runs per
/// reactor-pool thread.
pub(crate) fn reactor_loop(
    inbox: Receiver<GatewayIo>,
    policy: ChannelPolicy,
    mut dispatch: impl GatewayDispatch,
    open: Arc<AtomicBool>,
    reap_after: Duration,
    reaped: Arc<AtomicU64>,
) {
    let mut conns: Vec<GatewayConn> = Vec::new();
    let mut idle_sleep = Duration::from_micros(10);
    let mut idle_passes = 0u32;
    loop {
        let mut progressed = false;
        let mut disconnected = false;
        // Admit new connections.
        loop {
            match inbox.try_recv() {
                Ok(io) => {
                    conns.push(GatewayConn::new(io, &policy));
                    progressed = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if conns.is_empty() && (disconnected || !open.load(Ordering::Acquire)) {
            return;
        }
        // Tick every connection; drop the dead, reap the stalled.
        let mut i = 0;
        while i < conns.len() {
            match conns[i].tick(&policy, &mut dispatch, reap_after) {
                Step::Progress => {
                    progressed = true;
                    i += 1;
                }
                Step::Idle => i += 1,
                Step::Dead => {
                    conns.swap_remove(i);
                    progressed = true;
                }
                Step::Reaped => {
                    conns.swap_remove(i);
                    reaped.fetch_add(1, Ordering::Relaxed);
                    progressed = true;
                }
            }
        }
        if progressed {
            idle_sleep = Duration::from_micros(10);
            idle_passes = 0;
        } else if idle_passes < IDLE_YIELDS {
            // Nothing moved: hand the core to whoever resolves our
            // parked work (sequencer, shard workers) before backing off.
            idle_passes += 1;
            std::thread::yield_now();
        } else {
            // Still nothing: back off (bounded) instead of spinning.
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(MAX_IDLE_SLEEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{pipe_pair, FramedChannel, SecureConfig};
    use std::sync::mpsc::channel;
    use std::sync::Mutex;
    use vg_crypto::schnorr::SigningKey;
    use vg_crypto::HmacDrbg;

    /// Answers `Sync` immediately, `LedgerHeads` after two polls, and
    /// `Shutdown` with close-after.
    #[derive(Clone)]
    struct TestDispatch {
        polls_left: Arc<Mutex<u32>>,
    }

    impl GatewayDispatch for TestDispatch {
        fn dispatch(&mut self, req: Request) -> Dispatched {
            match req {
                Request::Sync => Dispatched::Now(Response::Sync),
                Request::LedgerHeads => {
                    let polls = self.polls_left.clone();
                    Dispatched::Pending(Box::new(move || {
                        let mut left = vg_crypto::sync::lock_recover(&polls);
                        if *left == 0 {
                            Some(Response::SyncThrough)
                        } else {
                            *left -= 1;
                            None
                        }
                    }))
                }
                Request::Shutdown => Dispatched::CloseAfter(Response::Shutdown),
                _ => Dispatched::Now(Response::Err(ServiceError::Transport("nope".into()))),
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn spawn_reactor(
        policy: ChannelPolicy,
    ) -> (
        GatewayIntake,
        std::thread::JoinHandle<()>,
        Arc<Mutex<u32>>,
        Arc<AtomicU64>,
    ) {
        let (tx, rx) = channel();
        let polls = Arc::new(Mutex::new(2));
        let dispatch = TestDispatch {
            polls_left: polls.clone(),
        };
        let open = Arc::new(AtomicBool::new(true));
        let reaped = Arc::new(AtomicU64::new(0));
        let r = reaped.clone();
        let handle =
            std::thread::spawn(move || reactor_loop(rx, policy, dispatch, open, REAP_AFTER, r));
        (GatewayIntake::new(vec![tx]), handle, polls, reaped)
    }

    fn call(chan: &mut dyn FramedChannel, req: &Request) -> Response {
        chan.send_frame(&req.to_wire()).unwrap();
        Response::from_wire(&chan.recv_frame().unwrap()).unwrap()
    }

    #[test]
    fn plaintext_pipe_request_response_and_pending() {
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Plaintext);
        let (mut client, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        assert!(matches!(call(&mut client, &Request::Sync), Response::Sync));
        // A parked request resolves after the reactor polls it dry.
        assert!(matches!(
            call(&mut client, &Request::LedgerHeads),
            Response::SyncThrough
        ));
        assert!(matches!(
            call(&mut client, &Request::Shutdown),
            Response::Shutdown
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_connection_served_nonblocking() {
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Plaintext);
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = crate::channel::TcpChannel::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        assert!(intake.push(GatewayIo::from_stream(stream).unwrap()));
        for _ in 0..5 {
            assert!(matches!(call(&mut client, &Request::Sync), Response::Sync));
        }
        assert!(matches!(
            call(&mut client, &Request::Shutdown),
            Response::Shutdown
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }

    fn secure_cfgs() -> (SecureConfig, SecureConfig) {
        let mut rng = HmacDrbg::from_u64(99);
        let server = SigningKey::generate(&mut rng);
        let station = SigningKey::generate(&mut rng);
        let enrolled = Arc::new(vec![station.public_key_compressed()]);
        (
            SecureConfig {
                local: server.clone(),
                registrar: server.public_key_compressed(),
                enrolled: enrolled.clone(),
            },
            SecureConfig {
                local: station,
                registrar: server.public_key_compressed(),
                enrolled,
            },
        )
    }

    #[test]
    fn secure_handshake_and_sealed_requests_over_gateway() {
        let (server_cfg, client_cfg) = secure_cfgs();
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Secure(server_cfg));
        let (client_half, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        let mut client = ChannelPolicy::Secure(client_cfg)
            .establish_client(Box::new(client_half))
            .unwrap();
        assert!(matches!(call(&mut *client, &Request::Sync), Response::Sync));
        assert!(matches!(
            call(&mut *client, &Request::Shutdown),
            Response::Shutdown
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }

    #[test]
    fn unenrolled_station_rejected_typed_by_gateway() {
        let (server_cfg, mut client_cfg) = secure_cfgs();
        let mut rng = HmacDrbg::from_u64(100);
        client_cfg.local = SigningKey::generate(&mut rng);
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Secure(server_cfg));
        let (client_half, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        let mut client = ChannelPolicy::Secure(client_cfg)
            .establish_client(Box::new(client_half))
            .unwrap();
        // First use observes the typed rejection.
        assert!(matches!(
            client.recv_frame(),
            Err(ServiceError::AuthFailed(_))
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }

    fn spawn_reaping_reactor(
        policy: ChannelPolicy,
        reap_after: Duration,
    ) -> (GatewayIntake, std::thread::JoinHandle<()>, Arc<AtomicU64>) {
        let (tx, rx) = channel();
        let dispatch = TestDispatch {
            polls_left: Arc::new(Mutex::new(0)),
        };
        let open = Arc::new(AtomicBool::new(true));
        let reaped = Arc::new(AtomicU64::new(0));
        let r = reaped.clone();
        let handle =
            std::thread::spawn(move || reactor_loop(rx, policy, dispatch, open, reap_after, r));
        (GatewayIntake::new(vec![tx]), handle, reaped)
    }

    fn await_reap(reaped: &AtomicU64) -> u64 {
        let t0 = Instant::now();
        while reaped.load(Ordering::Relaxed) == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        reaped.load(Ordering::Relaxed)
    }

    #[test]
    fn half_open_handshake_is_reaped() {
        let (server_cfg, _) = secure_cfgs();
        let (intake, handle, reaped) =
            spawn_reaping_reactor(ChannelPolicy::Secure(server_cfg), Duration::from_millis(50));
        // The client connects and then never speaks: the connection
        // parks in AwaitInit and must be reaped, not held forever.
        let (client_half, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        assert_eq!(await_reap(&reaped), 1);
        drop(client_half);
        drop(intake);
        handle.join().unwrap();
    }

    #[test]
    fn mid_frame_stall_is_reaped_but_healthy_idle_is_not() {
        let (intake, handle, reaped) =
            spawn_reaping_reactor(ChannelPolicy::Plaintext, Duration::from_millis(50));
        // A healthy idle plaintext connection: established, no partial
        // frame. It must survive many reap deadlines.
        let (mut idle_client, idle_server) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(idle_server)));
        // A TCP peer that sends half a frame header and then stalls.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let stalled = TcpStream::connect(addr).unwrap();
        stalled.set_nodelay(true).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        assert!(intake.push(GatewayIo::from_stream(accepted).unwrap()));
        (&stalled).write_all(&[7u8, 0]).unwrap(); // half a length prefix
        assert_eq!(await_reap(&reaped), 1);
        // The idle connection still serves: it was never reaped.
        idle_client.send_frame(&Request::Sync.to_wire()).unwrap();
        assert!(matches!(
            Response::from_wire(&idle_client.recv_frame().unwrap()),
            Ok(Response::Sync)
        ));
        drop(stalled);
        drop(idle_client);
        drop(intake);
        handle.join().unwrap();
    }

    #[test]
    fn plaintext_client_of_secure_gateway_rejected_typed() {
        let (server_cfg, _) = secure_cfgs();
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Secure(server_cfg));
        let (mut client, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        client.send_frame(&Request::Sync.to_wire()).unwrap();
        let frame = client.recv_frame().unwrap();
        assert!(matches!(
            Response::from_wire(&frame),
            Ok(Response::Err(ServiceError::HandshakeFailed(_)))
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }

    #[test]
    fn secure_frame_to_plaintext_gateway_rejected_typed() {
        let (intake, handle, _, _) = spawn_reactor(ChannelPolicy::Plaintext);
        let (mut client, server_half) = pipe_pair();
        assert!(intake.push(GatewayIo::from_pipe(server_half)));
        let mut rng = HmacDrbg::from_u64(5);
        let eph = vg_crypto::channel::EphemeralKey::generate(&mut rng);
        client
            .send_frame(
                &HandshakeFrame::Init(crate::messages::HandshakeInit { eph: eph.public }).to_wire(),
            )
            .unwrap();
        let frame = client.recv_frame().unwrap();
        assert!(matches!(
            Response::from_wire(&frame),
            Ok(Response::Err(ServiceError::HandshakeFailed(_)))
        ));
        drop(client);
        drop(intake);
        handle.join().unwrap();
    }
}
