//! The registrar host: one process serving all four registrar services
//! over borrowed deployment state.
//!
//! A deployment would shard these across machines (the traits are the
//! seams); the reproduction runs them in one host so the in-process and
//! socket transports serve byte-identical state. Check-out verification
//! happens synchronously at the desk (Fig 10 lines 2–3 — the voter is
//! standing there), but the resulting records and all envelope
//! commitments flow through per-ledger [`IngestQueue`]s: admission is
//! deferred to the next barrier and coalesced into one RLC-folded sweep
//! per ledger, which is where the service layer's throughput win lives.

use vg_crypto::par::par_map;
use vg_crypto::CompressedPoint;
use vg_ledger::{EnvelopeCommitment, Ledger, RegistrationRecord};
use vg_trip::official::Official;
use vg_trip::printer::EnvelopePrinter;
use vg_trip::vsd::activation_ledger_phase;

use crate::error::ServiceError;
use crate::ingest::{submit_with_retry, IngestQueue};
use crate::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, IngestReceipt, IngestStatsReply, LedgerHeads,
    PrintRequest, PrintResponse,
};
use crate::traits::{ActivationService, LedgerIngestService, PrintService, RegistrarService};

/// Serves [`RegistrarService`], [`LedgerIngestService`], [`PrintService`]
/// and [`ActivationService`] over the registrar parts of a deployment.
pub struct RegistrarHost<'a> {
    official: &'a Official,
    printer: &'a EnvelopePrinter,
    ledger: &'a mut Ledger,
    kiosk_registry: &'a [CompressedPoint],
    threads: usize,
    env_queue: IngestQueue<EnvelopeCommitment>,
    reg_queue: IngestQueue<RegistrationRecord>,
    /// One boundary-wide ticket sequence across both queues, so tickets
    /// are monotonic per connection exactly as [`vg_trip::IngestTicket`]
    /// documents (the queues' internal counters are per-queue).
    next_ticket: u64,
}

/// Per-queue ceiling on deferred records. Coalescing submissions into one
/// folded admission sweep is the throughput win, but an unbounded queue
/// would buffer a whole million-voter day (plus the flush-time clone)
/// server-side and delay admission errors to end-of-day. The queues
/// enforce this as a typed backpressure contract
/// ([`crate::ingest::IngestError::Backpressure`]); the host responds by flushing and
/// resubmitting — the RPC caller blocks for one admission sweep — keeping
/// memory and error latency O(cap) while still coalescing many small
/// windows.
pub const MAX_PENDING_RECORDS: usize = 16_384;

impl<'a> RegistrarHost<'a> {
    /// Wraps the registrar state. `threads` bounds the worker fan-out of
    /// printing and of the coalesced admission sweeps.
    pub fn new(
        official: &'a Official,
        printer: &'a EnvelopePrinter,
        ledger: &'a mut Ledger,
        kiosk_registry: &'a [CompressedPoint],
        threads: usize,
    ) -> Self {
        Self {
            official,
            printer,
            ledger,
            kiosk_registry,
            threads: threads.max(1),
            env_queue: IngestQueue::with_capacity(MAX_PENDING_RECORDS),
            reg_queue: IngestQueue::with_capacity(MAX_PENDING_RECORDS),
            next_ticket: 0,
        }
    }

    fn ticket(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    /// `(batches, sweeps)` admitted per queue so far —
    /// `(envelopes, registrations)`. The coalescing ratio
    /// `batches / sweeps` is the async-ingestion win `service_bench`
    /// reports.
    pub fn queue_stats(&self) -> ((u64, u64), (u64, u64)) {
        (self.env_queue.stats(), self.reg_queue.stats())
    }

    fn flush_queues(&mut self) -> Result<(), ServiceError> {
        let ledger = &mut *self.ledger;
        let threads = self.threads;
        self.env_queue
            .flush(|commitments| ledger.envelopes.commit_batch(commitments, threads))?;
        self.reg_queue
            .flush(|records| ledger.registration.post_batch(records, threads))?;
        // Commit barrier on a durable backend: group-fsync the WAL and
        // persist signed heads before reporting the flush complete. An
        // IO failure surfaces as a typed storage error instead of a
        // panic; the store stays poisoned until restart.
        self.ledger
            .persist()
            .map_err(vg_ledger::LedgerError::from)?;
        Ok(())
    }
}

impl RegistrarService for RegistrarHost<'_> {
    fn check_in(&mut self, req: CheckInRequest) -> Result<CheckInResponse, ServiceError> {
        let ticket = self.official.check_in(self.ledger, req.voter)?;
        Ok(CheckInResponse { ticket })
    }

    fn check_out_batch(
        &mut self,
        req: CheckOutBatchRequest,
    ) -> Result<CheckOutBatchResponse, ServiceError> {
        let checkouts: Vec<_> = req
            .checkouts
            .into_iter()
            .map(|(qr, coupon)| (qr, coupon.into()))
            .collect();
        // Desk-side verification is synchronous (the voter is present);
        // only ledger admission is deferred.
        self.official
            .verify_checkouts(&checkouts, self.kiosk_registry, self.threads)?;
        let records = self.official.countersign_checkouts(checkouts);
        // Backpressure: flush on the submitter's behalf and retry, with a
        // bounded loop and a typed give-up (concurrent producers can
        // refill the queue between the flush and the retry).
        let ledger = &mut *self.ledger;
        let threads = self.threads;
        submit_with_retry(&mut self.reg_queue, records, |q| {
            q.flush(|records| ledger.registration.post_batch(records, threads))?;
            Ok(())
        })?;
        let ticket = self.ticket();
        Ok(CheckOutBatchResponse { ticket })
    }
}

impl PrintService for RegistrarHost<'_> {
    fn print_envelopes(&mut self, req: PrintRequest) -> Result<PrintResponse, ServiceError> {
        let envelopes = par_map(&req.jobs, self.threads, |job| {
            self.printer.print_detached(job.challenge, job.symbol)
        });
        Ok(PrintResponse { envelopes })
    }
}

impl LedgerIngestService for RegistrarHost<'_> {
    fn submit_envelopes(
        &mut self,
        req: EnvelopeSubmitRequest,
    ) -> Result<IngestReceipt, ServiceError> {
        let ledger = &mut *self.ledger;
        let threads = self.threads;
        submit_with_retry(&mut self.env_queue, req.commitments, |q| {
            q.flush(|commitments| ledger.envelopes.commit_batch(commitments, threads))?;
            Ok(())
        })?;
        let ticket = self.ticket();
        Ok(IngestReceipt { ticket })
    }

    fn sync(&mut self) -> Result<(), ServiceError> {
        self.flush_queues()
    }

    fn ledger_heads(&mut self) -> Result<LedgerHeads, ServiceError> {
        self.flush_queues()?;
        Ok(LedgerHeads {
            registration: self.ledger.registration.tree_head(),
            envelopes: self.ledger.envelopes.tree_head(),
        })
    }

    fn ingest_stats(&mut self) -> Result<IngestStatsReply, ServiceError> {
        let (env, reg) = self.queue_stats();
        let durability = self.ledger.durability_stats();
        Ok(IngestStatsReply {
            env_batches: env.0,
            env_sweeps: env.1,
            reg_batches: reg.0,
            reg_sweeps: reg.1,
            // No worker thread on the barrier host.
            worker_busy_us: 0,
            worker_idle_us: 0,
            wal_records: durability.wal_records,
            wal_fsyncs: durability.wal_fsyncs,
            workers: 0,
            wal_failures: durability.wal_failures,
        })
    }
}

impl ActivationService for RegistrarHost<'_> {
    fn activation_sweep(&mut self, req: ActivationSweepRequest) -> Result<(), ServiceError> {
        // Claims cross-check L_R and reveal on L_E: everything pending
        // must be admitted first.
        self.flush_queues()?;
        for claim in &req.claims {
            activation_ledger_phase(self.ledger, claim).map_err(ServiceError::Trip)?;
        }
        // Activation appended reveal-WAL entries; sync them before
        // acknowledging the sweep.
        self.ledger
            .persist()
            .map_err(vg_ledger::LedgerError::from)?;
        Ok(())
    }
}
