//! Transport-agnostic service layer for the TRIP registration system.
//!
//! The paper's deployment (§6, SOSP 2025) is distributed: kiosks in
//! privacy booths, officials' desks, envelope printers, the public
//! bulletin board and voters' devices are separate machines. This crate
//! makes those boundaries explicit:
//!
//! ```text
//!  fleet side (booths)                │ registrar side (services)
//!  ──────────────────────────────────┼────────────────────────────────
//!  KioskFleet ── RegistrarBoundary ──┤ RegistrarService    (officials)
//!    │   (vg-trip seam)              │ PrintService        (printers)
//!    │                               │ LedgerIngestService (bulletin board)
//!    └─ VSD client checks            │ ActivationService   (ledger phase)
//! ```
//!
//! - [`traits`]: the four service traits, one per paper role, each with
//!   its trust assumptions documented;
//! - [`messages`]: versioned, canonical wire messages built from the
//!   protocol's natural units (tickets, check-out QRs, envelope
//!   commitments, print jobs, activation claims, signed tree heads);
//! - [`wire`]: the strict codec envelope and length-prefixed framing;
//! - [`ingest`]: the asynchronous ledger ingestion queue — in-flight
//!   submissions coalesce into single RLC-folded admission sweeps;
//! - [`registrar`]: the host serving all four services over deployment
//!   state;
//! - [`channel`]: the pluggable transport API — [`FramedChannel`] /
//!   [`Connector`] / [`Listener`] traits, TCP and in-process pipe
//!   channels, and the mutual-auth encrypted [`channel::SecureChannel`]
//!   that wraps any of them by [`ChannelPolicy`];
//! - [`transport`]: the [`TransportPlan`] value (link × security), the
//!   fleet-facing [`ServiceBoundary`] adapter, channel serving, and
//!   whole-registration-day runners (plus the deprecated [`Transport`]
//!   enum shim);
//! - [`gateway`]: the non-blocking multiplexed acceptor that serves every
//!   pipelined-day connection on a bounded reactor pool.
//!
//! # Equivalence contract
//!
//! A registration day over any transport is **bit-identical** — same
//! ledger tree heads, same credentials, same event traces — to the
//! in-process sequential reference, for any `(seed, queue, kiosks, pool
//! batch, threads)`. The workspace's `tests/service.rs` pins this with
//! cross-transport proptests; `vg-bench`'s `service_bench` measures what
//! the framing and the asynchronous ingestion cost per ceremony.
//!
//! This crate forbids `unsafe` code (`#![forbid(unsafe_code)]`): the
//! whole workspace is safe Rust, locked in by the `vg-lint` analyzer's
//! `forbid-unsafe` rule.

#![forbid(unsafe_code)]

pub mod channel;
pub mod error;
pub mod fault;
pub mod gateway;
pub mod ingest;
pub mod messages;
pub mod pipeline;
pub mod registrar;
pub mod retry;
pub mod traits;
pub mod transport;
pub mod wire;

pub use channel::{
    pipe_pair, ChannelPolicy, Connector, Deadlines, FramedChannel, Listener, PipeChannel,
    SecureConfig, TcpChannel, TcpChannelListener, TcpConnector,
};
pub use error::ServiceError;
pub use fault::{ChannelFault, FaultPlan, FaultyChannel, FaultyConnector};
pub use ingest::{IngestError, IngestQueue};
pub use pipeline::{
    pipelined_register_and_activate_day, pipelined_register_and_activate_day_chaos,
    pipelined_register_and_activate_day_with_fault, pipelined_register_day, ChaosOptions,
    IngestHandle, IngestMode, IngestProgress, PipelineConfig, StationFault, StationHang,
};
pub use registrar::RegistrarHost;
pub use retry::RetryPolicy;
pub use traits::{
    ActivationService, LedgerIngestService, PrintService, RegistrarEndpoint, RegistrarService,
};
#[allow(deprecated)]
pub use transport::Transport;
pub use transport::{
    ledger_heads_over, register_and_activate_day, register_day, serve_channel, serve_connection,
    ChannelClient, ChannelSecurity, DayStats, LinkKind, ServiceBoundary, StealRecord,
    TransportPlan,
};
pub use wire::Wire;
