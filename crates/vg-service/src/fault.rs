//! Deterministic fault injection for the transport and storage seams.
//!
//! A [`FaultPlan`] is a *seed*, not a script: every fault decision is
//! drawn from an [`HmacDrbg`] keyed by the plan seed plus a stable
//! domain-separated coordinate (station index, dial count, operation
//! counter), so the same plan replays the same faults in the same
//! places on every run — on any machine, at any wall-clock speed. A CI
//! failure therefore reproduces locally from the seed alone.
//!
//! # Determinism contract
//!
//! No fault *decision* reads a wall clock or an OS entropy source
//! (vg-lint's nondeterminism rule is enforced on this file). The only
//! time-dependent effect is [`ChannelFault::Delay`], which sleeps for a
//! DRBG-chosen duration — *whether* and *how long* to delay are both
//! pure functions of the seed; only the interleaving the delay provokes
//! varies, which is exactly the schedule diversity the chaos sweep is
//! after. A [`ChannelFault::Stall`] does not sleep at all: it models a
//! peer that stopped making progress by surfacing the typed
//! [`ServiceError::Timeout`] the deadline layer would produce, keeping
//! chaos runs fast and hang-free by construction.
//!
//! The plan realizes faults at two seams:
//!
//! - **Network**: [`FaultyChannel`] wraps any [`FramedChannel`] and
//!   injects per-operation faults (delay, stall, connection drop, torn
//!   write, byte corruption). [`FaultyConnector`] wraps any
//!   [`Connector`] so every dial — initial connect, reconnect, steal
//!   lane — gets a fresh schedule derived from `(seed, station, dial)`.
//! - **Disk**: [`FaultPlan::fault_fs`] builds the write-layer schedule
//!   ([`vg_ledger::FaultFs`]) the durable store consumes — fail the Nth
//!   write or fsync, short writes, ENOSPC.

use std::sync::atomic::{AtomicU64, Ordering};

use vg_crypto::{HmacDrbg, Rng};
use vg_ledger::{FaultFs, FsFault};

use crate::channel::{Connector, FramedChannel};
use crate::error::ServiceError;

/// A seeded, deterministic fault schedule for one registration day.
///
/// See the [module docs](self) for the determinism contract. A plan
/// with `net_rate_permille == 0` and `disk == None` injects nothing and
/// is byte-for-byte equivalent to running without the fault plane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed every schedule derives from.
    pub seed: u64,
    /// Per-operation network fault probability in permille (`0..=1000`).
    /// Applied independently to each frame send/receive on each faulty
    /// channel.
    pub net_rate_permille: u16,
    /// Include stalls (deadline expiry) in the network fault mix. Kept
    /// separate from the rate so a grid can sweep "lossy but live"
    /// against "lossy and stalling".
    pub stalls: bool,
    /// Include in-flight byte corruption in the mix. Only meaningful on
    /// integrity-protected channels: the secure transport's MAC turns a
    /// flipped bit into a typed rejection, while a plaintext frame
    /// decodes the altered bytes as-is — silent divergence rather than a
    /// fault the chaos contract can observe — so plaintext grid cells
    /// leave this off.
    pub corrupt: bool,
    /// Write-layer fault for the day's durable store, if any.
    pub disk: Option<FsFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity element of the grid).
    pub fn quiet() -> Self {
        Self::default()
    }

    /// The channel-level fault schedule for dial number `dial` from
    /// station `station`. Reconnects get fresh-but-deterministic
    /// schedules: same `(seed, station, dial)` → same faults.
    pub fn channel_schedule(&self, station: usize, dial: u64) -> ChannelSchedule {
        let mut key = Vec::with_capacity(40);
        key.extend_from_slice(b"vgrs/fault/channel-v1");
        key.extend_from_slice(&self.seed.to_le_bytes());
        key.extend_from_slice(&(station as u64).to_le_bytes());
        key.extend_from_slice(&dial.to_le_bytes());
        ChannelSchedule {
            drbg: HmacDrbg::new(&key),
            rate: self.net_rate_permille.min(1000) as u64,
            stalls: self.stalls,
            corrupt: self.corrupt,
        }
    }

    /// The write-layer schedule for the day's durable store, if the
    /// plan injects disk faults.
    pub fn fault_fs(&self) -> Option<FaultFs> {
        self.disk.map(|f| FaultFs::new(vec![f]))
    }
}

/// One injected channel-level fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelFault {
    /// Sleep for the given number of microseconds, then proceed. The
    /// only fault that perturbs timing rather than correctness.
    Delay(u64),
    /// The peer stopped making progress: surface the typed deadline
    /// expiry ([`ServiceError::Timeout`]) without sleeping. The channel
    /// is dead afterwards (a timed-out frame boundary is unrecoverable).
    Stall,
    /// The connection dies cleanly: typed transport error, channel dead.
    Drop,
    /// A torn/partial write at the frame boundary: the frame is lost and
    /// the connection dies (the peer would see a truncated frame and
    /// hang up).
    Truncate,
    /// One bit of the frame is flipped in flight. The frame is still
    /// delivered; framing/MAC/decode layers must reject it typed.
    Corrupt,
}

/// The per-channel deterministic fault stream (see [`FaultPlan`]).
#[derive(Debug)]
pub struct ChannelSchedule {
    drbg: HmacDrbg,
    rate: u64,
    stalls: bool,
    corrupt: bool,
}

impl ChannelSchedule {
    /// Draws the fault decision for the next channel operation.
    fn next(&mut self) -> Option<ChannelFault> {
        if self.rate == 0 || self.drbg.below(1000) >= self.rate {
            return None;
        }
        let kinds = 4 + u64::from(self.corrupt) + u64::from(self.stalls);
        Some(match self.drbg.below(kinds) {
            // Delays dominate the mix: they reorder schedules without
            // killing connections, which is where heal-to-bit-identity
            // actually gets exercised.
            0 | 1 => ChannelFault::Delay(self.drbg.below(2_000)),
            2 => ChannelFault::Drop,
            3 => ChannelFault::Truncate,
            // Arm 4 is corruption when enabled, else the stall arm
            // shifts down; arm 5 only exists when both flags are on.
            4 if self.corrupt => ChannelFault::Corrupt,
            _ => ChannelFault::Stall,
        })
    }

    /// Flips one DRBG-chosen bit of `frame` (no-op on an empty frame).
    fn corrupt(&mut self, frame: &mut [u8]) {
        if frame.is_empty() {
            return;
        }
        let i = self.drbg.below(frame.len() as u64) as usize;
        if let Some(byte) = frame.get_mut(i) {
            *byte ^= 1 << self.drbg.below(8);
        }
    }
}

/// A [`FramedChannel`] wrapper that injects the faults its
/// [`ChannelSchedule`] dictates. Fatal faults (stall, drop, torn write)
/// are sticky: every later operation fails with a typed error, exactly
/// like a real dead socket.
pub struct FaultyChannel {
    inner: Box<dyn FramedChannel>,
    sched: ChannelSchedule,
    dead: Option<ServiceError>,
}

impl FaultyChannel {
    /// Wraps `inner` under `sched`.
    pub fn new(inner: Box<dyn FramedChannel>, sched: ChannelSchedule) -> Self {
        Self {
            inner,
            sched,
            dead: None,
        }
    }

    fn kill(&mut self, e: ServiceError) -> ServiceError {
        self.dead = Some(e.clone());
        e
    }
}

impl FramedChannel for FaultyChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        match self.sched.next() {
            None => self.inner.send_frame(frame),
            Some(ChannelFault::Delay(us)) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                self.inner.send_frame(frame)
            }
            Some(ChannelFault::Corrupt) => {
                let mut bent = frame.to_vec();
                self.sched.corrupt(&mut bent);
                self.inner.send_frame(&bent)
            }
            Some(ChannelFault::Stall) => Err(self.kill(ServiceError::Timeout(
                "injected stall: write deadline expired".into(),
            ))),
            Some(ChannelFault::Drop) => Err(self.kill(ServiceError::Transport(
                "injected fault: connection dropped".into(),
            ))),
            Some(ChannelFault::Truncate) => Err(self.kill(ServiceError::Transport(
                "injected fault: torn write at frame boundary".into(),
            ))),
        }
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServiceError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        match self.sched.next() {
            None => self.inner.recv_frame(),
            Some(ChannelFault::Delay(us)) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                self.inner.recv_frame()
            }
            Some(ChannelFault::Corrupt) => {
                let mut frame = self.inner.recv_frame()?;
                self.sched.corrupt(&mut frame);
                Ok(frame)
            }
            Some(ChannelFault::Stall) => Err(self.kill(ServiceError::Timeout(
                "injected stall: read deadline expired".into(),
            ))),
            Some(ChannelFault::Drop) => Err(self.kill(ServiceError::Transport(
                "injected fault: connection dropped".into(),
            ))),
            // A torn read is indistinguishable from a drop at the frame
            // seam: the partial frame never decodes.
            Some(ChannelFault::Truncate) => Err(self.kill(ServiceError::Transport(
                "injected fault: torn frame on receive".into(),
            ))),
        }
    }
}

/// A [`Connector`] wrapper giving every dial a fresh deterministic
/// schedule: dial `n` from `station` replays identically across runs of
/// the same [`FaultPlan`].
///
/// The wrapper composes *outside* the security policy (it wraps the
/// fully established channel), so injected corruption exercises the
/// secure channel's MAC rejection path rather than breaking handshakes
/// nondeterministically.
pub struct FaultyConnector {
    inner: Box<dyn Connector>,
    plan: FaultPlan,
    station: usize,
    dials: AtomicU64,
}

impl FaultyConnector {
    /// Wraps `inner` for `station` under `plan`.
    pub fn new(inner: Box<dyn Connector>, plan: FaultPlan, station: usize) -> Self {
        Self {
            inner,
            plan,
            station,
            dials: AtomicU64::new(0),
        }
    }
}

impl Connector for FaultyConnector {
    fn connect(&self) -> Result<Box<dyn FramedChannel>, ServiceError> {
        let dial = self.dials.fetch_add(1, Ordering::Relaxed);
        let chan = self.inner.connect()?;
        Ok(Box::new(FaultyChannel::new(
            chan,
            self.plan.channel_schedule(self.station, dial),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::pipe_pair;

    fn drain(mut sched: ChannelSchedule, n: usize) -> Vec<Option<ChannelFault>> {
        (0..n).map(|_| sched.next()).collect()
    }

    #[test]
    fn schedules_are_deterministic_and_domain_separated() {
        let plan = FaultPlan {
            seed: 7,
            net_rate_permille: 400,
            stalls: true,
            corrupt: true,
            disk: None,
        };
        let a = drain(plan.channel_schedule(0, 0), 64);
        let b = drain(plan.channel_schedule(0, 0), 64);
        assert_eq!(a, b, "same coordinate replays identically");
        assert_ne!(
            a,
            drain(plan.channel_schedule(1, 0), 64),
            "stations draw independent schedules"
        );
        assert_ne!(
            a,
            drain(plan.channel_schedule(0, 1), 64),
            "reconnects draw independent schedules"
        );
        let other = FaultPlan { seed: 8, ..plan };
        assert_ne!(a, drain(other.channel_schedule(0, 0), 64), "seed matters");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let sched = FaultPlan::quiet().channel_schedule(0, 0);
        assert!(drain(sched, 256).iter().all(|f| f.is_none()));
    }

    #[test]
    fn stall_mix_gated_by_flag() {
        let plan = FaultPlan {
            seed: 3,
            net_rate_permille: 1000,
            stalls: false,
            corrupt: true,
            disk: None,
        };
        assert!(drain(plan.channel_schedule(0, 0), 512)
            .iter()
            .all(|f| !matches!(f, Some(ChannelFault::Stall))));
        let stalling = FaultPlan {
            stalls: true,
            ..plan
        };
        assert!(drain(stalling.channel_schedule(0, 0), 512)
            .iter()
            .any(|f| matches!(f, Some(ChannelFault::Stall))));
    }

    #[test]
    fn corrupt_mix_gated_by_flag() {
        let plan = FaultPlan {
            seed: 9,
            net_rate_permille: 1000,
            stalls: true,
            corrupt: false,
            disk: None,
        };
        assert!(drain(plan.channel_schedule(0, 0), 512)
            .iter()
            .all(|f| !matches!(f, Some(ChannelFault::Corrupt))));
        let corrupting = FaultPlan {
            corrupt: true,
            ..plan
        };
        assert!(drain(corrupting.channel_schedule(0, 0), 512)
            .iter()
            .any(|f| matches!(f, Some(ChannelFault::Corrupt))));
    }

    #[test]
    fn fatal_faults_are_sticky_and_typed() {
        let plan = FaultPlan {
            seed: 11,
            net_rate_permille: 1000,
            stalls: true,
            corrupt: true,
            disk: None,
        };
        // Rate 1000 → every op faults; drive sends until a fatal one.
        let (a, _b) = pipe_pair();
        let mut chan = FaultyChannel::new(Box::new(a), plan.channel_schedule(0, 0));
        let fatal = loop {
            match chan.send_frame(b"frame") {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(fatal, ServiceError::Timeout(_) | ServiceError::Transport(_)),
            "{fatal:?}"
        );
        // Dead is dead: the error repeats, no panic, no hang.
        assert_eq!(chan.send_frame(b"again"), Err(fatal.clone()));
        assert_eq!(chan.recv_frame(), Err(fatal));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = FaultPlan {
            seed: 5,
            net_rate_permille: 0,
            stalls: false,
            corrupt: true,
            disk: None,
        };
        let mut sched = plan.channel_schedule(0, 0);
        let original = vec![0u8; 32];
        let mut bent = original.clone();
        sched.corrupt(&mut bent);
        let flipped: u32 = original
            .iter()
            .zip(&bent)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn disk_schedule_materializes() {
        let plan = FaultPlan {
            seed: 1,
            net_rate_permille: 0,
            stalls: false,
            corrupt: false,
            disk: Some(FsFault::DiskFull { nth: 3 }),
        };
        assert!(plan.fault_fs().is_some());
        assert!(FaultPlan::quiet().fault_fs().is_none());
    }
}
