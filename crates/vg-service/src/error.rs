//! Service-layer errors with a typed wire encoding.
//!
//! Domain errors ([`vg_trip::TripError`] and everything nested inside it)
//! round-trip the wire as tagged variants, so a fleet run over TCP
//! observes the *same* typed error a local run would — the
//! cross-transport equivalence tests rely on this. The one lossy corner
//! is [`vg_crypto::CryptoError::Malformed`]'s static message, which
//! cannot be reconstituted from untrusted bytes and decodes to a fixed
//! placeholder.

use crate::ingest::IngestError;
use vg_crypto::codec::{put_u32, Reader};
use vg_crypto::CryptoError;
use vg_ledger::LedgerError;
use vg_trip::{ActivationCheck, TripError};

/// Errors raised by the service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A registrar-side domain error (typed; survives the wire).
    Trip(TripError),
    /// A transport failure: socket, framing, codec or protocol violation.
    Transport(String),
    /// The ingest queue kept refusing a submission even after bounded
    /// flush-and-retry: the typed give-up of the backpressure contract.
    /// Carries the final refusal so callers can see how saturated the
    /// queue was when the registrar gave up.
    Ingest(IngestError),
    /// A secure-channel peer completed the handshake cryptography but is
    /// not enrolled (unknown station key, or the registrar's static key
    /// did not match the enrolled one). Typed separately from
    /// [`ServiceError::HandshakeFailed`] so operators can distinguish
    /// "wrong key material" from "broken/absent handshake".
    AuthFailed(String),
    /// The secure-channel handshake itself failed: malformed, truncated,
    /// replayed or bit-flipped handshake frames, a bad signature or
    /// confirmation MAC, or a plaintext/secure policy mismatch between
    /// the two endpoints.
    HandshakeFailed(String),
    /// A read or write deadline expired before the peer made progress.
    /// Distinct from [`ServiceError::Transport`] so retry policies can
    /// tell a stalled-but-alive peer (retryable, reconnect) from a
    /// protocol violation (fatal). Survives the wire like every other
    /// variant.
    Timeout(String),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Trip(e) => write!(f, "service error: {e}"),
            ServiceError::Transport(what) => write!(f, "transport error: {what}"),
            ServiceError::Ingest(e) => write!(f, "ingest gave up after bounded retries: {e}"),
            ServiceError::AuthFailed(who) => write!(f, "channel authentication failed: {who}"),
            ServiceError::HandshakeFailed(why) => write!(f, "channel handshake failed: {why}"),
            ServiceError::Timeout(what) => write!(f, "deadline expired: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<TripError> for ServiceError {
    fn from(e: TripError) -> Self {
        ServiceError::Trip(e)
    }
}

impl From<LedgerError> for ServiceError {
    fn from(e: LedgerError) -> Self {
        ServiceError::Trip(TripError::Ledger(e))
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        // A socket deadline expiring surfaces as `WouldBlock` (Unix) or
        // `TimedOut` (Windows); both mean "the peer stalled", not "the
        // peer broke protocol", so they map to the retryable variant.
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ServiceError::Timeout(format!("io: {e}"))
            }
            _ => ServiceError::Transport(format!("io: {e}")),
        }
    }
}

impl ServiceError {
    /// A framing/codec failure.
    pub fn codec(e: CryptoError) -> Self {
        ServiceError::Transport(format!("codec: {e}"))
    }

    /// Maps into the fleet coordinator's error type: domain errors keep
    /// their variant, transport failures become
    /// [`TripError::Boundary`].
    pub fn into_trip(self) -> TripError {
        match self {
            ServiceError::Trip(e) => e,
            ServiceError::Transport(what) => TripError::Boundary(what),
            ServiceError::Ingest(e) => {
                TripError::Boundary(format!("ingest gave up after bounded retries: {e}"))
            }
            ServiceError::AuthFailed(who) => {
                TripError::Boundary(format!("channel authentication failed: {who}"))
            }
            ServiceError::HandshakeFailed(why) => {
                TripError::Boundary(format!("channel handshake failed: {why}"))
            }
            ServiceError::Timeout(what) => TripError::Boundary(format!("deadline expired: {what}")),
        }
    }

    /// `true` for failures a retry policy may usefully retry: stalls
    /// (deadline expiry) and transport-level connection failures. Domain
    /// errors, auth and handshake failures are deterministic — retrying
    /// them would yield the same answer.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::Timeout(_) | ServiceError::Transport(_))
    }
}

fn crypto_code(e: &CryptoError) -> u32 {
    match e {
        CryptoError::InvalidPoint => 0,
        CryptoError::InvalidScalar => 1,
        CryptoError::BadSignature => 2,
        CryptoError::BadProof => 3,
        CryptoError::BadMac => 4,
        CryptoError::Malformed(_) => 5,
        CryptoError::InsufficientShares => 6,
        CryptoError::BadShare => 7,
    }
}

fn crypto_from_code(code: u32) -> Result<CryptoError, CryptoError> {
    Ok(match code {
        0 => CryptoError::InvalidPoint,
        1 => CryptoError::InvalidScalar,
        2 => CryptoError::BadSignature,
        3 => CryptoError::BadProof,
        4 => CryptoError::BadMac,
        5 => CryptoError::Malformed("remote"),
        6 => CryptoError::InsufficientShares,
        7 => CryptoError::BadShare,
        _ => return Err(CryptoError::Malformed("unknown crypto error code")),
    })
}

fn ledger_code(e: &LedgerError) -> (u32, u32) {
    match e {
        LedgerError::NotOnRoster => (0, 0),
        LedgerError::UnknownEnvelope => (1, 0),
        LedgerError::DuplicateChallenge => (2, 0),
        LedgerError::Crypto(c) => (3, crypto_code(c)),
        LedgerError::Storage(_) => (4, 0),
    }
}

/// The free-text payload a ledger error carries (storage failures keep
/// their diagnostic string across the wire; the coded variants carry
/// none).
fn ledger_text(e: &LedgerError) -> &str {
    match e {
        LedgerError::Storage(m) => m.as_str(),
        _ => "",
    }
}

fn ledger_from_code(code: u32, sub: u32, text: &str) -> Result<LedgerError, CryptoError> {
    Ok(match code {
        0 => LedgerError::NotOnRoster,
        1 => LedgerError::UnknownEnvelope,
        2 => LedgerError::DuplicateChallenge,
        3 => LedgerError::Crypto(crypto_from_code(sub)?),
        4 => LedgerError::Storage(text.to_string()),
        _ => return Err(CryptoError::Malformed("unknown ledger error code")),
    })
}

fn activation_code(c: &ActivationCheck) -> u32 {
    match c {
        ActivationCheck::CommitSignature => 0,
        ActivationCheck::ResponseSignature => 1,
        ActivationCheck::EnvelopeSignature => 2,
        ActivationCheck::ZkTranscript => 3,
        ActivationCheck::LedgerMismatch => 4,
        ActivationCheck::DuplicateChallenge => 5,
        ActivationCheck::NoRegistrationRecord => 6,
    }
}

fn activation_from_code(code: u32) -> Result<ActivationCheck, CryptoError> {
    Ok(match code {
        0 => ActivationCheck::CommitSignature,
        1 => ActivationCheck::ResponseSignature,
        2 => ActivationCheck::EnvelopeSignature,
        3 => ActivationCheck::ZkTranscript,
        4 => ActivationCheck::LedgerMismatch,
        5 => ActivationCheck::DuplicateChallenge,
        6 => ActivationCheck::NoRegistrationRecord,
        _ => return Err(CryptoError::Malformed("unknown activation check code")),
    })
}

/// Encodes a service error as `(tag, sub, sub2, text)`.
pub(crate) fn encode_error(buf: &mut Vec<u8>, e: &ServiceError) {
    let (tag, sub, sub2, text): (u32, u32, u32, &str) = match e {
        ServiceError::Trip(t) => match t {
            TripError::BadCheckInTicket => (0, 0, 0, ""),
            TripError::NotEligible => (1, 0, 0, ""),
            TripError::RealCredentialMissing => (2, 0, 0, ""),
            TripError::EnvelopeReused => (3, 0, 0, ""),
            TripError::WrongSymbol => (4, 0, 0, ""),
            TripError::NoMatchingEnvelope => (5, 0, 0, ""),
            TripError::UnknownKiosk => (6, 0, 0, ""),
            TripError::UnknownPrinter => (7, 0, 0, ""),
            TripError::Activation(c) => (8, activation_code(c), 0, ""),
            TripError::WrongPhysicalState => (9, 0, 0, ""),
            TripError::PoolIntegrity => (10, 0, 0, ""),
            TripError::Crypto(c) => (11, crypto_code(c), 0, ""),
            TripError::Ledger(l) => {
                let (a, b) = ledger_code(l);
                (12, a, b, ledger_text(l))
            }
            TripError::Boundary(s) => (13, 0, 0, s.as_str()),
            TripError::InvalidConfig(s) => (15, 0, 0, s.as_str()),
        },
        ServiceError::Transport(s) => (14, 0, 0, s.as_str()),
        ServiceError::Ingest(IngestError::Backpressure { pending, capacity }) => {
            (16, *pending as u32, *capacity as u32, "")
        }
        ServiceError::AuthFailed(s) => (17, 0, 0, s.as_str()),
        ServiceError::HandshakeFailed(s) => (18, 0, 0, s.as_str()),
        ServiceError::Timeout(s) => (19, 0, 0, s.as_str()),
    };
    put_u32(buf, tag);
    put_u32(buf, sub);
    put_u32(buf, sub2);
    put_u32(buf, text.len() as u32);
    buf.extend_from_slice(text.as_bytes());
}

/// Decodes a service error encoded by [`encode_error`].
pub(crate) fn decode_error(r: &mut Reader<'_>) -> Result<ServiceError, CryptoError> {
    let tag = r.u32()?;
    let sub = r.u32()?;
    let sub2 = r.u32()?;
    let n = r.len_prefix()?;
    let text = String::from_utf8(r.take(n)?.to_vec())
        .map_err(|_| CryptoError::Malformed("error text not utf-8"))?;
    Ok(match tag {
        0 => ServiceError::Trip(TripError::BadCheckInTicket),
        1 => ServiceError::Trip(TripError::NotEligible),
        2 => ServiceError::Trip(TripError::RealCredentialMissing),
        3 => ServiceError::Trip(TripError::EnvelopeReused),
        4 => ServiceError::Trip(TripError::WrongSymbol),
        5 => ServiceError::Trip(TripError::NoMatchingEnvelope),
        6 => ServiceError::Trip(TripError::UnknownKiosk),
        7 => ServiceError::Trip(TripError::UnknownPrinter),
        8 => ServiceError::Trip(TripError::Activation(activation_from_code(sub)?)),
        9 => ServiceError::Trip(TripError::WrongPhysicalState),
        10 => ServiceError::Trip(TripError::PoolIntegrity),
        11 => ServiceError::Trip(TripError::Crypto(crypto_from_code(sub)?)),
        12 => ServiceError::Trip(TripError::Ledger(ledger_from_code(sub, sub2, &text)?)),
        13 => ServiceError::Trip(TripError::Boundary(text)),
        14 => ServiceError::Transport(text),
        15 => ServiceError::Trip(TripError::InvalidConfig(text)),
        16 => ServiceError::Ingest(IngestError::Backpressure {
            pending: sub as usize,
            capacity: sub2 as usize,
        }),
        17 => ServiceError::AuthFailed(text),
        18 => ServiceError::HandshakeFailed(text),
        19 => ServiceError::Timeout(text),
        _ => return Err(CryptoError::Malformed("unknown error tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_errors_roundtrip() {
        let cases = vec![
            ServiceError::Trip(TripError::NotEligible),
            ServiceError::Trip(TripError::UnknownKiosk),
            ServiceError::Trip(TripError::Activation(ActivationCheck::LedgerMismatch)),
            ServiceError::Trip(TripError::Crypto(CryptoError::BadSignature)),
            ServiceError::Trip(TripError::Ledger(LedgerError::DuplicateChallenge)),
            ServiceError::Trip(TripError::Ledger(LedgerError::Crypto(
                CryptoError::InvalidPoint,
            ))),
            ServiceError::Trip(TripError::Ledger(LedgerError::Storage(
                "wal poisoned by earlier failure: injected ENOSPC".into(),
            ))),
            ServiceError::Trip(TripError::Boundary("lost".into())),
            ServiceError::Trip(TripError::InvalidConfig("3 stations over 2 kiosks".into())),
            ServiceError::Transport("socket reset".into()),
            ServiceError::Ingest(IngestError::Backpressure {
                pending: 16_000,
                capacity: 16_384,
            }),
            ServiceError::AuthFailed("station key not enrolled".into()),
            ServiceError::HandshakeFailed("confirmation mac mismatch".into()),
            ServiceError::Timeout("read deadline after 250ms".into()),
        ];
        for e in cases {
            let mut buf = Vec::new();
            encode_error(&mut buf, &e);
            let mut r = Reader::new(&buf);
            let back = decode_error(&mut r).expect("decodes");
            r.finish().unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn socket_deadline_expiry_maps_to_timeout() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let e: ServiceError = std::io::Error::new(kind, "read timed out").into();
            assert!(matches!(e, ServiceError::Timeout(_)), "{kind:?}");
            assert!(e.is_retryable());
        }
        let e: ServiceError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset").into();
        assert!(matches!(e, ServiceError::Transport(_)));
        assert!(!ServiceError::AuthFailed("x".into()).is_retryable());
    }

    #[test]
    fn garbage_error_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 99);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        assert!(decode_error(&mut Reader::new(&buf)).is_err());
    }
}
