//! A minimal, dependency-free drop-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be vendored. This shim keeps the workspace's property tests
//! source-compatible: `proptest!` blocks, `any::<T>()`, integer-range
//! strategies, `prop_map`, `collection::vec`, `array::uniform{8,32}` and
//! the `prop_assert*` macros all behave as in upstream, except that
//! generation is a fixed-seed deterministic PRNG and failures panic
//! immediately (no shrinking). Each test therefore explores a
//! reproducible pseudo-random sample of its input space.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; that is affordable for every
            // default-config property in this workspace.
            Self { cases: 256 }
        }
    }

    /// SplitMix64: tiny, deterministic, well-distributed.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic RNG for case number `case` of a property.
        pub fn for_case(case: u64) -> Self {
            Self {
                state: 0x9e37_79b9_7f4a_7c15_u64
                    .wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// A value-generation strategy.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // i128 arithmetic keeps signed ranges that cross zero
                // (e.g. -5i32..5) correct.
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The size argument of [`vec()`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.end > self.start, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with the given size.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($name:ident, $wrapper:ident, $n:literal) => {
            /// The strategy returned by the matching `uniform*` function.
            pub struct $wrapper<S>(S);

            impl<S: Strategy> Strategy for $wrapper<S> {
                type Value = [S::Value; $n];

                fn generate(&self, rng: &mut TestRng) -> [S::Value; $n] {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }

            /// An array strategy drawing every element from `element`.
            pub fn $name<S: Strategy>(element: S) -> $wrapper<S> {
                $wrapper(element)
            }
        };
    }

    uniform_array!(uniform8, Uniform8, 8);
    uniform_array!(uniform32, Uniform32, 32);
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid directly inside a `proptest!` body (expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a property-level condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::test_runner::TestRng;
    use super::Strategy;

    #[test]
    fn signed_ranges_cross_zero() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (-10i64..-5).generate(&mut rng);
            assert!((-10..-5).contains(&w));
        }
    }

    #[test]
    fn unsigned_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(4);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }
}
