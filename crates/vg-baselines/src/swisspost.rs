//! Swiss Post e-voting crypto-path simulator \[145\].
//!
//! The Swiss Post system is individually and universally verifiable but
//! not coercion-resistant. Its cryptographic profile per the published
//! protocol:
//!
//! - **Registration / setup**: per voter, the setup component generates a
//!   verification-card key pair and, for every voting option, partial
//!   choice-return codes computed by each of the four control components
//!   (exponentiations by per-CC secrets) plus their encryptions — the
//!   heaviest registration phase of the linear systems (13 ms/voter vs
//!   TRIP's 1.2 ms in the paper's Fig 5a).
//! - **Voting**: the client encrypts the vote with an OR validity proof
//!   and computes partial choice codes; all four control components verify
//!   the proofs and derive the return codes.
//! - **Tally**: a four-stage verifiable mix where **each control component
//!   re-verifies every stage**, then verifiable threshold decryption —
//!   roughly twice Votegral's tally cost at scale (27 h vs 14 h at 10^6).

use vg_crypto::chaum_pedersen::{prove_dleq, verify_dleq, DlEqStatement};
use vg_crypto::dkg::Authority;
use vg_crypto::elgamal::{discrete_log_small, encrypt_point, Ciphertext};
use vg_crypto::{EdwardsPoint, Rng, Scalar, Transcript};
use vg_shuffle::MixCascade;

use crate::BenchSystem;

const CONTROL_COMPONENTS: usize = 4;

struct SwissPostVoter {
    /// Verification-card secret.
    vc_secret: Scalar,
    /// Encrypted partial choice-return codes, one per option per CC.
    #[allow(dead_code)]
    choice_codes: Vec<Ciphertext>,
}

/// The Swiss Post system state.
pub struct SwissPost {
    authority: Authority,
    n_voters: usize,
    n_options: u32,
    voters: Vec<SwissPostVoter>,
    ballots: Vec<Ciphertext>,
}

impl SwissPost {
    /// Creates a Swiss Post instance (four control components).
    pub fn new(n_voters: usize, n_options: u32, rng: &mut dyn Rng) -> Self {
        Self {
            authority: Authority::dkg(CONTROL_COMPONENTS, CONTROL_COMPONENTS, rng),
            n_voters,
            n_options,
            voters: Vec::new(),
            ballots: Vec::new(),
        }
    }

    fn register_one(&mut self, rng: &mut dyn Rng) {
        let pk = self.authority.public_key;
        // Verification-card key pair.
        let vc_secret = rng.scalar();
        let _vc_pub = EdwardsPoint::mul_base(&vc_secret);
        // Per option, each control component derives a partial
        // choice-return code (an exponentiation by its per-voter secret)
        // and encrypts it for the code table.
        let mut choice_codes = Vec::with_capacity(self.n_options as usize * CONTROL_COMPONENTS);
        for opt in 0..self.n_options {
            let opt_point = EdwardsPoint::mul_base(&Scalar::from_u64(opt as u64 + 1));
            for _cc in 0..CONTROL_COMPONENTS {
                let cc_secret = rng.scalar();
                let partial = opt_point * cc_secret; // pCC exponentiation.
                let (ct, _) = encrypt_point(&pk, &partial, rng);
                choice_codes.push(ct);
            }
        }
        self.voters.push(SwissPostVoter {
            vc_secret,
            choice_codes,
        });
    }

    fn vote_one(&mut self, idx: usize, vote: u32, rng: &mut dyn Rng) {
        let pk = self.authority.public_key;
        let g_v = EdwardsPoint::mul_base(&Scalar::from_u64(vote as u64));
        let (ct, r) = encrypt_point(&pk, &g_v, rng);
        // Client-side OR validity proof (one branch per option; simulated
        // branches cost the same as real ones).
        for m in 0..self.n_options {
            let m_pt = EdwardsPoint::mul_base(&Scalar::from_u64(m as u64));
            let stmt = DlEqStatement {
                g1: EdwardsPoint::basepoint(),
                y1: ct.c1,
                g2: pk,
                y2: ct.c2 - m_pt,
            };
            if m == vote {
                let proof = prove_dleq(&mut Transcript::new(b"swisspost-vote"), &stmt, &r, rng);
                // Every control component verifies the client proof and
                // derives a return code from the partial choice codes.
                let vc = self.voters[idx].vc_secret;
                for _cc in 0..CONTROL_COMPONENTS {
                    verify_dleq(&mut Transcript::new(b"swisspost-vote"), &stmt, &proof)
                        .expect("client proof verifies");
                    let _return_code = ct.c1 * vc; // CC return-code exponentiation.
                }
            } else {
                let e = rng.scalar();
                let _ = vg_crypto::chaum_pedersen::forge_transcript(&stmt, &e, rng);
            }
        }
        self.ballots.push(ct);
    }
}

impl BenchSystem for SwissPost {
    fn name(&self) -> &'static str {
        "SwissPost"
    }

    fn register_all(&mut self, rng: &mut dyn Rng) {
        for _ in 0..self.n_voters {
            self.register_one(rng);
        }
    }

    fn vote_all(&mut self, votes: &[u32], rng: &mut dyn Rng) {
        assert_eq!(votes.len(), self.n_voters, "one vote per voter");
        for (idx, &v) in votes.iter().enumerate() {
            self.vote_one(idx, v, rng);
        }
    }

    fn tally(&mut self, rng: &mut dyn Rng) -> Vec<u64> {
        let pk = self.authority.public_key;
        // Swiss Post ballots travel through the mix as (encrypted vote,
        // encrypted confirmation key) pairs — the mixnet moves both under
        // one permutation.
        let mut inputs: Vec<(Ciphertext, Ciphertext)> = self
            .ballots
            .iter()
            .enumerate()
            .map(|(i, ct)| {
                let vc = EdwardsPoint::mul_base(&self.voters[i].vc_secret);
                let (conf, _) = encrypt_point(&pk, &vc, rng);
                (*ct, conf)
            })
            .collect();
        while inputs.len() < 2 {
            inputs.push((Ciphertext::identity(), Ciphertext::identity()));
        }
        // Four-mixer cascade; every control component independently
        // re-verifies the whole cascade, and the mandated post-election
        // Verifier re-checks it once more (the system's defining
        // overhead).
        let cascade = MixCascade::new(inputs.len(), CONTROL_COMPONENTS);
        let transcript = cascade.mix_pairs(&pk, &inputs, rng);
        for _verifier in 0..=CONTROL_COMPONENTS {
            cascade
                .verify_pairs(&pk, &transcript)
                .expect("own mix verifies");
        }
        // Verifiable threshold decryption of every mixed ballot. Each of
        // the four control components produces a proven share, and each of
        // the four *re-verifies every other component's share* before
        // accepting the plaintext — the re-verification fan-out that makes
        // Swiss Post's tally the most expensive linear one (≈2× Votegral
        // at 10^6 in Fig 5b).
        let mut counts = vec![0u64; self.n_options as usize];
        for (ct, _conf) in transcript.outputs() {
            let shares: Vec<vg_crypto::dkg::DecryptionShare> = self
                .authority
                .members
                .iter()
                .map(|m| m.decryption_share(ct, rng))
                .collect();
            // Each control component verifies every share online, and the
            // Verifier re-checks them all post-election.
            for _verifying_cc in 0..=CONTROL_COMPONENTS {
                for share in &shares {
                    let vk = self.authority.members[(share.member_index - 1) as usize].vk;
                    share.verify(&vk, ct).expect("share verifies");
                }
            }
            let plain =
                vg_crypto::dkg::combine_shares(ct, &shares, self.authority.t).expect("combines");
            if let Some(v) = discrete_log_small(&plain, self.n_options as u64) {
                if !(plain == EdwardsPoint::IDENTITY && self.ballots.is_empty()) {
                    counts[v as usize] += 1;
                }
            }
        }
        // Padding identities decrypt to g^0; remove the padding we added.
        let padding = inputs.len() - self.ballots.len();
        counts[0] = counts[0].saturating_sub(padding as u64);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::HmacDrbg;

    #[test]
    fn swisspost_counts_correctly() {
        let mut rng = HmacDrbg::from_u64(1);
        let mut sys = SwissPost::new(5, 3, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 1, 1, 2, 1], &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![1, 3, 1]);
    }

    #[test]
    fn swisspost_single_ballot_with_padding() {
        let mut rng = HmacDrbg::from_u64(2);
        let mut sys = SwissPost::new(1, 2, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[1], &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![0, 1]);
    }

    #[test]
    fn swisspost_is_linear() {
        let mut rng = HmacDrbg::from_u64(3);
        let sys = SwissPost::new(1, 2, &mut rng);
        assert!(!sys.quadratic_tally());
    }
}
