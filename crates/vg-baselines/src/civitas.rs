//! Civitas / JCJ crypto-path simulator [27, 75].
//!
//! Registration: the voter interacts with every registration teller; each
//! teller issues a credential share with a designated-verifier proof of
//! correct encryption, and the voter homomorphically combines the shares.
//! The combined encrypted credential goes on the public roster.
//!
//! Voting: a ballot carries a fresh re-encryption of the credential, the
//! encrypted vote, a vote-validity OR-proof and a proof of credential
//! knowledge.
//!
//! Tally: the defining cost — **pairwise plaintext-equivalence tests**:
//! duplicate elimination compares every ballot pair, and credential
//! matching compares ballots against roster entries, giving the quadratic
//! tally the paper extrapolates to 1,768 *years* at 10^6 voters (§7.4,
//! Fig 5b).

use vg_crypto::chaum_pedersen::{prove_dleq, verify_dleq, DlEqStatement};
use vg_crypto::dkg::Authority;
use vg_crypto::elgamal::{discrete_log_small, encrypt_point, rerandomize, Ciphertext};
use vg_crypto::pet::pet;
use vg_crypto::{EdwardsPoint, Rng, Scalar, Transcript};

use crate::BenchSystem;

/// Per-voter registration material.
struct CivitasVoter {
    /// The private credential exponent s (sum of teller shares).
    credential: Scalar,
    /// The roster entry Enc(g^s).
    roster_entry: Ciphertext,
}

/// A cast ballot.
struct CivitasBallot {
    /// Fresh re-encryption of the voter's credential.
    enc_credential: Ciphertext,
    /// Encrypted vote (exponential encoding).
    enc_vote: Ciphertext,
}

/// The Civitas system state.
pub struct Civitas {
    authority: Authority,
    n_voters: usize,
    n_options: u32,
    voters: Vec<CivitasVoter>,
    ballots: Vec<CivitasBallot>,
}

impl Civitas {
    /// Creates a Civitas instance with the paper's four tellers.
    pub fn new(n_voters: usize, n_options: u32, rng: &mut dyn Rng) -> Self {
        Self::with_tellers(n_voters, n_options, 4, rng)
    }

    /// Creates a Civitas instance with a chosen teller count (tests use
    /// fewer tellers to keep the quadratic tally fast).
    pub fn with_tellers(
        n_voters: usize,
        n_options: u32,
        tellers: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        Self {
            authority: Authority::dkg(tellers, tellers, rng),
            n_voters,
            n_options,
            voters: Vec::new(),
            ballots: Vec::new(),
        }
    }

    /// Registers one voter through all tellers (multi-teller protocol with
    /// per-share designated-verifier proofs).
    fn register_one(&mut self, rng: &mut dyn Rng) {
        let pk = self.authority.public_key;
        let mut credential = Scalar::ZERO;
        let mut roster_entry = Ciphertext::identity();
        for _teller in 0..self.authority.n {
            // Teller share: s_i, Enc(g^{s_i}; r_i), and a DVRP modelled as a
            // Chaum–Pedersen proof the voter verifies.
            let s_i = rng.scalar();
            let g_si = EdwardsPoint::mul_base(&s_i);
            let r_i = rng.scalar();
            let share_ct = vg_crypto::elgamal::encrypt_point_with(&pk, &g_si, &r_i);
            // Prove c1 = r·B ∧ (c2 − g^{s_i}) = r·pk, the correct-encryption
            // relation (witness r_i).
            let stmt = DlEqStatement {
                g1: EdwardsPoint::basepoint(),
                y1: share_ct.c1,
                g2: pk,
                y2: share_ct.c2 - g_si,
            };
            let proof = prove_dleq(&mut Transcript::new(b"civitas-dvrp"), &stmt, &r_i, rng);
            // Voter-side verification of the share.
            verify_dleq(&mut Transcript::new(b"civitas-dvrp"), &stmt, &proof)
                .expect("honest teller share verifies");
            credential += s_i;
            roster_entry = roster_entry + share_ct;
        }
        self.voters.push(CivitasVoter {
            credential,
            roster_entry,
        });
    }

    /// Casts one ballot for voter `idx`.
    fn vote_one(&mut self, idx: usize, vote: u32, rng: &mut dyn Rng) {
        let pk = self.authority.public_key;
        let voter = &self.voters[idx];
        // Fresh encryption of the credential (the voter knows s, not the
        // roster randomness).
        let g_s = EdwardsPoint::mul_base(&voter.credential);
        let (enc_credential, r_c) = encrypt_point(&pk, &g_s, rng);
        let g_v = EdwardsPoint::mul_base(&Scalar::from_u64(vote as u64));
        let (enc_vote, r_v) = encrypt_point(&pk, &g_v, rng);
        // Ballot proofs: credential-encryption PoK plus one simulated
        // OR-branch pair per option (vote wellformedness), mirroring the
        // JCJ ballot proof load.
        let stmt_c = DlEqStatement {
            g1: EdwardsPoint::basepoint(),
            y1: enc_credential.c1,
            g2: pk,
            y2: enc_credential.c2 - g_s,
        };
        let p1 = prove_dleq(
            &mut Transcript::new(b"civitas-ballot-c"),
            &stmt_c,
            &r_c,
            rng,
        );
        verify_dleq(&mut Transcript::new(b"civitas-ballot-c"), &stmt_c, &p1)
            .expect("ballot proof verifies");
        for m in 0..self.n_options {
            let m_pt = EdwardsPoint::mul_base(&Scalar::from_u64(m as u64));
            let stmt_v = DlEqStatement {
                g1: EdwardsPoint::basepoint(),
                y1: enc_vote.c1,
                g2: pk,
                y2: enc_vote.c2 - m_pt,
            };
            if m == vote {
                let p = prove_dleq(
                    &mut Transcript::new(b"civitas-ballot-v"),
                    &stmt_v,
                    &r_v,
                    rng,
                );
                verify_dleq(&mut Transcript::new(b"civitas-ballot-v"), &stmt_v, &p)
                    .expect("vote branch verifies");
            } else {
                // Simulated branch (same cost as a real one).
                let e = rng.scalar();
                let _ = vg_crypto::chaum_pedersen::forge_transcript(&stmt_v, &e, rng);
            }
        }
        self.ballots.push(CivitasBallot {
            enc_credential,
            enc_vote,
        });
    }
}

impl BenchSystem for Civitas {
    fn name(&self) -> &'static str {
        "Civitas"
    }

    fn register_all(&mut self, rng: &mut dyn Rng) {
        for _ in 0..self.n_voters {
            self.register_one(rng);
        }
    }

    fn vote_all(&mut self, votes: &[u32], rng: &mut dyn Rng) {
        assert_eq!(votes.len(), self.n_voters, "one vote per voter");
        for (idx, &v) in votes.iter().enumerate() {
            self.vote_one(idx, v, rng);
        }
    }

    /// The JCJ tally: pairwise-PET duplicate elimination, mixing
    /// (re-randomization pass per teller), pairwise-PET roster matching,
    /// then decryption — quadratic in the ballot/roster sizes.
    fn tally(&mut self, rng: &mut dyn Rng) -> Vec<u64> {
        let pk = self.authority.public_key;
        let a = self.ballots.len();

        // Phase 1: duplicate elimination via pairwise PETs (keep last).
        let mut keep = vec![true; a];
        for i in 0..a {
            for j in (i + 1)..a {
                if !keep[i] || !keep[j] {
                    continue;
                }
                let t = pet(
                    &self.authority,
                    &self.ballots[i].enc_credential,
                    &self.ballots[j].enc_credential,
                    rng,
                )
                .expect("pet runs");
                if t.plaintexts_equal() {
                    keep[i] = false; // Later ballot supersedes.
                }
            }
        }

        // Phase 2: anonymizing re-encryption pass by each teller (the mix;
        // proof cost dominated by the PET phases).
        let mut mixed: Vec<(Ciphertext, Ciphertext)> = self
            .ballots
            .iter()
            .zip(keep.iter())
            .filter(|(_, k)| **k)
            .map(|(b, _)| (b.enc_credential, b.enc_vote))
            .collect();
        for _ in 0..self.authority.n {
            for pair in mixed.iter_mut() {
                pair.0 = rerandomize(&pk, &pair.0, rng).0;
                pair.1 = rerandomize(&pk, &pair.1, rng).0;
            }
        }

        // Phase 3: roster matching via pairwise PETs.
        let mut counts = vec![0u64; self.n_options as usize];
        let mut roster_used = vec![false; self.voters.len()];
        for (cred_ct, vote_ct) in &mixed {
            let mut matched = false;
            for (vi, voter) in self.voters.iter().enumerate() {
                if roster_used[vi] {
                    continue;
                }
                let t = pet(&self.authority, cred_ct, &voter.roster_entry, rng).expect("pet runs");
                if t.plaintexts_equal() {
                    roster_used[vi] = true;
                    matched = true;
                    break;
                }
            }
            if matched {
                let plain = self
                    .authority
                    .threshold_decrypt(vote_ct, rng)
                    .expect("decrypts");
                if let Some(v) = discrete_log_small(&plain, self.n_options as u64) {
                    counts[v as usize] += 1;
                }
            }
        }
        counts
    }

    fn quadratic_tally(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::HmacDrbg;

    #[test]
    fn civitas_counts_correctly() {
        let mut rng = HmacDrbg::from_u64(1);
        let mut sys = Civitas::with_tellers(4, 3, 2, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 2, 2, 1], &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![1, 1, 2]);
    }

    #[test]
    fn civitas_duplicate_credential_ballots_deduped() {
        let mut rng = HmacDrbg::from_u64(2);
        let mut sys = Civitas::with_tellers(2, 2, 2, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 1], &mut rng);
        // Voter 0 re-votes for option 1: the earlier ballot is dropped.
        sys.vote_one(0, 1, &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![0, 2]);
    }

    #[test]
    fn civitas_reports_quadratic() {
        let mut rng = HmacDrbg::from_u64(3);
        let sys = Civitas::with_tellers(1, 2, 2, &mut rng);
        assert!(sys.quadratic_tally());
    }
}
