//! VoteAgain crypto-path simulator \[93\].
//!
//! VoteAgain achieves coercion resistance through deniable re-voting: a
//! trusted registrar issues each voter a pseudonym, voters may re-vote,
//! and the tally hides re-voting patterns by padding each pseudonym's
//! ballot list with dummies, shuffling, and selecting the last real ballot
//! per pseudonym with proofs.
//!
//! Its cryptographic profile (Fig 5a): **trivial registration** (one key
//! generation, 0.1 ms/voter — but under a trust assumption TRIP avoids:
//! the registration authority must not impersonate voters, §7.4), voting
//! comparable to Swiss Post, and the **fastest tally** of the compared
//! systems (≈3 h at 10^6 vs Votegral's 14 h) thanks to a single mix pass
//! plus cheap per-ballot selection proofs.

use vg_crypto::chaum_pedersen::{prove_dleq, verify_dleq, DlEqStatement};
use vg_crypto::dkg::Authority;
use vg_crypto::elgamal::{discrete_log_small, encrypt_point, Ciphertext};
use vg_crypto::schnorr::SigningKey;
use vg_crypto::{EdwardsPoint, Rng, Scalar, Transcript};
use vg_shuffle::MixCascade;

use crate::BenchSystem;

struct VoteAgainVoter {
    /// The voter's signing key (pseudonym key), issued at registration.
    key: SigningKey,
}

struct VoteAgainBallot {
    /// Pseudonym index (which voter key signed).
    voter: usize,
    /// Encrypted vote.
    ct: Ciphertext,
    /// Cast order (the tally keeps each pseudonym's last ballot).
    seq: usize,
}

/// The VoteAgain system state.
pub struct VoteAgain {
    authority: Authority,
    n_voters: usize,
    n_options: u32,
    voters: Vec<VoteAgainVoter>,
    ballots: Vec<VoteAgainBallot>,
    seq: usize,
}

impl VoteAgain {
    /// Creates a VoteAgain instance (four tally servers).
    pub fn new(n_voters: usize, n_options: u32, rng: &mut dyn Rng) -> Self {
        Self {
            authority: Authority::dkg(4, 4, rng),
            n_voters,
            n_options,
            voters: Vec::new(),
            ballots: Vec::new(),
            seq: 0,
        }
    }

    fn vote_one(&mut self, idx: usize, vote: u32, rng: &mut dyn Rng) {
        let pk = self.authority.public_key;
        let g_v = EdwardsPoint::mul_base(&Scalar::from_u64(vote as u64));
        let (ct, r) = encrypt_point(&pk, &g_v, rng);
        // Vote-validity OR-proof (per option), a ballot signature under the
        // pseudonym key, and an epoch tag — the VoteAgain ballot load.
        for m in 0..self.n_options {
            let m_pt = EdwardsPoint::mul_base(&Scalar::from_u64(m as u64));
            let stmt = DlEqStatement {
                g1: EdwardsPoint::basepoint(),
                y1: ct.c1,
                g2: pk,
                y2: ct.c2 - m_pt,
            };
            if m == vote {
                let proof = prove_dleq(&mut Transcript::new(b"voteagain-vote"), &stmt, &r, rng);
                verify_dleq(&mut Transcript::new(b"voteagain-vote"), &stmt, &proof)
                    .expect("ballot proof verifies");
            } else {
                let e = rng.scalar();
                let _ = vg_crypto::chaum_pedersen::forge_transcript(&stmt, &e, rng);
            }
        }
        let _signature = self.voters[idx].key.sign(&ct.to_bytes());
        self.ballots.push(VoteAgainBallot {
            voter: idx,
            ct,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Casts an additional (re-)vote for a voter; only the last counts.
    pub fn revote(&mut self, idx: usize, vote: u32, rng: &mut dyn Rng) {
        self.vote_one(idx, vote, rng);
    }
}

impl BenchSystem for VoteAgain {
    fn name(&self) -> &'static str {
        "VoteAgain"
    }

    /// Registration is a single key generation per voter — the 0.1 ms
    /// column of Fig 5a.
    fn register_all(&mut self, rng: &mut dyn Rng) {
        for _ in 0..self.n_voters {
            self.voters.push(VoteAgainVoter {
                key: SigningKey::generate(rng),
            });
        }
    }

    fn vote_all(&mut self, votes: &[u32], rng: &mut dyn Rng) {
        assert_eq!(votes.len(), self.n_voters, "one vote per voter");
        for (idx, &v) in votes.iter().enumerate() {
            self.vote_one(idx, v, rng);
        }
    }

    /// Dummy-padded filter tally: select each pseudonym's last ballot
    /// (with a cheap selection proof per ballot), pad with dummies to hide
    /// re-voting counts, one mix cascade, then verifiable decryption.
    fn tally(&mut self, rng: &mut dyn Rng) -> Vec<u64> {
        let pk = self.authority.public_key;

        // Selection: last ballot per pseudonym; each selection carries a
        // small proof (modelled as one Chaum–Pedersen per kept ballot).
        let mut last: Vec<Option<usize>> = vec![None; self.n_voters];
        for (i, b) in self.ballots.iter().enumerate() {
            match last[b.voter] {
                Some(j) if self.ballots[j].seq > b.seq => {}
                _ => last[b.voter] = Some(i),
            }
        }
        let mut selected: Vec<Ciphertext> = Vec::new();
        for slot in last.iter().flatten() {
            let ct = self.ballots[*slot].ct;
            let z = rng.scalar();
            let blinded = ct.c1 * z;
            let stmt = DlEqStatement {
                g1: EdwardsPoint::basepoint(),
                y1: EdwardsPoint::mul_base(&z),
                g2: ct.c1,
                y2: blinded,
            };
            let proof = prove_dleq(&mut Transcript::new(b"voteagain-select"), &stmt, &z, rng);
            verify_dleq(&mut Transcript::new(b"voteagain-select"), &stmt, &proof)
                .expect("selection proof verifies");
            selected.push(ct);
        }
        // Dummy padding: one dummy per superseded ballot (hides re-voting
        // multiplicities), plus padding to the mix minimum.
        let superseded = self.ballots.len() - selected.len();
        let mut inputs = selected;
        let n_real = inputs.len();
        for _ in 0..superseded.max(2usize.saturating_sub(n_real)) {
            inputs.push(Ciphertext::identity());
        }
        if inputs.len() < 2 {
            inputs.push(Ciphertext::identity());
        }

        // One verifiable mix cascade.
        let cascade = MixCascade::new(inputs.len(), 4);
        let transcript = cascade.mix(&pk, &inputs, rng);
        cascade.verify(&pk, &transcript).expect("own mix verifies");

        // Verifiable decryption; identities are the dummies.
        let mut counts = vec![0u64; self.n_options as usize];
        let mut identity_seen = 0usize;
        for ct in transcript.outputs() {
            let plain = self.authority.threshold_decrypt(ct, rng).expect("decrypts");
            if plain == EdwardsPoint::IDENTITY {
                identity_seen += 1;
                continue;
            }
            if let Some(v) = discrete_log_small(&plain, self.n_options as u64) {
                counts[v as usize] += 1;
            }
        }
        // Real votes for option 0 decrypt to the identity too; recover
        // them from the dummy accounting.
        let dummies = transcript.outputs().len() - n_real;
        counts[0] += (identity_seen - dummies) as u64;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_crypto::HmacDrbg;

    #[test]
    fn voteagain_counts_correctly() {
        let mut rng = HmacDrbg::from_u64(1);
        let mut sys = VoteAgain::new(4, 3, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 1, 2, 1], &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![1, 2, 1]);
    }

    #[test]
    fn voteagain_revote_keeps_last() {
        let mut rng = HmacDrbg::from_u64(2);
        let mut sys = VoteAgain::new(2, 2, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 0], &mut rng);
        sys.revote(0, 1, &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![1, 1]);
    }

    #[test]
    fn voteagain_zero_option_votes_counted() {
        // Option 0 encodes to g^0 = identity; ensure the dummy accounting
        // distinguishes real zero-votes from padding.
        let mut rng = HmacDrbg::from_u64(3);
        let mut sys = VoteAgain::new(3, 2, &mut rng);
        sys.register_all(&mut rng);
        sys.vote_all(&[0, 0, 0], &mut rng);
        assert_eq!(sys.tally(&mut rng), vec![3, 0]);
    }
}
