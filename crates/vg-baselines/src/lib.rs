//! Crypto-path simulators for the paper's baseline systems (§7).
//!
//! The evaluation compares Votegral against three state-of-the-art
//! e-voting systems: **Civitas** \[27\] (JCJ with fake credentials and a
//! quadratic PET-based tally), **Swiss Post** \[145\] (verifiable, not
//! coercion-resistant, return-code based) and **VoteAgain** \[93\]
//! (coercion resistance via deniable re-voting with dummy ballots).
//!
//! Per `DESIGN.md` §2, these are *crypto-path simulators*: the authors'
//! original implementations (Java/JML, the vendor's simulator, Python) are
//! unavailable or proprietary, so each baseline is re-implemented over the
//! same edwards25519 group with the per-phase cryptographic operation
//! counts of its published protocol. Every system produces a *correct*
//! election result (tested), and the relative cost ordering of Fig 5 —
//! who wins each phase, where the quadratic blow-up bites — is what these
//! reproduce. Absolute numbers differ from the paper (Civitas originally
//! used large-modulus groups, which is part of its reported gap; §7.3).
//!
//! This crate forbids `unsafe` code (`#![forbid(unsafe_code)]`): the
//! whole workspace is safe Rust, locked in by the `vg-lint` analyzer's
//! `forbid-unsafe` rule.

#![forbid(unsafe_code)]

pub mod civitas;
pub mod swisspost;
pub mod voteagain;

use vg_crypto::Rng;

pub use civitas::Civitas;
pub use swisspost::SwissPost;
pub use voteagain::VoteAgain;

/// A voting system under benchmark: three timed phases.
///
/// `vg-sim` provides the TRIP-Core / Votegral implementation of this trait;
/// the harness times each phase across systems and voter counts (Fig 5).
pub trait BenchSystem {
    /// Display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Registers every voter (the registration phase of Fig 5a).
    fn register_all(&mut self, rng: &mut dyn Rng);

    /// Casts one ballot per voter with the given choices.
    ///
    /// # Panics
    ///
    /// Panics if `votes.len()` differs from the voter count.
    fn vote_all(&mut self, votes: &[u32], rng: &mut dyn Rng);

    /// Tallies and returns per-option counts.
    fn tally(&mut self, rng: &mut dyn Rng) -> Vec<u64>;

    /// `true` when tally time grows quadratically in the voter count
    /// (Civitas); the harness extrapolates instead of measuring large n,
    /// as the paper does beyond 10^4 voters.
    fn quadratic_tally(&self) -> bool {
        false
    }
}
