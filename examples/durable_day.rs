//! Crash recovery walkthrough: a registration-and-voting day on durable
//! (WAL-backed) ledger storage, killed at several byte offsets, reopened
//! and replayed back to bit-identical signed tree heads.
//!
//! The invariant on display is the WAL commit point: every accepted
//! record is appended (and group-fsynced) *before* the in-memory Merkle
//! state advances, and signed heads are persisted only after the records
//! they cover. A kill at any instant therefore leaves each file a clean
//! byte prefix; reopening truncates at most one torn final record and
//! replays the rest, and re-running the deterministic day no-ops through
//! the persisted prefix and lands on exactly the uncrashed heads.
//!
//! Writes the recovered-head digests as JSON (CI uploads them as an
//! artifact): `cargo run --example durable_day --release -- [out.json]`

use std::path::{Path, PathBuf};

use votegral::crypto::HmacDrbg;
use votegral::ledger::{simulate_crash, TreeHead, VoterId};
use votegral::votegral::{Election, ElectionBuilder, Tallying};

const VOTERS: u64 = 6;
const SEED: u64 = 0xDA1;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vg-durable-day-{}-{tag}", std::process::id()))
}

/// One full deterministic day. With `dir` set, ledgers live on the
/// durable backend there — on a directory holding a crashed day's WAL,
/// `build` replays the survivors and the re-run dedups against them.
fn run_day(dir: Option<&Path>) -> Election<Tallying> {
    let mut rng = HmacDrbg::from_u64(SEED);
    let mut builder = ElectionBuilder::new().voters(VOTERS).options(2);
    if let Some(dir) = dir {
        builder = builder.storage(dir);
    }
    let mut election = builder.build(&mut rng);

    let mut devices = Vec::new();
    for v in 1..=VOTERS {
        let (_, vsd) = election
            .register_and_activate(VoterId(v), 0, &mut rng)
            .expect("registers");
        devices.push(vsd);
    }
    // Mid-day commit barrier: everything registered so far is now
    // fsynced and covered by persisted signed heads.
    election.persist_ledgers().expect("persist");

    let mut voting = election.open_voting();
    for (i, vsd) in devices.iter().enumerate() {
        voting
            .cast(&vsd.credentials[0], ((i + 1) % 2) as u32, &mut rng)
            .expect("casts");
    }
    let mut election = voting.close();
    // End-of-day barrier: the ballot ledger joins the durable prefix.
    election.persist_ledgers().expect("persist");
    election
}

fn heads(election: &Election<Tallying>) -> [TreeHead; 3] {
    let ledger = election.ledger();
    [
        ledger.registration.tree_head(),
        ledger.envelopes.tree_head(),
        ledger.ballots.tree_head(),
    ]
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "recovered-heads.json".into());

    println!("== Durable day: kill, reopen, replay ==\n");

    // The uncrashed references: a volatile run (the durable store is a
    // flat Merkle tree, so roots must match in-memory bit-for-bit) and
    // the durable day whose WAL directory the crashes are carved from.
    let reference = heads(&run_day(None));
    let day_dir = scratch_dir("day");
    let _ = std::fs::remove_dir_all(&day_dir);
    let durable = heads(&run_day(Some(&day_dir)));
    assert_eq!(
        reference, durable,
        "durable day must match the volatile reference"
    );
    println!(
        "reference heads: registration={}… envelopes={}… ballots={}…\n",
        &hex(&reference[0].root)[..16],
        &hex(&reference[1].root)[..16],
        &hex(&reference[2].root)[..16],
    );

    // Kill the day at several byte offsets — early, mid, late — each a
    // SIGKILL-equivalent prefix cut (usually tearing a frame mid-write),
    // then reopen and re-run the same deterministic day on the wreckage.
    let mut entries = Vec::new();
    for keep_permille in [103u32, 457, 761] {
        let crash_dir = scratch_dir(&format!("crash-{keep_permille}"));
        let _ = std::fs::remove_dir_all(&crash_dir);
        let report = simulate_crash(&day_dir, &crash_dir, keep_permille).expect("crash simulation");
        let recovered = heads(&run_day(Some(&crash_dir)));
        let identical = recovered == reference;
        println!(
            "kill @ {keep_permille}‰: {} records survived, {} lost, torn tail: {} -> \
             replayed to identical heads: {identical}",
            report.surviving_records, report.dropped_records, report.torn_tail
        );
        assert!(
            identical,
            "recovered heads diverged at {keep_permille} permille"
        );

        let ledgers = ["registration", "envelopes", "ballots"]
            .iter()
            .zip(&recovered)
            .map(|(name, head)| {
                format!(
                    "{{\"ledger\": \"{name}\", \"size\": {}, \"root\": \"{}\"}}",
                    head.size,
                    hex(&head.root)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        entries.push(format!(
            "  {{\"keep_permille\": {keep_permille}, \"surviving_records\": {}, \
             \"dropped_records\": {}, \"torn_tail\": {}, \"identical_to_reference\": {identical}, \
             \"recovered_heads\": [{ledgers}]}}",
            report.surviving_records, report.dropped_records, report.torn_tail
        ));
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
    let _ = std::fs::remove_dir_all(&day_dir);

    let json = format!(
        "{{\n\"bench\": \"durable_day\",\n\"seed\": {SEED},\n\"voters\": {VOTERS},\n\
         \"crashes\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).expect("write digests");
    println!("\nrecovered-head digests written to {out}");
}
