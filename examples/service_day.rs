//! A full registration day — check-in, in-booth ceremonies, check-out,
//! activation — run three times from the same seed: in-process, over a
//! plaintext TCP loopback socket, and over TCP secured by the mutually
//! authenticated encrypted channel. The resulting signed ledger tree
//! heads are **bit-identical**, which is the service layer's
//! equivalence contract.
//!
//! Run with: `cargo run --example service_day --release`

use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::service::{register_and_activate_day, TransportPlan};
use votegral::trip::fleet::{FleetConfig, KioskFleet};
use votegral::trip::setup::{TripConfig, TripSystem};

fn main() {
    let seed = [42u8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=24).map(|v| (VoterId(v), (v % 3) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 8,
        threads: 2,
        seed,
    });
    let config = TripConfig {
        n_voters: 24,
        n_kiosks: 3,
        ..TripConfig::default()
    };

    println!("== Registration day over typed registrar services ==");
    println!("24 voters, 3 kiosks, pool windows of 8, 2 worker threads.\n");

    let mut heads = Vec::new();
    for transport in [
        TransportPlan::IN_PROCESS,
        TransportPlan::TCP,
        TransportPlan::SECURE_TCP,
    ] {
        // Identical deterministic setup for both runs.
        let mut rng = HmacDrbg::from_u64(7);
        let mut system = TripSystem::setup(config.clone(), &mut rng);

        let mut sessions = 0usize;
        let mut credentials = 0usize;
        register_and_activate_day(&fleet, &mut system, &queue, transport, |_, vsd| {
            sessions += 1;
            credentials += vsd.credentials.len();
        })
        .expect("registration day runs");

        let reg = system.ledger.registration.tree_head();
        let env = system.ledger.envelopes.tree_head();
        println!("{transport:?}:");
        println!("  sessions registered+activated: {sessions}");
        println!("  credentials on devices:        {credentials}");
        println!("  L_R head: size {} root {}", reg.size, hex(&reg.root[..8]));
        println!("  L_E head: size {} root {}", env.size, hex(&env.root[..8]));
        reg.verify(&system.ledger.registration.operator_key())
            .expect("signed head verifies");
        heads.push((reg.root, env.root, reg.size, env.size));
    }

    assert_eq!(
        heads[0], heads[1],
        "TCP and in-process ledgers must be bit-identical"
    );
    assert_eq!(
        heads[0], heads[2],
        "secure-channel ledgers must be bit-identical too"
    );
    println!("\nAll three transports produced bit-identical signed ledger heads.");
    println!("The registrar can move off-box — and under encryption — without");
    println!("changing a single ledger byte.");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
