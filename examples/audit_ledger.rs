//! Auditing the public bulletin board: tree heads, inclusion proofs,
//! consistency proofs, and tamper detection — on both storage backends.
//!
//! Run with: `cargo run --example audit_ledger --release`

use votegral::crypto::HmacDrbg;
use votegral::ledger::{verify_consistency_heads, LedgerBackend, TamperEvidentLog, VoterId};
use votegral::votegral::{Election, ElectionBuilder, Tallying};

fn run_audit(backend: LedgerBackend, seed: u64) -> Election<Tallying> {
    let mut rng = HmacDrbg::from_u64(seed);

    println!("-- Backend: {backend:?} --");
    let mut election = ElectionBuilder::new()
        .voters(3)
        .options(2)
        .backend(backend)
        .build(&mut rng);

    // A few registrations and votes produce ledger history.
    let mut devices = Vec::new();
    let mut head_after_first = None;
    for v in 1..=3u64 {
        let (_, vsd) = election
            .register_and_activate(VoterId(v), 0, &mut rng)
            .expect("registers");
        devices.push(vsd);
        if v == 1 {
            head_after_first = Some(election.ledger().registration.tree_head());
        }
    }
    let mut voting = election.open_voting();
    for (i, vsd) in devices.iter().enumerate() {
        voting
            .cast(&vsd.credentials[0], ((i + 1) % 2) as u32, &mut rng)
            .unwrap();
    }
    let election = voting.close();

    let reg = &election.ledger().registration;
    let head = reg.tree_head();
    println!(
        "Registration ledger: {} records, head root {:02x?}…",
        head.size,
        &head.root[..4]
    );

    // 1. The signed tree head verifies under the operator key.
    head.verify(&reg.operator_key()).expect("head signature");
    println!("  [1] signed tree head verifies");

    // 2. Inclusion: every record is provably in the tree (the proof
    // object is backend-tagged — flat path or shard path + rollup).
    for (i, record) in reg.records().iter().enumerate() {
        let proof = reg.prove_inclusion(i);
        assert!(
            TamperEvidentLog::verify_inclusion(&head, record, i, &proof),
            "inclusion of record {i}"
        );
    }
    println!(
        "  [2] inclusion proofs verify for all {} records",
        head.size
    );

    // 3. Consistency: today's ledger extends the snapshot taken earlier —
    // nothing was rewritten.
    let old = head_after_first.expect("snapshot");
    let proof = reg.prove_consistency(old.size as usize);
    assert!(verify_consistency_heads(&old, &head, &proof));
    println!(
        "  [3] consistency proof: head at size {} extends to size {}",
        old.size, head.size
    );

    // 4. Tamper demonstration: a forged head fails.
    let mut forged = reg.tree_head();
    forged.root[0] ^= 1;
    assert!(forged.verify(&reg.operator_key()).is_err());
    println!("  [4] forged tree head rejected");

    // 5. Public counts anyone can check against census data (§4.2).
    println!(
        "Public aggregates: {} active registrations, {} envelopes committed, \
         {} challenges revealed, {} ballots",
        reg.active_count(),
        election.ledger().envelopes.committed_count(),
        election.ledger().envelopes.revealed_count(),
        election.ledger().ballots.len()
    );
    election
}

fn main() {
    println!("== Ledger audit walkthrough ==");
    run_audit(LedgerBackend::InMemory, 5);
    println!();
    // The same audit passes unchanged on the sharded backend: proofs are
    // backend-tagged, auditors stay backend-agnostic.
    run_audit(LedgerBackend::sharded(4), 5);
}
