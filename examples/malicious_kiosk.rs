//! The integrity adversary (§5.1): a compromised kiosk that steals real
//! credentials, and how the process ordering plus voter notifications
//! expose it.
//!
//! Run with: `cargo run --example malicious_kiosk --release`

use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::sim::usability::{evasion_probability, log2_evasion_probability};
use votegral::trip::protocol::{register_voter, trace_shows_honest_real_flow};
use votegral::trip::{KioskBehavior, TripConfig, TripSystem};

fn main() {
    let mut rng = HmacDrbg::from_u64(13);

    println!("== Malicious kiosk scenario ==");
    println!("A compromised kiosk runs the fake-credential process while");
    println!("claiming to issue a real credential, keeping the real key.\n");

    let mut system = TripSystem::setup_with_behavior(
        TripConfig::with_voters(3),
        KioskBehavior::StealsRealCredential,
        &mut rng,
    );

    for v in 1..=3u64 {
        let outcome =
            register_voter(&mut system, VoterId(v), 1, &mut rng).expect("session completes");
        let honest_order = trace_shows_honest_real_flow(&outcome.events);
        println!("Voter {v} booth event trace:");
        for e in &outcome.events {
            println!("    {e:?}");
        }
        println!(
            "  trained-voter check (commit printed before envelope?): {}",
            if honest_order {
                "OK"
            } else {
                "VIOLATION — reportable"
            }
        );
    }

    println!(
        "\nCredentials stolen by the kiosk: {}",
        system.adversary_loot.len()
    );
    println!("(Each is a real credential whose votes would count — if undetected.)\n");

    println!("Detection economics (§7.5):");
    for (label, p) in [("with security education", 0.47), ("without", 0.10)] {
        println!(
            "  voter detection rate {label}: {:.0}% → kiosk evades 50 voters \
             with probability {:.4}",
            p * 100.0,
            evasion_probability(p, 50)
        );
    }
    println!(
        "  at 1000 voters (p = 10%): 2^{:.1} — cryptographically negligible",
        log2_evasion_probability(0.10, 1000)
    );
}
