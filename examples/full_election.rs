//! A fuller election: a population of voters with realistic behaviour
//! (fake-credential and vote distributions), re-voting, a coercion
//! attempt, and complete universal verification.
//!
//! Run with: `cargo run --example full_election --release [n_voters]`

use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::sim::{FakeCredentialDist, VoteDist};
use votegral::trip::TripConfig;
use votegral::votegral::Election;

fn main() {
    let n_voters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let n_options = 3u32;
    let mut rng = HmacDrbg::from_u64(99);

    println!("== Full election: {n_voters} voters, {n_options} options ==");
    let mut election = Election::new(TripConfig::with_voters(n_voters), n_options, &mut rng);
    let d_c = FakeCredentialDist::default();
    let d_v = VoteDist::weighted(&[3.0, 2.0, 1.0]);

    let mut expected = vec![0u64; n_options as usize];
    let mut fakes_created = 0usize;
    for v in 1..=n_voters {
        let n_fakes = d_c.sample(&mut rng);
        fakes_created += n_fakes;
        let (_, vsd) = election
            .register_and_activate(VoterId(v), n_fakes, &mut rng)
            .expect("registration");
        // Real vote.
        let vote = d_v.sample(&mut rng);
        expected[vote as usize] += 1;
        election.cast(&vsd.credentials[0], vote, &mut rng).unwrap();
        // Every fake credential casts a decoy ballot.
        for fake in &vsd.credentials[1..] {
            let decoy = d_v.sample(&mut rng);
            election.cast(fake, decoy, &mut rng).unwrap();
        }
        // Some voters change their mind and re-vote with the same real
        // credential (only the last counts).
        if v % 4 == 0 {
            let new_vote = d_v.sample(&mut rng);
            expected[vote as usize] -= 1;
            expected[new_vote as usize] += 1;
            election.cast(&vsd.credentials[0], new_vote, &mut rng).unwrap();
        }
    }

    println!(
        "Registered {n_voters} voters ({} fake credentials among them).",
        fakes_created
    );
    println!("Ballots on the ledger: {}", election.trip.ledger.ballots.len());

    let t0 = std::time::Instant::now();
    let transcript = election.tally(&mut rng).expect("tally");
    println!(
        "Tally finished in {:.2}s: counts {:?}",
        t0.elapsed().as_secs_f64(),
        transcript.result.counts
    );
    println!(
        "  counted {} · superseded {} · unmatched(fakes) {}",
        transcript.result.counted, transcript.superseded, transcript.result.unmatched
    );

    let t0 = std::time::Instant::now();
    let verified = election.verify(&transcript).expect("verifies");
    println!(
        "Universal verification finished in {:.2}s and agrees.",
        t0.elapsed().as_secs_f64()
    );
    assert_eq!(verified.counts, expected, "tally matches ground truth");
    println!("Ground truth matches: {expected:?}");
}
