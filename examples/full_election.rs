//! A fuller election: a population of voters with realistic behaviour
//! (fake-credential and vote distributions), batched casting on the
//! sharded ledger backend, re-voting, a coercion attempt, and complete
//! universal verification.
//!
//! Run with: `cargo run --example full_election --release [n_voters]`

use votegral::crypto::HmacDrbg;
use votegral::ledger::{LedgerBackend, VoterId};
use votegral::sim::{FakeCredentialDist, VoteDist};
use votegral::trip::vsd::{ActivatedCredential, Vsd};
use votegral::votegral::ElectionBuilder;

fn main() {
    let n_voters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let n_options = 3u32;
    let mut rng = HmacDrbg::from_u64(99);

    println!("== Full election: {n_voters} voters, {n_options} options ==");
    let mut election = ElectionBuilder::new()
        .voters(n_voters)
        .options(n_options)
        .backend(LedgerBackend::sharded(4))
        .threads(votegral::crypto::par::default_threads())
        .build(&mut rng);
    let d_c = FakeCredentialDist::default();
    let d_v = VoteDist::weighted(&[3.0, 2.0, 1.0]);

    // Registration phase.
    let mut devices: Vec<Vsd> = Vec::new();
    let mut fakes_created = 0usize;
    for v in 1..=n_voters {
        let n_fakes = d_c.sample(&mut rng);
        fakes_created += n_fakes;
        let (_, vsd) = election
            .register_and_activate(VoterId(v), n_fakes, &mut rng)
            .expect("registration");
        devices.push(vsd);
    }
    println!(
        "Registered {n_voters} voters ({} fake credentials among them).",
        fakes_created
    );

    // Voting phase: sample every voter's ballots, then cast the whole
    // wave through the batch fast path.
    let mut voting = election.open_voting();
    let mut expected = vec![0u64; n_options as usize];
    let mut wave: Vec<(&ActivatedCredential, u32)> = Vec::new();
    let mut revotes: Vec<(&ActivatedCredential, u32)> = Vec::new();
    for (i, vsd) in devices.iter().enumerate() {
        let v = i as u64 + 1;
        // Real vote.
        let vote = d_v.sample(&mut rng);
        expected[vote as usize] += 1;
        wave.push((&vsd.credentials[0], vote));
        // Every fake credential casts a decoy ballot.
        for fake in &vsd.credentials[1..] {
            wave.push((fake, d_v.sample(&mut rng)));
        }
        // Some voters change their mind and re-vote with the same real
        // credential (only the last counts).
        if v.is_multiple_of(4) {
            let new_vote = d_v.sample(&mut rng);
            expected[vote as usize] -= 1;
            expected[new_vote as usize] += 1;
            revotes.push((&vsd.credentials[0], new_vote));
        }
    }
    let t0 = std::time::Instant::now();
    voting.cast_batch(&wave, &mut rng).expect("wave accepted");
    voting
        .cast_batch(&revotes, &mut rng)
        .expect("revotes accepted");
    println!(
        "Cast {} ballots (+{} revotes) in {:.2}s via cast_batch on the sharded backend.",
        wave.len(),
        revotes.len(),
        t0.elapsed().as_secs_f64()
    );
    println!("Ballots on the ledger: {}", voting.ledger().ballots.len());

    // Tally phase.
    let tallying = voting.close();
    let t0 = std::time::Instant::now();
    let transcript = tallying.tally(&mut rng).expect("tally");
    println!(
        "Tally finished in {:.2}s: counts {:?}",
        t0.elapsed().as_secs_f64(),
        transcript.result.counts
    );
    println!(
        "  counted {} · superseded {} · unmatched(fakes) {}",
        transcript.result.counted, transcript.superseded, transcript.result.unmatched
    );

    let t0 = std::time::Instant::now();
    let verified = tallying.verify(&transcript).expect("verifies");
    println!(
        "Universal verification finished in {:.2}s and agrees.",
        t0.elapsed().as_secs_f64()
    );
    assert_eq!(verified.counts, expected, "tally matches ground truth");
    println!("Ground truth matches: {expected:?}");
}
