//! Quickstart: a two-voter election end to end through the phase-typed
//! session API.
//!
//! Run with: `cargo run --example quickstart --release`

use votegral::crypto::{HmacDrbg, OsRng, Rng};
use votegral::ledger::VoterId;
use votegral::votegral::ElectionBuilder;

fn main() {
    // Deterministic RNG for a reproducible demo; swap for OsRng in
    // anything real.
    let mut rng: Box<dyn Rng> = if std::env::var_os("VOTEGRAL_OS_RNG").is_some() {
        Box::new(OsRng::new())
    } else {
        Box::new(HmacDrbg::from_u64(2025))
    };
    let rng = rng.as_mut();

    println!("== Votegral quickstart ==");
    println!("Setting up an election: 2 voters, 3 ballot options…");
    let mut election = ElectionBuilder::new().voters(2).options(3).build(rng);

    // Voter 1 registers in person, creating one real + one fake credential.
    println!("Voter 1 registers (1 real + 1 fake credential)…");
    let (outcome, vsd1) = election
        .register_and_activate(VoterId(1), 1, rng)
        .expect("registration succeeds");
    println!(
        "  booth events: {:?}",
        outcome
            .events
            .iter()
            .map(|e| format!("{e:?}"))
            .collect::<Vec<_>>()
    );
    println!("  activated credentials: {}", vsd1.credentials.len());

    // Voter 2 registers with no fakes.
    println!("Voter 2 registers (no fakes)…");
    let (_, vsd2) = election
        .register_and_activate(VoterId(2), 0, rng)
        .expect("registration succeeds");

    // Registration closes; the session moves to the voting phase (from
    // here on, `register_and_activate` is a compile error).
    let mut voting = election.open_voting();

    // Votes: voter 1 really wants option 2 but is coerced toward 0;
    // they cast the real vote secretly and hand the coercer a fake.
    println!("Voter 1 casts real vote for option 2, fake (coerced) vote for option 0.");
    voting.cast(&vsd1.credentials[0], 2, rng).unwrap();
    voting.cast(&vsd1.credentials[1], 0, rng).unwrap();
    println!("Voter 2 casts vote for option 1.");
    voting.cast(&vsd2.credentials[0], 1, rng).unwrap();

    // Voting closes; the session moves to the tally phase.
    let tallying = voting.close();
    println!("Tallying (4-mixer cascades, deterministic tagging, threshold decryption)…");
    let transcript = tallying.tally(rng).expect("tally runs");
    println!("  counts: {:?}", transcript.result.counts);
    println!("  counted: {}", transcript.result.counted);
    println!(
        "  unmatched (fake-credential ballots): {}",
        transcript.result.unmatched
    );

    print!("Independent verification of the full transcript… ");
    tallying.verify(&transcript).expect("verifies");
    println!("OK");

    assert_eq!(transcript.result.counts, vec![0, 1, 1]);
    println!("The coerced vote did not count; the real votes did.");
}
