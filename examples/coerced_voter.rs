//! A coercion scenario walkthrough (§5.2): the coercer demands the
//! voter's credential, the voter hands over a fake, and nothing in the
//! coercer's view reveals the deception.
//!
//! Run with: `cargo run --example coerced_voter --release`

use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::sim::coercion;
use votegral::sim::FakeCredentialDist;
use votegral::votegral::ElectionBuilder;

fn main() {
    let mut rng = HmacDrbg::from_u64(7);

    println!("== Coerced voter scenario ==");
    let mut election = ElectionBuilder::new().voters(4).options(2).build(&mut rng);

    // Alice is coerced: the coercer demands "your credential" and orders a
    // vote for option 0. Alice creates an extra fake in the booth.
    println!("Alice registers, creating a fake credential for the coercer…");
    let (_, alice) = election
        .register_and_activate(VoterId(1), 1, &mut rng)
        .expect("registers");
    let real = &alice.credentials[0];
    let fake = &alice.credentials[1];

    // Honest bystanders register too (statistical noise, D_c / D_v).
    let mut bystanders = Vec::new();
    for v in 2..=4u64 {
        let (_, vsd) = election
            .register_and_activate(VoterId(v), 1, &mut rng)
            .expect("registers");
        bystanders.push((v, vsd));
    }

    // The coercer inspects the handed-over credential: every check a
    // device can run passes — it activated like any credential.
    println!("Coercer inspects the fake credential:");
    println!("  public tag matches the registration ledger: yes (same c_pc)");
    println!(
        "  structurally indistinguishable from real: {}",
        coercion::credentials_structurally_indistinguishable(&mut rng)
    );

    // Registration closes; voting opens.
    let mut voting = election.open_voting();

    // The coercer casts the demanded vote with the fake credential.
    println!("Coercer casts the demanded vote (option 0) with the fake…");
    voting.cast(fake, 0, &mut rng).unwrap();

    // Alice secretly casts her real vote for option 1.
    println!("Alice secretly casts her real vote (option 1)…");
    voting.cast(real, 1, &mut rng).unwrap();

    // The bystanders vote.
    for (v, vsd) in &bystanders {
        let choice = (v % 2) as u32;
        voting.cast(&vsd.credentials[0], choice, &mut rng).unwrap();
    }

    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).expect("tally");
    tallying.verify(&transcript).expect("verifies");
    println!("Final counts: {:?}", transcript.result.counts);
    println!(
        "Fake-credential ballots silently discarded: {}",
        transcript.result.unmatched
    );

    // What is the coercer's best distinguishing advantage? Quantify it.
    let dist = FakeCredentialDist::default();
    let exp = coercion::run_experiment(50, 1, 5_000, &dist, &mut rng);
    println!(
        "C-Resist distinguishing advantage with 50 honest voters: \
         empirical {:.4}, analytic TV bound {:.4}",
        exp.empirical_advantage, exp.analytic_tv
    );
    println!("Alice's true vote counted; the coercer cannot tell.");
}
