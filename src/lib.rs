//! Votegral: coercion-resistant e-voting with TRIP paper-credential
//! registration — a from-scratch Rust reproduction of the SOSP 2025 paper
//! *"TRIP: Coercion-resistant Registration for E-Voting with Verifiability
//! and Usability in Votegral"*.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`crypto`]: the cryptographic substrate (edwards25519, SHA-2, Schnorr,
//!   ElGamal, Chaum–Pedersen IZKPs, DKG, Pedersen commitments, PETs);
//! - [`ledger`]: the tamper-evident public bulletin board (L_R, L_E, L_V);
//! - [`service`]: the transport-agnostic registrar service layer (typed
//!   RPC boundaries for officials, printers, ledger ingestion and
//!   activation, over in-process or TCP transports);
//! - [`shuffle`]: the Bayer–Groth verifiable shuffle and mix cascade;
//! - [`trip`]: the TRIP registration protocol — the paper's contribution;
//! - [`votegral`]: ballot casting and the verifiable linear-time tally;
//! - [`baselines`]: Civitas, Swiss Post and VoteAgain crypto-path
//!   simulators;
//! - [`hardware`]: simulated kiosk peripherals (QR codec with
//!   Reed–Solomon, device profiles, printer/scanner models);
//! - [`sim`]: workloads, the usability/verifiability/coercion analyses and
//!   the figure runners.
//!
//! # Quickstart
//!
//! An election is a *phase-typed session*: [`votegral::ElectionBuilder`]
//! opens the registration phase, and consuming transitions
//! (`open_voting`, `close`) move it through voting into tallying.
//! Calling a phase's methods out of order is a compile error, not a
//! runtime bug.
//!
//! ```
//! use votegral::crypto::HmacDrbg;
//! use votegral::ledger::{LedgerBackend, VoterId};
//! use votegral::votegral::ElectionBuilder;
//!
//! let mut rng = HmacDrbg::from_u64(42);
//! let mut election = ElectionBuilder::new()
//!     .voters(2)
//!     .options(2)
//!     .backend(LedgerBackend::sharded(4)) // or LedgerBackend::InMemory
//!     .build(&mut rng);
//!
//! // Registration phase: one fake credential; activate both on a device.
//! let (_, vsd) = election
//!     .register_and_activate(VoterId(1), 1, &mut rng)
//!     .unwrap();
//!
//! // Voting phase: real vote for option 1; coerced (fake) vote for 0.
//! // Batches go through the ledger's parallel admission fast path.
//! let mut voting = election.open_voting();
//! voting
//!     .cast_batch(&[(&vsd.credentials[0], 1), (&vsd.credentials[1], 0)], &mut rng)
//!     .unwrap();
//!
//! // Tally phase: only the real vote counts, and anyone can verify.
//! let tallying = voting.close();
//! let transcript = tallying.tally(&mut rng).unwrap();
//! assert_eq!(transcript.result.counts, vec![0, 1]);
//! tallying.verify(&transcript).unwrap();
//! ```
//!
//! This crate forbids `unsafe` code (`#![forbid(unsafe_code)]`): the
//! whole workspace is safe Rust, locked in by the `vg-lint` analyzer's
//! `forbid-unsafe` rule.

#![forbid(unsafe_code)]

pub use vg_baselines as baselines;
pub use vg_crypto as crypto;
pub use vg_hardware as hardware;
pub use vg_ledger as ledger;
pub use vg_service as service;
pub use vg_shuffle as shuffle;
pub use vg_sim as sim;
pub use vg_trip as trip;
pub use vg_votegral as votegral;
