//! Workspace-level properties of the kiosk-fleet registration engine:
//! outcome equivalence with the sequential reference under arbitrary
//! fleet shapes, fakes-policy preservation through the election facade,
//! and adversarial kiosk detection inside a fleet.

use proptest::prelude::*;
use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::trip::fleet::{FleetConfig, KioskFleet};
use votegral::trip::kiosk::KioskBehavior;
use votegral::trip::protocol::{
    activate_all, register_voter, register_voter_seeded, trace_shows_honest_real_flow,
};
use votegral::trip::setup::{TripConfig, TripSystem};
use votegral::votegral::{ElectionBuilder, FakesPolicy};

fn trip_config(n_voters: u64, n_kiosks: usize) -> TripConfig {
    TripConfig {
        n_voters,
        n_kiosks,
        ..TripConfig::default()
    }
}

/// Everything observable about a finished registration run: ledger tree
/// heads, active-roll size, and per-credential identifying bytes in queue
/// order.
fn run_fingerprint(
    system: &TripSystem,
    outcomes: &[votegral::trip::protocol::RegistrationOutcome],
) -> (Vec<u8>, Vec<u8>, usize, Vec<Vec<u8>>) {
    let creds = outcomes
        .iter()
        .flat_map(|o| o.all_credentials())
        .map(|c| {
            let mut bytes = c.receipt.commit_qr.kiosk_sig.to_bytes().to_vec();
            bytes.extend_from_slice(&c.receipt.checkout_qr.kiosk_sig.to_bytes());
            bytes.extend_from_slice(&c.receipt.response_qr.credential_sk.to_bytes());
            bytes.extend_from_slice(&c.envelope.challenge.to_bytes());
            bytes.push(c.envelope.symbol.tag());
            bytes
        })
        .collect();
    (
        system.ledger.registration.tree_head().root.to_vec(),
        system.ledger.envelopes.tree_head().root.to_vec(),
        system.ledger.registration.active_count(),
        creds,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any (kiosks, pool batch, thread count, seed, queue shape), a
    /// fleet run is bit-identical — same ledgers, same credentials, same
    /// fakes policy — to the sequential `register_voter_seeded` loop over
    /// the same queue, and every credential it minted activates.
    #[test]
    fn fleet_equivalent_to_sequential_for_any_shape(
        seed64 in any::<u64>(),
        n_kiosks in 1usize..5,
        pool_batch in 1usize..7,
        threads in 1usize..5,
        fake_counts in proptest::collection::vec(0usize..3, 5),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());

        // Sequential reference: one voter at a time through the seeded
        // booth path.
        let mut rng = HmacDrbg::from_u64(seed64 ^ 0xF1EE7);
        let mut seq_system = TripSystem::setup(trip_config(n_voters, n_kiosks), &mut rng);
        let mut seq_outcomes = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            seq_outcomes.push(
                register_voter_seeded(&mut seq_system, voter, fakes, &seed, i)
                    .expect("sequential seeded registration"),
            );
        }

        // Fleet over the same deterministic setup with an arbitrary
        // (pool, threads) shape.
        let mut rng = HmacDrbg::from_u64(seed64 ^ 0xF1EE7);
        let mut fleet_system = TripSystem::setup(trip_config(n_voters, n_kiosks), &mut rng);
        let fleet = KioskFleet::new(FleetConfig { pool_batch, threads, seed });
        let fleet_outcomes = fleet
            .register(&mut fleet_system, &queue)
            .expect("fleet registration");

        prop_assert_eq!(
            run_fingerprint(&seq_system, &seq_outcomes),
            run_fingerprint(&fleet_system, &fleet_outcomes)
        );
        // Fakes policy preserved session by session.
        for (outcome, &(_, fakes)) in fleet_outcomes.iter().zip(queue.iter()) {
            prop_assert_eq!(outcome.fakes.len(), fakes);
            prop_assert!(trace_shows_honest_real_flow(&outcome.events));
        }

        // Every credential the fleet minted activates on a device (the
        // full Fig 11 check set), and so do the sequential ones.
        let mut rng = HmacDrbg::from_u64(1);
        for outcome in &mut seq_outcomes {
            let vsd = activate_all(&mut seq_system, outcome, &mut rng).expect("activates");
            prop_assert_eq!(vsd.credentials.len(), 1 + outcome.fakes.len());
        }
    }

    /// The classic rng-driven `register_voter` path and the fleet agree on
    /// every ledger-observable outcome (roll size, credentials per voter,
    /// honest traces) even though their randomness differs.
    #[test]
    fn fleet_outcome_equivalent_to_classic_register_voter(
        seed64 in any::<u64>(),
        fake_counts in proptest::collection::vec(0usize..3, 4),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();

        let mut rng = HmacDrbg::from_u64(seed64);
        let mut classic = TripSystem::setup(trip_config(n_voters, 1), &mut rng);
        let mut classic_outcomes = Vec::new();
        for &(voter, fakes) in &queue {
            classic_outcomes
                .push(register_voter(&mut classic, voter, fakes, &mut rng).expect("classic"));
        }

        let mut rng = HmacDrbg::from_u64(seed64);
        let mut fleet_system = TripSystem::setup(trip_config(n_voters, 1), &mut rng);
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());
        let fleet = KioskFleet::new(FleetConfig::seeded(seed));
        let fleet_outcomes = fleet.register(&mut fleet_system, &queue).expect("fleet");

        prop_assert_eq!(
            classic.ledger.registration.active_count(),
            fleet_system.ledger.registration.active_count()
        );
        for (a, b) in classic_outcomes.iter().zip(fleet_outcomes.iter()) {
            prop_assert_eq!(a.fakes.len(), b.fakes.len());
            prop_assert_eq!(
                a.believed_real.receipt.checkout_qr.voter_id,
                b.believed_real.receipt.checkout_qr.voter_id
            );
            prop_assert_eq!(
                trace_shows_honest_real_flow(&a.events),
                trace_shows_honest_real_flow(&b.events)
            );
            // All of one voter's credentials share the same public tag on
            // both paths.
            for cred in b.all_credentials() {
                prop_assert_eq!(
                    cred.receipt.checkout_qr.c_pc,
                    b.believed_real.receipt.checkout_qr.c_pc
                );
            }
        }
    }
}

/// A compromised kiosk hiding inside an otherwise honest fleet is still
/// caught by the existing detection path: its sessions' traces show the
/// envelope-first tell, and its stolen keys land in the adversary's loot.
#[test]
fn malicious_kiosk_in_fleet_detected_by_trace_and_loot() {
    let mut rng = HmacDrbg::from_u64(99);
    let mut system = TripSystem::setup_with_behavior(
        trip_config(6, 3),
        KioskBehavior::StealsRealCredential,
        &mut rng,
    );
    // Make kiosks 0 and 2 honest again by replacing them: only kiosk 1
    // steals. (Kiosk identity lives in the registry, so rebuild it.)
    let mac = *system.officials[0].mac_key();
    let apk = system.authority.public_key;
    system.kiosks[0] = votegral::trip::kiosk::Kiosk::new(mac, apk, KioskBehavior::Honest, &mut rng);
    system.kiosks[2] = votegral::trip::kiosk::Kiosk::new(mac, apk, KioskBehavior::Honest, &mut rng);
    system.kiosk_registry = system.kiosks.iter().map(|k| k.public_key()).collect();

    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), 1)).collect();
    let fleet = KioskFleet::new(FleetConfig::seeded([42u8; 32]));
    let sessions = fleet
        .register_and_activate(&mut system, &queue)
        .expect("fleet registers");

    // Sessions 1 and 4 (0-indexed) hit kiosk 1: exactly those traces are
    // dishonest, and exactly those voters' keys were stolen.
    let dishonest: Vec<usize> = sessions
        .iter()
        .enumerate()
        .filter(|(_, (o, _))| !trace_shows_honest_real_flow(&o.events))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(dishonest, vec![1, 4]);
    let looted: Vec<u64> = system.adversary_loot.iter().map(|s| s.voter_id.0).collect();
    assert_eq!(looted, vec![2, 5]);
    // The forged credentials still pass every cryptographic activation
    // check — the booth ordering is the only tell (§4.3/§7.5).
    for (_, vsd) in &sessions {
        assert_eq!(vsd.credentials.len(), 2);
    }
}

/// The election facade's fleet-backed `register_batch` preserves the
/// configured fakes policy and interoperates with voting and tallying.
#[test]
fn election_fleet_batch_preserves_fakes_policy() {
    let mut rng = HmacDrbg::from_u64(7);
    let mut election = ElectionBuilder::new()
        .voters(4)
        .options(2)
        .kiosks(2)
        .fakes(FakesPolicy::Cycling(3))
        .build(&mut rng);
    let voters: Vec<VoterId> = (1..=4).map(VoterId).collect();
    let sessions = election
        .register_batch(&voters, &mut rng)
        .expect("registers");
    for (voter, (outcome, vsd)) in voters.iter().zip(sessions.iter()) {
        let expected = (voter.0 % 3) as usize;
        assert_eq!(outcome.fakes.len(), expected, "voter {voter:?}");
        assert_eq!(vsd.credentials.len(), 1 + expected);
    }
    let mut voting = election.open_voting();
    for (_, vsd) in &sessions {
        voting
            .cast(&vsd.credentials[0], 1, &mut rng)
            .expect("casts");
    }
    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).expect("tallies");
    assert_eq!(transcript.result.counts, vec![0, 4]);
    tallying.verify(&transcript).expect("verifies");
}
