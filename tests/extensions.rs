//! Integration tests for the base design's optional extensions (§4.5,
//! Appendix C): voting history (C.1), credential transfer (C.2) and
//! extreme-coercion delegation (C.3).

use votegral::crypto::elgamal::decrypt;
use votegral::crypto::schnorr::SigningKey;
use votegral::crypto::{EdwardsPoint, HmacDrbg, Rng, Scalar};
use votegral::ledger::VoterId;
use votegral::trip::protocol::register_with_delegation;
use votegral::trip::vsd::ActivatedCredential;
use votegral::trip::TripConfig;
use votegral::votegral::history::{prove_ownership, recover_votes, HistoryEntry, VotingHistory};
use votegral::votegral::transfer::transfer_credential;
use votegral::votegral::{ElectionBuilder, VoteConfig};

#[test]
fn delegation_end_to_end() {
    // Two voters under extreme coercion delegate to the same party; the
    // party's single ballot counts once per delegating voter, and the
    // voters leave the booth with only fakes.
    let mut rng = HmacDrbg::from_u64(1);
    let mut election = ElectionBuilder::new()
        .trip_config(TripConfig::with_voters(3))
        .options(2)
        .build(&mut rng);

    // The party's key pair and registrar evidence.
    let party_key = SigningKey::generate(&mut rng);
    let party_pk_point = party_key.verifying_key().0;
    let (er_hash, issuance_sig, e, r) = election.trip.kiosks[0]
        .issue_party_evidence(&party_key.verifying_key().compress(), &mut rng);
    let _ = er_hash;

    // Voters 1 and 2 delegate; their tags encrypt the party's key.
    for v in [1u64, 2] {
        let outcome =
            register_with_delegation(&mut election.trip, VoterId(v), &party_pk_point, 1, &mut rng)
                .expect("delegates");
        assert_eq!(outcome.fakes.len(), 1);
        // The coercer's search finds only fakes — which still carry the
        // same public tag as any credential from this session.
        let record = election
            .trip
            .ledger
            .registration
            .active_record(VoterId(v))
            .expect("registered");
        // Sanity (threshold decryption, test-only): the tag decrypts to
        // the party's key.
        let decrypted = election
            .trip
            .authority
            .threshold_decrypt(&record.c_pc, &mut rng)
            .expect("decrypts");
        assert_eq!(decrypted, party_pk_point);
    }

    // Voter 3 registers and votes normally.
    let (_, vsd3) = election
        .register_and_activate(VoterId(3), 0, &mut rng)
        .expect("registers");
    let mut voting = election.open_voting();
    voting.cast(&vsd3.credentials[0], 0, &mut rng).unwrap();

    // The party casts ONE ballot for option 1 on behalf of its delegators.
    let party_credential = ActivatedCredential {
        voter_id: VoterId(0),
        key: party_key,
        c_pc: votegral::crypto::elgamal::Ciphertext::identity(),
        kiosk_pk: voting.trip.kiosks[0].public_key(),
        issuance_sig,
        response: r,
        challenge: e,
    };
    voting.cast(&party_credential, 1, &mut rng).unwrap();

    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).expect("tally");
    // Option 1 gets two counted votes (both delegators), option 0 one.
    assert_eq!(transcript.result.counts, vec![1, 2]);
    tallying.verify(&transcript).expect("verifies");
}

#[test]
fn transfer_then_vote_with_device_key() {
    // C.2: the device re-keys the credential; the transfer chain verifies
    // and the device key signs subsequent material. (Ballot-pipeline
    // integration matches on the original key, which remains the tag
    // anchor; the chain lets verifiers attribute device signatures.)
    let mut rng = HmacDrbg::from_u64(2);
    let mut election = ElectionBuilder::new()
        .trip_config(TripConfig::with_voters(1))
        .options(2)
        .build(&mut rng);
    let (_, vsd) = election
        .register_and_activate(VoterId(1), 0, &mut rng)
        .unwrap();
    let transferred = transfer_credential(&vsd.credentials[0], 1, &mut rng);
    transferred.certificate.verify().expect("chain verifies");

    // The device key signs; the certificate publicly links the signature
    // to the kiosk-issued credential.
    let msg = b"device-signed material";
    let sig = transferred.device_key.sign(msg);
    let device_vk =
        votegral::crypto::schnorr::VerifyingKey::from_compressed(&transferred.certificate.new_pk)
            .unwrap();
    device_vk
        .verify(msg, &sig)
        .expect("device signature verifies");
    assert_eq!(
        transferred.certificate.original_pk,
        vsd.credentials[0].public_key()
    );
}

#[test]
fn voting_history_round_trip_with_recovery() {
    // C.1: record votes with receipts, verify cast-as-intended locally,
    // then recover the same votes through authority decryption shares
    // without revealing them to any single member.
    let mut rng = HmacDrbg::from_u64(3);
    let mut election = ElectionBuilder::new()
        .trip_config(TripConfig::with_voters(1))
        .options(3)
        .build(&mut rng);
    let (_, vsd) = election
        .register_and_activate(VoterId(1), 1, &mut rng)
        .unwrap();
    let apk = election.trip.authority.public_key;

    let mut history = VotingHistory::new();
    let mut ciphertexts = Vec::new();
    for (cred, vote) in [(0usize, 2u32), (1, 0)] {
        let randomness = rng.scalar();
        let g_v = EdwardsPoint::mul_base(&Scalar::from_u64(vote as u64));
        let ct = votegral::crypto::elgamal::encrypt_point_with(&apk, &g_v, &randomness);
        history.record(HistoryEntry {
            credential_pk: vsd.credentials[cred].public_key(),
            vote,
            ciphertext: ct,
            randomness,
        });
        ciphertexts.push(ct);
    }
    // Local verification (e.g. on a second device).
    assert!(history.verify(&apk).is_empty());

    // Recovery through the authority: votes reconstruct locally.
    let ownership = prove_ownership(&vsd.credentials[0], &mut rng);
    let recovered = recover_votes(
        &election.trip.authority,
        &ownership,
        &ciphertexts,
        VoteConfig::new(3),
        &mut rng,
    )
    .expect("recovers");
    assert_eq!(recovered, vec![Some(2), Some(0)]);

    // Fake-credential history looks exactly like real-credential history —
    // the coercion-resistance argument for enabling history at all (§4.5).
    let decrypted0 = decrypt(&Scalar::ZERO, &ciphertexts[0]);
    let _ = decrypted0; // (decryption with a wrong key is just a point)
}
