//! Workspace properties of the pipelined registration-day engine: for
//! ANY pipeline configuration — station count, background-refiller
//! low-water mark, ingest mode, activation lag, transport — a pipelined
//! day produces ledgers and credentials bit-identical to the sequential
//! seeded reference, and a station whose connection dies mid-window is
//! healed by failover without perturbing that identity.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use votegral::crypto::HmacDrbg;
use votegral::ledger::FsFault;
use votegral::ledger::{simulate_crash, LedgerBackend, VoterId};
use votegral::service::{
    pipelined_register_and_activate_day, pipelined_register_and_activate_day_chaos,
    pipelined_register_and_activate_day_with_fault, pipelined_register_day,
    register_and_activate_day, ChaosOptions, FaultPlan, IngestMode, PipelineConfig, StationFault,
    StationHang, TransportPlan,
};
use votegral::trip::fleet::{FleetConfig, KioskFleet};
use votegral::trip::protocol::{register_voter_seeded, RegistrationOutcome};
use votegral::trip::setup::{TripConfig, TripSystem};

fn trip_config(n_voters: u64, n_kiosks: usize) -> TripConfig {
    TripConfig {
        n_voters,
        n_kiosks,
        ..TripConfig::default()
    }
}

/// Ledger heads plus per-credential identifying bytes, in queue order.
fn fingerprint(
    system: &TripSystem,
    outcomes: &[RegistrationOutcome],
) -> (Vec<u8>, Vec<u8>, usize, Vec<Vec<u8>>) {
    let creds = outcomes
        .iter()
        .flat_map(|o| o.all_credentials())
        .map(|c| {
            let mut bytes = c.receipt.commit_qr.kiosk_sig.to_bytes().to_vec();
            bytes.extend_from_slice(&c.receipt.checkout_qr.kiosk_sig.to_bytes());
            bytes.extend_from_slice(&c.receipt.response_qr.credential_sk.to_bytes());
            bytes.extend_from_slice(&c.envelope.challenge.to_bytes());
            bytes
        })
        .collect();
    (
        system.ledger.registration.tree_head().root.to_vec(),
        system.ledger.envelopes.tree_head().root.to_vec(),
        system.ledger.registration.active_count(),
        creds,
    )
}

fn sequential_reference(
    seed64: u64,
    seed: &[u8; 32],
    n_kiosks: usize,
    queue: &[(VoterId, usize)],
) -> (Vec<u8>, Vec<u8>, usize, Vec<Vec<u8>>) {
    let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
    let mut system = TripSystem::setup(trip_config(queue.len() as u64, n_kiosks), &mut rng);
    let mut outcomes = Vec::new();
    for (i, &(voter, fakes)) in queue.iter().enumerate() {
        outcomes.push(register_voter_seeded(&mut system, voter, fakes, seed, i).unwrap());
    }
    fingerprint(&system, &outcomes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance criterion: pipelined registration days equal the
    /// sequential seeded reference bit-for-bit across (kiosks × pool
    /// batch × low-water mark × station count × ingest worker count ×
    /// ingest mode × threads × seed), on every transport — including
    /// the authenticated-encryption secure channel, whose ephemeral
    /// handshake randomness must never leak into ledger bytes.
    #[test]
    fn pipelined_day_equals_sequential_reference(
        seed64 in any::<u64>(),
        n_kiosks in 2usize..5,
        pool_batch in 1usize..5,
        threads in 1usize..3,
        stations in 1usize..4,
        workers in 1usize..4,
        low_water in 0usize..7,
        background in any::<bool>(),
        fake_counts in proptest::collection::vec(0usize..3, 5),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());
        let fleet = KioskFleet::new(FleetConfig { pool_batch, threads, seed });
        let stations = stations.min(n_kiosks);
        let pipeline = PipelineConfig {
            stations,
            workers,
            low_water,
            ingest: if background { IngestMode::Background } else { IngestMode::Barrier },
            activation_lag: 1 + (seed64 % 3) as usize,
        };
        let reference = sequential_reference(seed64, &seed, n_kiosks, &queue);

        for transport in [
            TransportPlan::IN_PROCESS,
            TransportPlan::TCP,
            TransportPlan::SECURE_TCP,
        ] {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
            let mut system = TripSystem::setup(trip_config(n_voters, n_kiosks), &mut rng);
            let mut outcomes = Vec::new();
            pipelined_register_day(&fleet, &mut system, &queue, transport, pipeline, |o| {
                outcomes.push(o)
            })
            .expect("pipelined day runs");
            prop_assert_eq!(
                &fingerprint(&system, &outcomes),
                &reference,
                "transport {:?} pipeline {:?}",
                transport,
                pipeline
            );
        }
    }

    /// Pipelined register-and-activate (lagged activation, background
    /// sweeps, multiple stations) matches the barrier-synchronous
    /// engine: same activated credential secrets in queue order, same
    /// reveal counts, same heads.
    #[test]
    fn pipelined_activation_day_matches_barrier_engine(
        seed64 in any::<u64>(),
        threads in 1usize..3,
        stations in 1usize..3,
        workers in 1usize..3,
        activation_lag in 1usize..4,
        fake_counts in proptest::collection::vec(0usize..2, 4),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());
        // pool_batch 2 forces several windows for a 4-voter queue, so
        // lag grouping and prefix barriers actually engage.
        let fleet = KioskFleet::new(FleetConfig { pool_batch: 2, threads, seed });

        let barrier = {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0xAC8);
            let mut system = TripSystem::setup(trip_config(n_voters, 2), &mut rng);
            let mut secrets = Vec::new();
            register_and_activate_day(&fleet, &mut system, &queue, TransportPlan::IN_PROCESS, |_, vsd| {
                secrets.extend(vsd.credentials.iter().map(|c| c.key.secret()));
            })
            .expect("barrier day runs");
            (
                secrets,
                system.ledger.envelopes.revealed_count(),
                system.ledger.registration.tree_head().root,
                system.ledger.envelopes.tree_head().root,
            )
        };

        let pipeline = PipelineConfig {
            stations,
            workers,
            low_water: 3,
            ingest: IngestMode::Background,
            activation_lag,
        };
        for transport in [
            TransportPlan::IN_PROCESS,
            TransportPlan::SECURE_IN_PROCESS,
            TransportPlan::TCP,
        ] {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0xAC8);
            let mut system = TripSystem::setup(trip_config(n_voters, 2), &mut rng);
            let mut secrets = Vec::new();
            pipelined_register_and_activate_day(
                &fleet,
                &mut system,
                &queue,
                transport,
                pipeline,
                |_, vsd| secrets.extend(vsd.credentials.iter().map(|c| c.key.secret())),
            )
            .expect("pipelined day runs");
            let got = (
                secrets,
                system.ledger.envelopes.revealed_count(),
                system.ledger.registration.tree_head().root,
                system.ledger.envelopes.tree_head().root,
            );
            prop_assert_eq!(&got, &barrier, "transport {:?}", transport);
        }
    }
}

/// A station's connection dies mid-window (at several different points
/// in its day) and the coordinator's failover completes the day on a
/// fresh recovery connection — outcomes, loot order, devices and ledgers
/// all exactly as if nothing had failed.
#[test]
fn station_death_mid_window_heals_on_survivors() {
    let seed = [0x5Du8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 2,
        workers: 2,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };

    // The healthy pipelined day is the reference.
    let run = |fault: Option<StationFault>, transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(0xFA11);
        let mut system = TripSystem::setup(trip_config(6, 4), &mut rng);
        let mut devices = Vec::new();
        let mut outcomes = Vec::new();
        pipelined_register_and_activate_day_with_fault(
            &fleet,
            &mut system,
            &queue,
            transport,
            pipeline,
            fault,
            |outcome, vsd| {
                devices.push(vsd.credentials.len());
                outcomes.push(outcome);
            },
        )
        .expect("day completes despite the dead station");
        let fp = fingerprint(&system, &outcomes);
        (fp, devices, system.ledger.envelopes.revealed_count())
    };
    let reference = run(None, TransportPlan::IN_PROCESS);
    // Everyone got their devices in the healthy run.
    assert_eq!(reference.1, vec![2, 1, 2, 1, 2, 1]);

    // Kill station 1 after a handful of boundary ops — sweeping the
    // fault point across check-in, submission and barrier calls — on
    // both transports.
    for after_ops in [0, 2, 4, 5, 6] {
        for transport in [TransportPlan::IN_PROCESS, TransportPlan::TCP] {
            let fault = Some(StationFault {
                station: 1,
                after_ops,
                recovery_after_ops: None,
                recovery_deaths: 0,
            });
            assert_eq!(
                run(fault, transport),
                reference,
                "fault after {after_ops} ops over {transport:?}"
            );
        }
    }
}

/// An unrecoverable error — an ineligible voter fails the station's
/// check-in AND its one recovery re-run — must surface as the typed
/// error on both transports. Over TCP this also pins the shutdown path:
/// the acceptor must be woken on the error exit too, or the day would
/// deadlock in the scope join instead of returning.
#[test]
fn unrecoverable_error_returns_typed_instead_of_hanging() {
    for transport in [
        TransportPlan::IN_PROCESS,
        TransportPlan::TCP,
        TransportPlan::SECURE_TCP,
    ] {
        let mut rng = HmacDrbg::from_u64(404);
        let mut system = TripSystem::setup(trip_config(2, 2), &mut rng);
        let fleet = KioskFleet::new(FleetConfig::seeded([1u8; 32]));
        let pipeline = PipelineConfig {
            stations: 2,
            workers: 2,
            low_water: 2,
            ingest: IngestMode::Background,
            activation_lag: 1,
        };
        // Voter 99 is not on the roster; their station fails at check-in
        // deterministically, and so does the recovery connection.
        let out = pipelined_register_and_activate_day(
            &fleet,
            &mut system,
            &[(VoterId(1), 0), (VoterId(99), 0)],
            transport,
            pipeline,
            |_, _| {},
        );
        assert_eq!(
            out,
            Err(votegral::trip::TripError::NotEligible),
            "{transport:?}"
        );
    }
}

/// A fresh scratch directory for a durable ledger under this test run.
fn wal_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vg-pipeline-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(n_voters: u64, n_kiosks: usize, dir: &Path, fsync: bool) -> TripConfig {
    TripConfig {
        n_voters,
        n_kiosks,
        backend: LedgerBackend::Durable {
            dir: dir.to_path_buf(),
            fsync,
        },
        ..TripConfig::default()
    }
}

/// The crash-recovery acceptance criterion: a registration day on the
/// durable backend is SIGKILLed at ≥5 different byte offsets into its
/// write-ahead log — including cuts landing mid-segment-write, leaving a
/// torn final frame — and every crash state, reopened with the same
/// setup seed and driven through the same deterministic day, replays to
/// signed tree heads and credential bytes bit-identical to the
/// uncrashed sequential seeded reference. Swept over the transports
/// (including the secure gateway) and both ingest modes.
///
/// SIGKILL-equivalence: the durable store writes each file append-only
/// from a single thread, so any kill leaves a per-file byte prefix —
/// exactly what [`simulate_crash`] constructs (and, unlike an in-process
/// kill, it can place the cut at a chosen offset deterministically).
#[test]
fn durable_day_killed_mid_day_replays_to_identical_heads() {
    let seed64 = 0xD00Du64;
    let seed = [0x6Bu8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let reference = sequential_reference(seed64, &seed, 4, &queue);

    for (ingest, transport) in [
        (IngestMode::Barrier, TransportPlan::IN_PROCESS),
        (IngestMode::Barrier, TransportPlan::TCP),
        (IngestMode::Background, TransportPlan::IN_PROCESS),
        (IngestMode::Background, TransportPlan::TCP),
        (IngestMode::Background, TransportPlan::SECURE_TCP),
    ] {
        let pipeline = PipelineConfig {
            stations: 2,
            workers: 2,
            low_water: 2,
            ingest,
            activation_lag: 1,
        };
        // Reopening is just setup on the same directory with the same
        // seed: the WAL replays, and re-running the deterministic day
        // no-ops through the persisted prefix via the replay cursor.
        let run_day = |dir: &Path| {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
            let mut system = TripSystem::setup(durable_config(6, 4, dir, false), &mut rng);
            let mut outcomes = Vec::new();
            let stats =
                pipelined_register_day(&fleet, &mut system, &queue, transport, pipeline, |o| {
                    outcomes.push(o)
                })
                .expect("durable pipelined day runs");
            (fingerprint(&system, &outcomes), stats)
        };

        // The uncrashed durable day: flat WAL Merkle roots are
        // bit-identical to the volatile in-memory reference, and the
        // day's records really went through the WAL.
        let full_dir = wal_dir(&format!("full-{ingest:?}-{transport:?}"));
        let (full, stats) = run_day(&full_dir);
        assert_eq!(full, reference, "{ingest:?}/{transport:?} uncrashed");
        assert!(stats.ingest.wal_records > 0, "day must write the WAL");

        // Kill the day at five byte fractions of its WAL — early (mid
        // envelope-supply setup), mid-registration, and near-complete —
        // then reopen each crash state and finish the day.
        let mut any_torn = false;
        for permille in [97u32, 293, 511, 743, 941] {
            let crashed = wal_dir(&format!("crash-{permille}"));
            let report = simulate_crash(&full_dir, &crashed, permille).expect("simulate crash");
            any_torn |= report.torn_tail;
            let (recovered, _) = run_day(&crashed);
            assert_eq!(
                recovered, reference,
                "{ingest:?}/{transport:?} killed at {permille}‰"
            );
            let _ = std::fs::remove_dir_all(&crashed);
        }
        assert!(any_torn, "the sweep must include a mid-segment-write kill");
        let _ = std::fs::remove_dir_all(&full_dir);
    }
}

/// Satellite of the crash-recovery criterion: the kill lands during
/// *failover* — station 1's connection dies mid-window, and then the
/// recovery connection replaying its undelivered sessions dies too. The
/// day aborts with a typed error; everything admitted before the kill
/// is already fsynced under a signed head (the commit-point contract),
/// so reopening the directory and running the day cleanly must dedup
/// the healed station's re-submissions against that *persisted* prefix
/// and land on the healthy reference exactly — devices, reveal count
/// and heads included.
#[test]
fn kill_during_failover_reopens_to_the_healthy_reference() {
    let seed = [0x5Du8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 2,
        workers: 2,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };

    let run = |dir: Option<&Path>, fault: Option<StationFault>, transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(0xFA11);
        let config = match dir {
            Some(dir) => durable_config(6, 4, dir, true),
            None => trip_config(6, 4),
        };
        let mut system = TripSystem::setup(config, &mut rng);
        let mut devices = Vec::new();
        let mut outcomes = Vec::new();
        let result = pipelined_register_and_activate_day_with_fault(
            &fleet,
            &mut system,
            &queue,
            transport,
            pipeline,
            fault,
            |outcome, vsd| {
                devices.push(vsd.credentials.len());
                outcomes.push(outcome);
            },
        );
        let stats = result?;
        Ok::<_, votegral::trip::TripError>((
            fingerprint(&system, &outcomes),
            devices,
            system.ledger.envelopes.revealed_count(),
            stats,
        ))
    };
    let (reference, ref_devices, ref_revealed, _) =
        run(None, None, TransportPlan::IN_PROCESS).expect("healthy reference day");
    assert_eq!(ref_devices, vec![2, 1, 2, 1, 2, 1]);

    for transport in [TransportPlan::IN_PROCESS, TransportPlan::TCP] {
        for recovery_after_ops in [0usize, 3] {
            let dir = wal_dir(&format!("failover-{transport:?}-{recovery_after_ops}"));
            // First attempt: station 1 dies after 2 boundary ops, and
            // the recovery connection dies too — unrecoverable, the day
            // aborts mid-flight with whatever was admitted so far
            // persisted.
            // `recovery_deaths: usize::MAX` keeps killing every re-steal
            // generation, so the bounded depth is exhausted and the day
            // genuinely aborts.
            let fault = Some(StationFault {
                station: 1,
                after_ops: 2,
                recovery_after_ops: Some(recovery_after_ops),
                recovery_deaths: usize::MAX,
            });
            let aborted = run(Some(&dir), fault, transport);
            assert!(
                aborted.is_err(),
                "a dead recovery connection must abort the day ({transport:?})"
            );
            // Reopen the crash state and run the day cleanly: replayed
            // submissions dedup against the persisted ingest progress.
            let (fp, devices, revealed, stats) =
                run(Some(&dir), None, transport).expect("reopened day completes");
            assert_eq!(
                (fp, devices, revealed),
                (reference.clone(), ref_devices.clone(), ref_revealed),
                "recovery kill after {recovery_after_ops} ops over {transport:?}"
            );
            assert!(stats.ingest.wal_fsyncs > 0, "fsync-at-flush must engage");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The station partition itself: disjoint, exhaustive, kiosk-aligned —
/// and over-subscription (`stations > |K|`, or zero stations) is a typed
/// configuration error rather than a silent clamp.
#[test]
fn station_partition_is_disjoint_and_kiosk_aligned() {
    let mut rng = HmacDrbg::from_u64(3);
    let system = TripSystem::setup(trip_config(10, 5), &mut rng);
    let plan: Vec<(VoterId, usize)> = (1..=10).map(|v| (VoterId(v), 1)).collect();
    for stations in [1, 2, 3, 5] {
        let parts = votegral::trip::fleet::partition_stations(&plan, &system.kiosks, stations)
            .expect("1 <= stations <= kiosks is a valid partition");
        assert_eq!(parts.len(), stations);
        let mut seen = HashSet::new();
        for part in &parts {
            for &(idx, voter, _) in &part.sessions {
                assert!(seen.insert(idx), "session {idx} assigned twice");
                assert_eq!(voter, plan[idx].0);
            }
        }
        assert_eq!(seen.len(), plan.len(), "stations cover the whole plan");
    }
    for stations in [0, 9] {
        let out = votegral::trip::fleet::partition_stations(&plan, &system.kiosks, stations);
        assert!(
            matches!(out, Err(votegral::trip::TripError::InvalidConfig(_))),
            "{stations} stations over 5 kiosks must be a typed config error"
        );
    }
}

/// The work-stealing acceptance criterion: a ≥3-station day in which one
/// station dies mid-window finishes by *partitioning* the dead station's
/// kiosk range across the survivors — at least two distinct thieves each
/// absorb a contiguous chunk — and the healed day stays bit-identical to
/// the healthy pipelined reference. One recovery connection no longer
/// serializes the whole re-run.
#[test]
fn station_death_steals_kiosk_chunks_across_survivors() {
    let seed = [0x5Eu8; 32];
    // 9 voters over 6 kiosks, 3 stations: station 1 owns kiosks {2,3}
    // and therefore sessions {2,3,8}.
    let queue: Vec<(VoterId, usize)> = (1..=9).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 3,
        workers: 2,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };

    let run = |fault: Option<StationFault>, transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(0x57EA);
        let mut system = TripSystem::setup(trip_config(9, 6), &mut rng);
        let mut devices = Vec::new();
        let mut outcomes = Vec::new();
        let stats = pipelined_register_and_activate_day_with_fault(
            &fleet,
            &mut system,
            &queue,
            transport,
            pipeline,
            fault,
            |outcome, vsd| {
                devices.push(vsd.credentials.len());
                outcomes.push(outcome);
            },
        )
        .expect("day completes despite the dead station");
        (fingerprint(&system, &outcomes), devices, stats)
    };
    let (reference, ref_devices, healthy_stats) = run(None, TransportPlan::IN_PROCESS);
    assert!(
        healthy_stats.steals.is_empty(),
        "healthy day steals nothing"
    );

    for after_ops in [0, 2, 4] {
        for transport in [
            TransportPlan::IN_PROCESS,
            TransportPlan::TCP,
            TransportPlan::SECURE_TCP,
        ] {
            let fault = Some(StationFault {
                station: 1,
                after_ops,
                recovery_after_ops: None,
                recovery_deaths: 0,
            });
            let (fp, devices, stats) = run(fault, transport);
            assert_eq!(
                (&fp, &devices),
                (&reference, &ref_devices),
                "steal-healed day diverged after {after_ops} ops over {transport:?}"
            );
            // Dynamic partition: every chunk names the dead station as
            // victim, and the chunks were spread across ≥2 survivors.
            assert!(
                !stats.steals.is_empty(),
                "a dead station's range must be stolen ({after_ops} ops, {transport:?})"
            );
            assert!(stats.steals.iter().all(|s| s.victim == 1));
            let thieves: HashSet<usize> = stats.steals.iter().map(|s| s.thief).collect();
            if after_ops == 0 {
                // Nothing delivered: both stolen kiosks {2,3} (sessions
                // {2,8} and {3}) must land on distinct survivors.
                assert_eq!(
                    thieves,
                    HashSet::from([0, 2]),
                    "kiosk chunks must spread across both survivors, got {:?}",
                    stats.steals
                );
            }
            assert!(thieves.iter().all(|&t| t != 1), "the victim cannot steal");
        }
    }
}

/// Kill-then-steal chaos on the durable backend: a 3-station durable day
/// loses station 1 mid-window and the *steal chunks* die too, aborting
/// the day with a partial prefix fsynced under a signed head. Reopening
/// the directory and running the day cleanly must dedup every re-run
/// session against the persisted prefix — byte-identical ingest dedup is
/// exactly what makes chunked stealing safe to retry — and land on the
/// healthy reference.
#[test]
fn durable_kill_then_steal_replays_to_identical_heads() {
    let seed = [0x5Eu8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=9).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 3,
        workers: 3,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };

    let run = |dir: Option<&Path>, fault: Option<StationFault>, transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(0x57EA);
        let config = match dir {
            Some(dir) => durable_config(9, 6, dir, true),
            None => trip_config(9, 6),
        };
        let mut system = TripSystem::setup(config, &mut rng);
        let mut devices = Vec::new();
        let mut outcomes = Vec::new();
        let stats = pipelined_register_and_activate_day_with_fault(
            &fleet,
            &mut system,
            &queue,
            transport,
            pipeline,
            fault,
            |outcome, vsd| {
                devices.push(vsd.credentials.len());
                outcomes.push(outcome);
            },
        )?;
        Ok::<_, votegral::trip::TripError>((fingerprint(&system, &outcomes), devices, stats))
    };
    let (reference, ref_devices, _) =
        run(None, None, TransportPlan::IN_PROCESS).expect("healthy reference day");

    for transport in [TransportPlan::IN_PROCESS, TransportPlan::TCP] {
        // Sanity: steal-healing on the durable backend alone already
        // reproduces the reference.
        let healed_dir = wal_dir(&format!("steal-heal-{transport:?}"));
        let fault = Some(StationFault {
            station: 1,
            after_ops: 2,
            recovery_after_ops: None,
            recovery_deaths: 0,
        });
        let (fp, devices, stats) =
            run(Some(&healed_dir), fault, transport).expect("steal-healed durable day");
        assert_eq!((&fp, &devices), (&reference, &ref_devices), "{transport:?}");
        assert!(!stats.steals.is_empty(), "the dead station must be stolen");
        let _ = std::fs::remove_dir_all(&healed_dir);

        // Chaos: the steal chunks die too; the aborted day leaves a
        // persisted prefix, and a clean reopen replays to the reference.
        for chunk_after_ops in [0usize, 3] {
            let dir = wal_dir(&format!("kill-steal-{transport:?}-{chunk_after_ops}"));
            let fault = Some(StationFault {
                station: 1,
                after_ops: 2,
                recovery_after_ops: Some(chunk_after_ops),
                recovery_deaths: usize::MAX,
            });
            let aborted = run(Some(&dir), fault, transport);
            assert!(
                aborted.is_err(),
                "dead steal chunks must abort the day ({transport:?})"
            );
            let (fp, devices, stats) =
                run(Some(&dir), None, transport).expect("reopened day completes");
            assert_eq!(
                (&fp, &devices),
                (&reference, &ref_devices),
                "steal chunks killed after {chunk_after_ops} ops over {transport:?}"
            );
            assert!(stats.ingest.wal_fsyncs > 0, "fsync-at-flush must engage");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Bounded re-steal: when a *stolen chunk's* runner dies too, the chunk
/// is re-stolen onto the remaining survivors — recorded with an
/// incremented [`StealRecord::depth`] — and the day still lands on the
/// healthy reference bit-for-bit. The retry budget is bounded: a fault
/// that kills every re-steal generation must exhaust the depth and
/// abort with a typed error instead of retrying forever.
///
/// Swept over the in-process engine and the secure multiplexed gateway,
/// so re-stolen chunks also ride the per-thief steal lanes over
/// authenticated encrypted connections.
#[test]
fn dead_steal_chunks_are_restolen_with_bounded_depth() {
    let seed = [0x5Eu8; 32];
    // Same geometry as the steal test: 9 voters over 6 kiosks and 3
    // stations, so station 1 owns kiosks {2,3} = sessions {2,3,8} and
    // its death splits into two chunks across survivors {0,2}.
    let queue: Vec<(VoterId, usize)> = (1..=9).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 3,
        workers: 2,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };

    let run = |fault: Option<StationFault>, transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(0x57EA);
        let mut system = TripSystem::setup(trip_config(9, 6), &mut rng);
        let mut devices = Vec::new();
        let mut outcomes = Vec::new();
        let stats = pipelined_register_and_activate_day_with_fault(
            &fleet,
            &mut system,
            &queue,
            transport,
            pipeline,
            fault,
            |outcome, vsd| {
                devices.push(vsd.credentials.len());
                outcomes.push(outcome);
            },
        )?;
        Ok::<_, votegral::trip::TripError>((fingerprint(&system, &outcomes), devices, stats))
    };
    let (reference, ref_devices, _) =
        run(None, TransportPlan::IN_PROCESS).expect("healthy reference day");

    for transport in [TransportPlan::IN_PROCESS, TransportPlan::SECURE_TCP] {
        // One recovery death: the first stolen chunk dies immediately
        // and is re-stolen exactly one level deep; the day heals.
        let fault = |recovery_deaths| {
            Some(StationFault {
                station: 1,
                after_ops: 0,
                recovery_after_ops: Some(0),
                recovery_deaths,
            })
        };
        let (fp, devices, stats) =
            run(fault(1), transport).expect("one dead chunk must re-steal and heal");
        assert_eq!((&fp, &devices), (&reference, &ref_devices), "{transport:?}");
        let max_depth = stats.steals.iter().map(|s| s.depth).max();
        assert_eq!(
            max_depth,
            Some(1),
            "the dead chunk must reappear as a depth-1 re-steal, got {:?}",
            stats.steals
        );
        assert!(
            stats.steals.iter().any(|s| s.depth == 0),
            "first-generation steal records must survive in the stats"
        );

        // Three recovery deaths: both first-generation chunks die and
        // one depth-1 re-steal dies too, driving a chunk to the maximum
        // depth — and the day STILL heals to the reference.
        let (fp, devices, stats) =
            run(fault(3), transport).expect("re-steals within the depth budget must heal");
        assert_eq!((&fp, &devices), (&reference, &ref_devices), "{transport:?}");
        assert_eq!(
            stats.steals.iter().map(|s| s.depth).max(),
            Some(2),
            "three chunk deaths must drive one chunk to depth 2, got {:?}",
            stats.steals
        );

        // An unbounded killer exhausts the depth budget: the day aborts
        // with a typed error instead of re-stealing forever.
        assert!(
            run(fault(usize::MAX), transport).is_err(),
            "killing every re-steal generation must abort the day ({transport:?})"
        );
    }
}

// ---------------------------------------------------------------------
// The seeded chaos sweep
// ---------------------------------------------------------------------

/// Wall-clock budget per chaos cell. A cell that neither completes nor
/// returns a typed error inside this window counts as a hang — exactly
/// the failure mode the deadline/reap/stall machinery exists to prevent.
const CHAOS_WATCHDOG: std::time::Duration = std::time::Duration::from_secs(120);

/// One cell of the chaos grid: a seeded fault plan, the transport and
/// ingest mode it runs over, and whether the day needs a durable WAL
/// (disk-fault cells do; network-only cells stay on the volatile
/// backend).
#[derive(Clone, Debug)]
struct ChaosCell {
    label: String,
    plan: FaultPlan,
    transport: TransportPlan,
    ingest: IngestMode,
    durable: bool,
}

/// The chaos acceptance criterion: under ANY seeded `FaultPlan` in the
/// grid — network faults (delays, drops, torn writes, stalls, and on
/// the MAC-protected transport, bit corruption) crossed with disk
/// faults (failed/short WAL writes, ENOSPC, failed fsync) over both
/// gateway transports and both ingest modes — a pipelined day either
///
/// 1. completes with ledger heads and credential bytes bit-identical to
///    the unfaulted sequential reference (faults healed by reconnect,
///    reap and steal), or
/// 2. returns a typed [`TripError`] (graceful degradation),
///
/// and in BOTH cases finishes inside a wall-clock watchdog without a
/// single panic. Every cell is reproducible from its printed plan: the
/// schedules are pure functions of the seed (see `vg-service::fault`).
#[test]
fn chaos_sweep_heals_bit_identically_or_fails_typed() {
    let seed64 = 0xC4A0u64;
    let seed = [0x2Eu8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let reference = sequential_reference(seed64, &seed, 4, &queue);

    let mut cells: Vec<ChaosCell> = Vec::new();
    // Network grid: rate × stall mix × transport. Corruption rides only
    // with the secure transport — a plaintext frame has no integrity
    // check, so a flipped bit would change payload bytes silently
    // instead of surfacing a fault (see `FaultPlan::corrupt`).
    for (t_label, transport, corrupt) in [
        ("tcp", TransportPlan::TCP, false),
        ("secure", TransportPlan::SECURE_IN_PROCESS, true),
    ] {
        // 8 permille ≈ a handful of faults per day: reliably heals
        // inside the bounded re-steal budget (pinning the heal arm of
        // the contract); the higher rates push days into typed
        // degradation (pinning the other arm).
        for rate in [8u16, 40, 150] {
            for stalls in [false, true] {
                let plan_seed = u64::from(rate) << 1 | u64::from(stalls);
                cells.push(ChaosCell {
                    label: format!("{t_label}/net{rate}permille/stalls={stalls}"),
                    plan: FaultPlan {
                        seed: plan_seed,
                        net_rate_permille: rate,
                        stalls,
                        corrupt,
                        disk: None,
                    },
                    transport,
                    ingest: if stalls {
                        IngestMode::Background
                    } else {
                        IngestMode::Barrier
                    },
                    durable: false,
                });
            }
        }
    }
    // Disk grid: the WAL write layer fails partway through the day. The
    // store's sticky-poison contract turns every one of these into a
    // typed day abort (or, if the fault lands after the last write, a
    // clean bit-identical completion) — never a panic.
    for (d_label, disk) in [
        ("fail-write", FsFault::FailWrite { nth: 2 }),
        ("short-write", FsFault::ShortWrite { nth: 1, keep: 3 }),
        ("disk-full", FsFault::DiskFull { nth: 1 }),
        ("fail-fsync", FsFault::FailFsync { nth: 0 }),
    ] {
        cells.push(ChaosCell {
            label: format!("tcp/disk/{d_label}"),
            plan: FaultPlan {
                seed: 77,
                net_rate_permille: 0,
                stalls: false,
                corrupt: false,
                disk: Some(disk),
            },
            transport: TransportPlan::TCP,
            ingest: IngestMode::Background,
            durable: true,
        });
    }
    // Compound chaos: network and disk faults in the same day.
    cells.push(ChaosCell {
        label: "secure/net150permille+disk-full".into(),
        plan: FaultPlan {
            seed: 303,
            net_rate_permille: 150,
            stalls: true,
            corrupt: true,
            disk: Some(FsFault::DiskFull { nth: 4 }),
        },
        transport: TransportPlan::SECURE_IN_PROCESS,
        ingest: IngestMode::Background,
        durable: true,
    });

    let mut healed = 0usize;
    let mut degraded = 0usize;
    for cell in cells {
        let queue = queue.clone();
        let label = cell.label.clone();
        let plan_repro = format!("{:?}", cell.plan);
        // Each cell runs on its own thread so a hang is a watchdog
        // FAILURE with the cell's repro plan, not a silently wedged
        // test binary.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let dir = cell.durable.then(|| wal_dir(&cell.label.replace('/', "-")));
            let fleet = KioskFleet::new(FleetConfig {
                pool_batch: 2,
                threads: 2,
                seed,
            });
            let pipeline = PipelineConfig {
                stations: 2,
                workers: 2,
                low_water: 2,
                ingest: cell.ingest,
                activation_lag: 1,
            };
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
            let mut system = TripSystem::setup(
                match &dir {
                    Some(dir) => durable_config(6, 4, dir, true),
                    None => trip_config(6, 4),
                },
                &mut rng,
            );
            let mut outcomes = Vec::new();
            let chaos = ChaosOptions {
                fault: None,
                hang: None,
                plan: Some(cell.plan.clone()),
                // Tight enough that an injected stall is detected and
                // stolen well inside the watchdog; generous enough that
                // healthy-but-delayed stations are not mass-stolen.
                stall_timeout: Some(std::time::Duration::from_secs(5)),
            };
            let result = pipelined_register_and_activate_day_chaos(
                &fleet,
                &mut system,
                &queue,
                cell.transport,
                pipeline,
                chaos,
                |outcome, _vsd| outcomes.push(outcome),
            );
            let fp = result
                .as_ref()
                .ok()
                .map(|_| fingerprint(&system, &outcomes));
            if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(&dir);
            }
            let _ = tx.send((result.map(|stats| (stats, fp)), cell));
        });
        match rx.recv_timeout(CHAOS_WATCHDOG) {
            Ok((Ok((stats, fp)), cell)) => {
                assert_eq!(
                    fp.as_ref(),
                    Some(&reference),
                    "[{label}] day completed but diverged from the sequential \
                     reference; repro plan: {plan_repro}"
                );
                if cell.plan.disk.is_some() {
                    assert_eq!(
                        stats.ingest.wal_failures, 0,
                        "[{label}] a day that absorbed WAL failures must not report Ok"
                    );
                }
                healed += 1;
            }
            Ok((Err(e), _cell)) => {
                // Graceful degradation: typed, not a panic. The error
                // formatting exercises the full typed chain.
                let _ = format!("{e:?}");
                degraded += 1;
            }
            Err(_) => panic!(
                "[{label}] chaos cell exceeded the {CHAOS_WATCHDOG:?} watchdog \
                 (hang); repro plan: {plan_repro}"
            ),
        }
    }
    // The sweep must actually exercise both contract arms: some cells
    // heal to bit-identity, and the disk cells degrade typed.
    assert!(healed > 0, "no chaos cell healed to bit-identity");
    assert!(degraded > 0, "no chaos cell exercised typed degradation");
}

/// A quiet `ChaosOptions` (no plan, no fault) is the identity: same
/// heads as the plain pipelined entry point, and every degraded-mode
/// counter stays zero.
#[test]
fn quiet_chaos_options_are_the_identity() {
    let seed64 = 0xBEEFu64;
    let seed = [0x41u8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=4).map(|v| (VoterId(v), 1)).collect();
    let reference = sequential_reference(seed64, &seed, 4, &queue);
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 2,
        workers: 2,
        low_water: 2,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };
    let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
    let mut system = TripSystem::setup(trip_config(4, 4), &mut rng);
    let mut outcomes = Vec::new();
    let stats = pipelined_register_and_activate_day_chaos(
        &fleet,
        &mut system,
        &queue,
        TransportPlan::TCP,
        pipeline,
        ChaosOptions::default(),
        |outcome, _vsd| outcomes.push(outcome),
    )
    .expect("quiet chaos day runs");
    assert_eq!(fingerprint(&system, &outcomes), reference);
    assert_eq!(
        (stats.timeouts, stats.reconnects, stats.stall_steals),
        (0, 0, 0),
        "a healthy day reports no degraded-mode events"
    );
}

/// The stall detector's flagship scenario: a station goes SILENT
/// mid-day — no error, no death, just no progress. No failover path
/// triggers on its own (the connection is healthy-idle, which the
/// reaper deliberately spares); only the coordinator's liveness
/// deadline can declare it lost. The day must heal bit-identically via
/// the chunked steal path, count the loss in `stall_steals`, and join
/// every thread (the hung one included) without hanging the test.
#[test]
fn silently_hung_station_is_stall_detected_and_stolen() {
    let seed64 = 0x57A11u64;
    let seed = [0x7Cu8; 32];
    let queue: Vec<(VoterId, usize)> = (1..=6).map(|v| (VoterId(v), (v % 2) as usize)).collect();
    let reference = sequential_reference(seed64, &seed, 4, &queue);
    let fleet = KioskFleet::new(FleetConfig {
        pool_batch: 2,
        threads: 2,
        seed,
    });
    let pipeline = PipelineConfig {
        stations: 2,
        workers: 2,
        low_water: 0,
        ingest: IngestMode::Background,
        activation_lag: 1,
    };
    for transport in [TransportPlan::TCP, TransportPlan::SECURE_IN_PROCESS] {
        for after_ops in [0usize, 3] {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0x91E);
            let mut system = TripSystem::setup(trip_config(6, 4), &mut rng);
            let mut outcomes = Vec::new();
            let stats = pipelined_register_and_activate_day_chaos(
                &fleet,
                &mut system,
                &queue,
                transport,
                pipeline,
                ChaosOptions {
                    hang: Some(StationHang {
                        station: 1,
                        after_ops,
                    }),
                    stall_timeout: Some(std::time::Duration::from_millis(400)),
                    ..ChaosOptions::default()
                },
                |outcome, _vsd| outcomes.push(outcome),
            )
            .expect("the stall detector must heal a silently hung station");
            assert_eq!(
                fingerprint(&system, &outcomes),
                reference,
                "{transport:?} hang after {after_ops} ops"
            );
            assert!(
                stats.stall_steals >= 1,
                "{transport:?}: the loss must be attributed to the stall detector, got {stats:?}"
            );
        }
    }
}
