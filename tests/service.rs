//! Workspace-level properties of the service layer: canonical codec
//! round-trips for every wire message, truncation/garbage-frame
//! rejection, and the cross-transport equivalence contract — a fleet
//! registration day over the TCP transport is bit-identical to the
//! in-process run and to the sequential seeded reference, for any
//! `(kiosks, pool batch, threads, seed, queue shape)`.

use std::net::TcpListener;
use std::sync::Arc;

use proptest::prelude::*;
use votegral::crypto::channel::{DirectionKeys, EphemeralKey, FrameSealer};
use votegral::crypto::schnorr::{NonceCoupon, SigningKey};
use votegral::crypto::{HmacDrbg, Rng};
use votegral::ledger::{challenge_hash, VoterId};
use votegral::service::messages::{
    ActivationSweepRequest, CheckInRequest, CheckInResponse, CheckOutBatchRequest,
    CheckOutBatchResponse, EnvelopeSubmitRequest, HandshakeFin, HandshakeFrame, HandshakeInit,
    HandshakeReply, IngestReceipt, IngestStatsReply, LedgerHeads, PrintRequest, PrintResponse,
    Request, Response, SealedRecord, SeqCheckOutRequest, SeqEnvelopeSubmitRequest,
    SyncThroughRequest, WireCoupon,
};
use votegral::service::{
    pipe_pair, register_and_activate_day, register_day, serve_channel, ChannelPolicy, Connector,
    Deadlines, FramedChannel, LinkKind, Listener, RegistrarHost, SecureConfig, ServiceError,
    TcpChannelListener, TcpConnector, TransportPlan,
};
use votegral::trip::fleet::{FleetConfig, KioskFleet};
use votegral::trip::materials::{CheckInTicket, CheckOutQr, Symbol};
use votegral::trip::printer::EnvelopePrinter;
use votegral::trip::protocol::{register_voter_seeded, RegistrationOutcome};
use votegral::trip::setup::{TripConfig, TripSystem};
use votegral::trip::vsd::ActivationClaim;
use votegral::trip::PrintJob;
use votegral::votegral::ElectionBuilder;

fn trip_config(n_voters: u64, n_kiosks: usize) -> TripConfig {
    TripConfig {
        n_voters,
        n_kiosks,
        ..TripConfig::default()
    }
}

/// Builds one plausible instance of every wire message from a seed.
fn sample_messages(seed: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut rng = HmacDrbg::from_u64(seed);
    let kiosk = SigningKey::generate(&mut rng);
    let printer = EnvelopePrinter::new(&mut rng);
    let c_pc = votegral::crypto::elgamal::Ciphertext {
        c1: votegral::crypto::EdwardsPoint::mul_base(&rng.scalar()),
        c2: votegral::crypto::EdwardsPoint::mul_base(&rng.scalar()),
    };
    let qr = CheckOutQr {
        voter_id: VoterId(rng.below(1 << 20)),
        c_pc,
        kiosk_pk: kiosk.public_key_compressed(),
        kiosk_sig: kiosk.sign(b"checkout"),
    };
    let coupon: WireCoupon = NonceCoupon::generate(&mut rng).into();
    let e = rng.scalar();
    let (envelope, commitment) = printer.print_detached(e, Symbol::random(&mut rng));
    let job = PrintJob {
        challenge: rng.scalar(),
        symbol: Symbol::random(&mut rng),
    };
    let claim = ActivationClaim {
        voter_id: qr.voter_id,
        c_pc: qr.c_pc,
        kiosk_pk: qr.kiosk_pk,
        challenge: e,
    };
    let head = votegral::ledger::TreeHead {
        size: rng.below(1 << 30),
        root: rng.bytes32(),
        signature: kiosk.sign(b"head"),
    };
    let ticket = CheckInTicket {
        voter_id: qr.voter_id,
        tag: rng.bytes32(),
    };
    assert_eq!(commitment.challenge_hash, challenge_hash(&e));

    let requests = vec![
        Request::CheckIn(CheckInRequest { voter: qr.voter_id }).to_wire(),
        Request::CheckOutBatch(CheckOutBatchRequest {
            checkouts: vec![(qr.clone(), coupon)],
        })
        .to_wire(),
        Request::Print(PrintRequest {
            jobs: vec![job, job],
        })
        .to_wire(),
        Request::SubmitEnvelopes(EnvelopeSubmitRequest {
            commitments: vec![commitment.clone(), commitment.clone()],
        })
        .to_wire(),
        Request::Sync.to_wire(),
        Request::LedgerHeads.to_wire(),
        Request::ActivationSweep(ActivationSweepRequest {
            claims: vec![claim.clone(), claim.clone()],
        })
        .to_wire(),
        Request::Shutdown.to_wire(),
        Request::SubmitEnvelopesSeq(SeqEnvelopeSubmitRequest {
            groups: vec![
                (2, vec![commitment.clone()]),
                (3, vec![commitment.clone(), commitment.clone()]),
            ],
        })
        .to_wire(),
        Request::CheckOutBatchSeq(SeqCheckOutRequest {
            groups: vec![(
                5,
                vec![(qr.clone(), NonceCoupon::generate(&mut rng).into())],
            )],
        })
        .to_wire(),
        Request::SyncThrough(SyncThroughRequest {
            sessions: rng.below(1 << 30),
        })
        .to_wire(),
        Request::IngestStats.to_wire(),
    ];
    let responses = vec![
        Response::CheckIn(CheckInResponse { ticket }).to_wire(),
        Response::CheckOutBatch(CheckOutBatchResponse { ticket: 7 }).to_wire(),
        Response::Print(PrintResponse {
            envelopes: vec![(envelope, commitment)],
        })
        .to_wire(),
        Response::SubmitEnvelopes(IngestReceipt { ticket: 9 }).to_wire(),
        Response::Sync.to_wire(),
        Response::LedgerHeads(LedgerHeads {
            registration: head.clone(),
            envelopes: head,
        })
        .to_wire(),
        Response::ActivationSweep.to_wire(),
        Response::Shutdown.to_wire(),
        Response::SubmitEnvelopesSeq(IngestReceipt { ticket: 11 }).to_wire(),
        Response::CheckOutBatchSeq(CheckOutBatchResponse { ticket: 12 }).to_wire(),
        Response::SyncThrough.to_wire(),
        Response::IngestStats(IngestStatsReply {
            env_batches: 8,
            env_sweeps: 2,
            reg_batches: 8,
            reg_sweeps: 2,
            worker_busy_us: 1_000,
            worker_idle_us: 9_000,
            wal_records: 16,
            wal_fsyncs: 2,
            workers: 4,
            wal_failures: 1,
        })
        .to_wire(),
        Response::Err(ServiceError::Trip(votegral::trip::TripError::NotEligible)).to_wire(),
        Response::Err(ServiceError::AuthFailed(
            "station transport key is not enrolled".into(),
        ))
        .to_wire(),
        Response::Err(ServiceError::HandshakeFailed(
            "client transcript signature invalid".into(),
        ))
        .to_wire(),
    ];
    (requests, responses)
}

/// Builds one plausible instance of every secure-channel handshake frame.
fn sample_handshake_frames(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = HmacDrbg::from_u64(seed);
    let key = SigningKey::generate(&mut rng);
    let client_eph = EphemeralKey::generate(&mut rng);
    let server_eph = EphemeralKey::generate(&mut rng);
    let sig = key.sign(b"transcript");
    let confirm = rng.bytes32();
    let mut sealed = vec![0u8; 48];
    rng.fill_bytes(&mut sealed);
    vec![
        HandshakeFrame::Init(HandshakeInit {
            eph: client_eph.public,
        })
        .to_wire(),
        HandshakeFrame::Reply(HandshakeReply {
            eph: server_eph.public,
            static_pk: key.public_key_compressed(),
            sig,
            confirm,
        })
        .to_wire(),
        HandshakeFrame::Fin(HandshakeFin {
            static_pk: key.public_key_compressed(),
            sig,
            confirm,
        })
        .to_wire(),
        HandshakeFrame::Record(SealedRecord { sealed }).to_wire(),
    ]
}

/// Ledger heads plus per-credential identifying bytes of a run, in queue
/// order — the full bit-identity fingerprint.
fn run_fingerprint(
    system: &TripSystem,
    outcomes: &[RegistrationOutcome],
) -> (Vec<u8>, Vec<u8>, usize, Vec<Vec<u8>>) {
    let creds = outcomes
        .iter()
        .flat_map(|o| o.all_credentials())
        .map(|c| {
            let mut bytes = c.receipt.commit_qr.kiosk_sig.to_bytes().to_vec();
            bytes.extend_from_slice(&c.receipt.checkout_qr.kiosk_sig.to_bytes());
            bytes.extend_from_slice(&c.receipt.response_qr.credential_sk.to_bytes());
            bytes.extend_from_slice(&c.envelope.challenge.to_bytes());
            bytes.push(c.envelope.symbol.tag());
            bytes
        })
        .collect();
    (
        system.ledger.registration.tree_head().root.to_vec(),
        system.ledger.envelopes.tree_head().root.to_vec(),
        system.ledger.registration.active_count(),
        creds,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every service message round-trips the versioned codec exactly
    /// (byte-for-byte re-encoding equality).
    #[test]
    fn wire_messages_roundtrip(seed in any::<u64>()) {
        let (requests, responses) = sample_messages(seed);
        for bytes in &requests {
            let decoded = Request::from_wire(bytes).expect("request decodes");
            prop_assert_eq!(&decoded.to_wire(), bytes);
        }
        for bytes in &responses {
            let decoded = Response::from_wire(bytes).expect("response decodes");
            prop_assert_eq!(&decoded.to_wire(), bytes);
        }
    }

    /// Truncating any message anywhere, or corrupting its envelope, is
    /// detected — no partial decode ever succeeds silently.
    #[test]
    fn truncated_and_garbage_frames_rejected(seed in any::<u64>()) {
        let (requests, responses) = sample_messages(seed);
        for bytes in &requests {
            // Every strict prefix must fail to decode.
            for cut in 0..bytes.len() {
                prop_assert!(Request::from_wire(&bytes[..cut]).is_err(), "cut {cut}");
            }
            // Magic and version corruption rejected.
            let mut bad = bytes.clone();
            bad[0] ^= 0x01;
            prop_assert!(Request::from_wire(&bad).is_err());
            let mut bad = bytes.clone();
            bad[4] ^= 0x40;
            prop_assert!(Request::from_wire(&bad).is_err());
            // Trailing garbage rejected.
            let mut bad = bytes.clone();
            bad.push(0);
            prop_assert!(Request::from_wire(&bad).is_err());
        }
        for bytes in &responses {
            for cut in 0..bytes.len() {
                prop_assert!(Response::from_wire(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
        // Pure noise never decodes.
        let mut rng = HmacDrbg::from_u64(seed ^ 0xBAD);
        let mut noise = vec![0u8; 64];
        rng.fill_bytes(&mut noise);
        prop_assert!(Request::from_wire(&noise).is_err());
        prop_assert!(Response::from_wire(&noise).is_err());
    }

    /// Every secure-channel handshake frame (`Init`/`Reply`/`Fin`/
    /// `Record`) round-trips the versioned codec exactly, and the
    /// handshake tag range is disjoint from the request/response range —
    /// the disjointness is what lets a plaintext endpoint *detect* a
    /// secure peer (and vice versa) instead of misparsing it.
    #[test]
    fn handshake_frames_roundtrip_and_are_disjoint(seed in any::<u64>()) {
        for bytes in &sample_handshake_frames(seed) {
            let decoded = HandshakeFrame::from_wire(bytes).expect("handshake frame decodes");
            prop_assert_eq!(&decoded.to_wire(), bytes);
            prop_assert!(HandshakeFrame::is_channel_frame(bytes));
            prop_assert!(Request::from_wire(bytes).is_err());
            prop_assert!(Response::from_wire(bytes).is_err());
        }
        let (requests, responses) = sample_messages(seed);
        for bytes in requests.iter().chain(&responses) {
            prop_assert!(!HandshakeFrame::is_channel_frame(bytes));
            prop_assert!(HandshakeFrame::from_wire(bytes).is_err());
        }
    }

    /// Truncating a handshake frame anywhere is rejected — a mangled
    /// handshake can never decode into a shorter valid one.
    #[test]
    fn truncated_handshake_frames_rejected(seed in any::<u64>()) {
        for bytes in &sample_handshake_frames(seed) {
            for cut in 0..bytes.len() {
                prop_assert!(HandshakeFrame::from_wire(&bytes[..cut]).is_err(), "cut {cut}");
            }
            let mut bad = bytes.clone();
            bad.push(0);
            prop_assert!(HandshakeFrame::from_wire(&bad).is_err());
        }
    }

    /// The acceptance criterion: a registration day over every transport
    /// plan — plaintext or authenticated-encrypted, loopback TCP or
    /// in-process pipes — produces ledgers and credentials bit-identical
    /// to the in-process run and to the sequential seeded reference, for
    /// any fleet shape.
    #[test]
    fn tcp_day_equals_inprocess_and_sequential(
        seed64 in any::<u64>(),
        n_kiosks in 1usize..4,
        pool_batch in 1usize..6,
        threads in 1usize..4,
        fake_counts in proptest::collection::vec(0usize..3, 4),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());
        let fleet = KioskFleet::new(FleetConfig { pool_batch, threads, seed });

        // Sequential seeded reference.
        let mut rng = HmacDrbg::from_u64(seed64 ^ 0x5EC);
        let mut seq_system = TripSystem::setup(trip_config(n_voters, n_kiosks), &mut rng);
        let mut seq_outcomes = Vec::new();
        for (i, &(voter, fakes)) in queue.iter().enumerate() {
            seq_outcomes.push(
                register_voter_seeded(&mut seq_system, voter, fakes, &seed, i)
                    .expect("sequential reference"),
            );
        }
        let reference = run_fingerprint(&seq_system, &seq_outcomes);

        for transport in [
            TransportPlan::IN_PROCESS,
            TransportPlan::TCP,
            TransportPlan::SECURE_TCP,
            TransportPlan::SECURE_IN_PROCESS,
        ] {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0x5EC);
            let mut system = TripSystem::setup(trip_config(n_voters, n_kiosks), &mut rng);
            let mut outcomes = Vec::new();
            register_day(&fleet, &mut system, &queue, transport, |o| outcomes.push(o))
                .expect("service day runs");
            prop_assert_eq!(
                &run_fingerprint(&system, &outcomes),
                &reference,
                "transport {:?}",
                transport
            );
        }
    }

    /// Per-window activation over both transports matches: same activated
    /// credential secrets in queue order, same reveal counts.
    #[test]
    fn activation_day_equivalent_across_transports(
        seed64 in any::<u64>(),
        threads in 1usize..3,
        fake_counts in proptest::collection::vec(0usize..2, 3),
    ) {
        let n_voters = fake_counts.len() as u64;
        let queue: Vec<(VoterId, usize)> = fake_counts
            .iter()
            .enumerate()
            .map(|(i, &f)| (VoterId(i as u64 + 1), f))
            .collect();
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&seed64.to_le_bytes());
        // pool_batch 2 forces multiple windows (and thus multiple ingest
        // flush barriers) for a 3-voter queue.
        let fleet = KioskFleet::new(FleetConfig { pool_batch: 2, threads, seed });

        let run = |transport: TransportPlan| {
            let mut rng = HmacDrbg::from_u64(seed64 ^ 0xAC7);
            let mut system = TripSystem::setup(trip_config(n_voters, 2), &mut rng);
            let mut secrets = Vec::new();
            register_and_activate_day(&fleet, &mut system, &queue, transport, |_, vsd| {
                secrets.extend(vsd.credentials.iter().map(|c| c.key.secret()));
            })
            .expect("activation day runs");
            (
                secrets,
                system.ledger.envelopes.revealed_count(),
                system.ledger.registration.tree_head().root,
            )
        };
        let reference = run(TransportPlan::IN_PROCESS);
        prop_assert_eq!(&run(TransportPlan::TCP), &reference);
        prop_assert_eq!(&run(TransportPlan::SECURE_TCP), &reference);
    }
}

/// The whole phase-typed election lifecycle — register, vote, tally,
/// verify — over the TCP transport (plaintext and secure), with heads
/// equal to the in-process run of the same seed. The `secure` knob run
/// also exercises the `From<LinkKind>` plan conversion.
#[test]
fn election_lifecycle_over_tcp_bit_identical() {
    let run = |transport: TransportPlan, secure: bool| {
        let mut rng = HmacDrbg::from_u64(404);
        let mut election = ElectionBuilder::new()
            .voters(4)
            .options(2)
            .kiosks(2)
            .threads(2)
            .transport(transport)
            .secure(secure)
            .build(&mut rng);
        let voters: Vec<VoterId> = (1..=4).map(VoterId).collect();
        let sessions = election
            .register_batch(&voters, &mut rng)
            .expect("registers");
        let reg_head = election.ledger().registration.tree_head().root;
        let env_head = election.ledger().envelopes.tree_head().root;
        let mut voting = election.open_voting();
        for (_, vsd) in &sessions {
            voting
                .cast(&vsd.credentials[0], 1, &mut rng)
                .expect("casts");
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).expect("tallies");
        tallying.verify(&transcript).expect("verifies");
        (reg_head, env_head, transcript.result)
    };
    let reference = run(TransportPlan::IN_PROCESS, false);
    assert_eq!(run(TransportPlan::TCP, false), reference);
    // The deployment posture: plain TCP link + the `secure` builder knob
    // (equivalent to `.transport(TransportPlan::SECURE_TCP)`).
    assert_eq!(run(LinkKind::Tcp.into(), true), reference);
}

/// A malicious kiosk hiding in the fleet is caught identically over TCP:
/// the loot, traces and ledger state cross the boundary unchanged.
#[test]
fn malicious_kiosk_detected_over_tcp() {
    let run = |transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(77);
        let mut system = TripSystem::setup_with_behavior(
            trip_config(3, 2),
            votegral::trip::kiosk::KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        let queue: Vec<(VoterId, usize)> = (1..=3).map(|v| (VoterId(v), 1)).collect();
        let fleet = KioskFleet::new(FleetConfig::seeded([9u8; 32]));
        let mut honest_traces = Vec::new();
        register_and_activate_day(&fleet, &mut system, &queue, transport, |outcome, vsd| {
            honest_traces.push((
                votegral::trip::protocol::trace_shows_honest_real_flow(&outcome.events),
                vsd.credentials.len(),
            ));
        })
        .expect("day runs");
        let looted: Vec<u64> = system.adversary_loot.iter().map(|s| s.voter_id.0).collect();
        (honest_traces, looted)
    };
    let (traces, looted) = run(TransportPlan::TCP);
    assert_eq!(
        run(TransportPlan::IN_PROCESS),
        (traces.clone(), looted.clone())
    );
    assert_eq!(
        run(TransportPlan::SECURE_TCP),
        (traces.clone(), looted.clone())
    );
    // Every session was served by a stealing kiosk: dishonest traces,
    // but the forged credentials still activate (Fig 11 cannot tell).
    assert!(traces.iter().all(|&(honest, creds)| !honest && creds == 2));
    assert_eq!(looted, vec![1, 2, 3]);
}

/// Typed domain errors survive the socket: an ineligible voter's
/// check-in fails with the same `TripError` over plaintext AND secure
/// TCP as locally — the sealed-record layer carries errors unchanged.
#[test]
fn typed_errors_cross_the_wire() {
    let run = |transport: TransportPlan| {
        let mut rng = HmacDrbg::from_u64(31);
        let mut system = TripSystem::setup(trip_config(2, 1), &mut rng);
        let fleet = KioskFleet::new(FleetConfig::seeded([3u8; 32]));
        // Voter 99 is not on the roster.
        register_day(
            &fleet,
            &mut system,
            &[(VoterId(1), 0), (VoterId(99), 0)],
            transport,
            |_| {},
        )
    };
    let local = run(TransportPlan::IN_PROCESS);
    let remote = run(TransportPlan::TCP);
    let secure = run(TransportPlan::SECURE_TCP);
    assert_eq!(local, Err(votegral::trip::TripError::NotEligible));
    assert_eq!(remote, Err(votegral::trip::TripError::NotEligible));
    assert_eq!(secure, Err(votegral::trip::TripError::NotEligible));
}

/// A rogue station whose transport key is NOT in the deployment's
/// enrolled registry is rejected by the secure registrar with a typed
/// [`ServiceError::AuthFailed`] — observed on *both* sides of the real
/// TCP socket, never as a hang or a bare EOF.
#[test]
fn unenrolled_station_rejected_over_real_tcp() {
    let mut rng = HmacDrbg::from_u64(66);
    let system = TripSystem::setup(trip_config(1, 2), &mut rng);
    let keys = &system.transport_keys;
    let server_cfg = SecureConfig {
        local: keys.registrar.clone(),
        registrar: keys.registrar_pk,
        enrolled: Arc::new(keys.station_registry.clone()),
    };
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        TcpChannelListener::new(listener, ChannelPolicy::Secure(server_cfg)).accept()
    });
    let rogue = SigningKey::generate(&mut rng);
    let connector = TcpConnector {
        addr,
        policy: ChannelPolicy::Secure(SecureConfig {
            local: rogue,
            registrar: keys.registrar_pk,
            enrolled: Arc::new(Vec::new()),
        }),
        deadlines: Deadlines::default(),
    };
    let client = connector.connect();
    assert!(
        matches!(server.join().unwrap(), Err(ServiceError::AuthFailed(_))),
        "the registrar must reject the unenrolled station key"
    );
    // The client's handshake completes optimistically when `Fin` is
    // sent; the typed rejection arrives on first use of the channel.
    let mut client = client.expect("client side establishes optimistically");
    assert!(matches!(
        client.recv_frame(),
        Err(ServiceError::AuthFailed(_))
    ));
}

/// Policy mismatch at the serving layer: a secure station dialing a
/// plaintext-served registrar sends a handshake `Init`, which the
/// registrar detects from the disjoint tag range and answers with a
/// typed [`ServiceError::HandshakeFailed`] before closing — the secure
/// peer sees the typed error, not a hang.
#[test]
fn secure_station_against_plaintext_registrar_fails_typed() {
    let mut rng = HmacDrbg::from_u64(55);
    let mut system = TripSystem::setup(trip_config(1, 1), &mut rng);
    let (mut client, mut server) = pipe_pair();
    let eph = EphemeralKey::generate(&mut rng);
    client
        .send_frame(&HandshakeFrame::Init(HandshakeInit { eph: eph.public }).to_wire())
        .expect("send init");
    let TripSystem {
        officials,
        printers,
        ledger,
        kiosk_registry,
        ..
    } = &mut system;
    let mut host = RegistrarHost::new(&officials[0], &printers[0], ledger, kiosk_registry, 1);
    let out = serve_channel(&mut server, &mut host);
    assert!(matches!(out, Err(ServiceError::HandshakeFailed(_))));
    let frame = client.recv_frame().expect("typed rejection frame");
    assert!(matches!(
        Response::from_wire(&frame),
        Ok(Response::Err(ServiceError::HandshakeFailed(_)))
    ));
}

/// The sealed-record layer under adversarial delivery: replaying,
/// reordering, truncating or bit-flipping an encrypted record is
/// rejected typed (MAC or implicit sequence-number failure), never
/// delivered as plaintext.
#[test]
fn sealed_records_reject_replay_reorder_and_tampering() {
    let keys = DirectionKeys {
        enc: [7u8; 32],
        mac: [9u8; 32],
    };
    let mut tx = FrameSealer::new(keys.clone());
    let first = tx.seal(b"first frame");
    let second = tx.seal(b"second frame");

    // Honest delivery opens in order.
    let mut rx = FrameSealer::new(keys.clone());
    assert_eq!(rx.open(&first).unwrap(), b"first frame");
    // Replay of an already-opened record fails (sequence moved on).
    assert!(rx.open(&first).is_err(), "replay must be rejected");
    assert_eq!(rx.open(&second).unwrap(), b"second frame");

    // Reorder: delivering the second record first fails.
    let mut rx = FrameSealer::new(keys.clone());
    assert!(rx.open(&second).is_err(), "reorder must be rejected");

    // Truncation and bit-flips break the MAC.
    let mut rx = FrameSealer::new(keys.clone());
    assert!(rx.open(&first[..first.len() - 1]).is_err());
    let mut rx = FrameSealer::new(keys);
    let mut flipped = first.clone();
    flipped[0] ^= 1;
    assert!(rx.open(&flipped).is_err(), "bit-flip must be rejected");
}
