//! Adversarial integration tests: the integrity adversary's attack
//! surface across crates — malicious kiosks, duplicated envelopes,
//! impersonation, and coercion-resistance structure.

use votegral::crypto::chaum_pedersen::{verify_transcript, DlEqStatement, IzkpTranscript};
use votegral::crypto::drbg::Rng;
use votegral::crypto::elgamal::{encrypt_point, Ciphertext};
use votegral::crypto::{EdwardsPoint, HmacDrbg, Scalar};
use votegral::ledger::VoterId;
use votegral::shuffle::{MixCascade, VerifyMode};
use votegral::sim::coercion::credentials_structurally_indistinguishable;
use votegral::trip::protocol::{activate_all, register_voter, trace_shows_honest_real_flow};
use votegral::trip::{ActivationCheck, KioskBehavior, TripConfig, TripError, TripSystem};
use votegral::votegral::ElectionBuilder;

#[test]
fn stolen_credential_lets_adversary_vote_as_victim() {
    // The other half of the §5.1 story: when the malicious kiosk is NOT
    // detected, the stolen credential genuinely works — which is why
    // detection probability matters. The victim's "real" credential is
    // fake; the kiosk's retained key casts the counted vote.
    let mut rng = HmacDrbg::from_u64(1);
    let mut election = {
        let trip = TripSystem::setup_with_behavior(
            TripConfig::with_voters(2),
            KioskBehavior::StealsRealCredential,
            &mut rng,
        );
        ElectionBuilder::new().options(2).build_with_system(trip)
    };

    let mut outcome = register_voter(&mut election.trip, VoterId(1), 0, &mut rng).unwrap();
    assert!(!trace_shows_honest_real_flow(&outcome.events));
    let victim_vsd = activate_all(&mut election.trip, &mut outcome, &mut rng).unwrap();

    let mut voting = election.open_voting();
    // The victim votes with what they believe is real.
    voting
        .cast(&victim_vsd.credentials[0], 0, &mut rng)
        .unwrap();

    // The adversary votes with the stolen real credential. It has no σ_kr
    // receipt (that went to the victim's fake), so the adversary forges a
    // ballot the same way an outsider would — and admission rejects it…
    let stolen = voting.trip.adversary_loot[0].key.clone();
    let mut forged = victim_vsd.credentials[0].clone();
    forged.key = stolen;
    voting.cast(&forged, 1, &mut rng).unwrap();

    let election = voting.close();
    let transcript = election.tally(&mut rng).unwrap();
    // …so neither ballot counts: the victim's is fake (unmatched), the
    // adversary's lacks issuance evidence (rejected). The attack silences
    // the victim rather than flipping their vote — still an integrity
    // violation the voter can only catch via the process ordering (§7.5)
    // or the registration notification (Appendix J).
    assert_eq!(transcript.rejected, 1);
    assert_eq!(transcript.result.counts, vec![0, 0]);
    // Unmatched: the victim's (actually fake) ballot plus the padding
    // dummy that tops the mix up to two pairs.
    assert_eq!(transcript.result.unmatched, 2);
    election.verify(&transcript).unwrap();
}

#[test]
fn duplicated_envelopes_detected_at_activation() {
    // Appendix F.3.5: a registrar stuffing duplicate envelopes is caught
    // when two voters' activations reveal the same challenge.
    let mut rng = HmacDrbg::from_u64(2);
    let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);

    // The corrupt printer slips duplicated envelopes into the booth.
    let printer = &system.printers[0];
    let dupes = printer
        .print_duplicates(&mut system.ledger.envelopes, 2, &mut rng)
        .expect("prints duplicates");
    system.booth_envelopes.clear();
    system.booth_envelopes.extend(dupes);
    // Stock a couple of honest envelopes too (for symbol matching).
    let honest = printer
        .print_batch(&mut system.ledger.envelopes, 20, &mut rng)
        .expect("prints");
    system.booth_envelopes.extend(honest);

    // Two voters register; force each real credential onto a duplicate by
    // having voters use fakes=0 and rigged selection: we simply run both
    // and check that IF both consumed a duplicate, the second activation
    // trips the ledger.
    let mut o1 = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
    let mut o2 = register_voter(&mut system, VoterId(2), 0, &mut rng).unwrap();
    let e1 = o1.believed_real.envelope.challenge;
    let e2 = o2.believed_real.envelope.challenge;

    let r1 = activate_all(&mut system, &mut o1, &mut rng);
    let r2 = activate_all(&mut system, &mut o2, &mut rng);
    if e1 == e2 {
        // Both used a stuffed envelope: second activation must fail.
        assert!(r1.is_ok());
        assert_eq!(
            r2.unwrap_err(),
            TripError::Activation(ActivationCheck::DuplicateChallenge)
        );
    } else {
        // At least the ledger held: both activations are fine and the
        // revealed challenges are distinct.
        assert!(r1.is_ok() && r2.is_ok());
    }
}

#[test]
fn impersonation_triggers_notification_and_reregistration() {
    // Appendix J: a look-alike registers as the victim; the victim's
    // device sees a registration event it didn't initiate, and the victim
    // re-registers, invalidating the impersonator's credential.
    let mut rng = HmacDrbg::from_u64(3);
    let mut system = TripSystem::setup(TripConfig::with_voters(2), &mut rng);

    // Impersonator registers as voter 1.
    let mut stolen_session = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();

    // The victim's device monitors the ledger: an unexpected event.
    let mut victim_device = votegral::trip::Vsd::new();
    victim_device.notify_registration(VoterId(1));
    let unexpected = victim_device.unexpected_registrations(&[]);
    assert_eq!(unexpected, vec![VoterId(1)]);

    // Victim re-registers: the impersonator's record is superseded…
    let mut honest_session = register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
    // …and the impersonator's credential no longer activates.
    let err = activate_all(&mut system, &mut stolen_session, &mut rng).unwrap_err();
    assert_eq!(err, TripError::Activation(ActivationCheck::LedgerMismatch));
    // The honest credential works.
    let vsd = activate_all(&mut system, &mut honest_session, &mut rng).unwrap();
    assert_eq!(vsd.credentials.len(), 1);
}

#[test]
fn printed_transcripts_carry_no_realness_bit() {
    // §4.3's central claim, checked on real artifacts: the Σ-transcripts
    // on a real and a fake receipt both verify under the same public
    // verifier, so the paper trail cannot prove which is real.
    let mut rng = HmacDrbg::from_u64(4);
    let mut system = TripSystem::setup(TripConfig::with_voters(1), &mut rng);
    let outcome = register_voter(&mut system, VoterId(1), 1, &mut rng).unwrap();

    let apk = system.authority.public_key;
    for (label, cred) in [
        ("real", &outcome.believed_real),
        ("fake", &outcome.fakes[0]),
    ] {
        let commit_qr = &cred.receipt.commit_qr;
        let response_qr = &cred.receipt.response_qr;
        let c_pk = EdwardsPoint::mul_base(&response_qr.credential_sk);
        let stmt = DlEqStatement {
            g1: EdwardsPoint::basepoint(),
            y1: commit_qr.c_pc.c1,
            g2: apk,
            y2: commit_qr.c_pc.c2 - c_pk,
        };
        let transcript = IzkpTranscript {
            commit: commit_qr.commit,
            challenge: cred.envelope.challenge,
            response: response_qr.response,
        };
        assert!(
            verify_transcript(&stmt, &transcript),
            "{label} transcript verifies identically"
        );
    }
    assert!(credentials_structurally_indistinguishable(&mut rng));
}

#[test]
fn malicious_mixer_in_cascade_caught_by_both_verify_modes() {
    // A single malicious mixer in an M-mixer cascade substitutes a
    // non-permutation — dropping a ballot, duplicating one, or flipping
    // one for a ciphertext of its choosing. Whatever the stage and
    // whatever the substitution, both the sequential per-stage verifier
    // and the batched random-linear-combination verifier reject the
    // cascade transcript: a mixer cannot hide behind the folding.
    let mut rng = HmacDrbg::from_u64(77);
    let kp = votegral::crypto::elgamal::ElGamalKeyPair::generate(&mut rng);
    let n = 6usize;
    let mixers = 4usize;
    let inputs: Vec<Ciphertext> = (1..=n as u64)
        .map(|i| {
            let m = EdwardsPoint::mul_base(&Scalar::from_u64(i));
            encrypt_point(&kp.pk, &m, &mut rng).0
        })
        .collect();
    let cascade = MixCascade::new(n, mixers);
    let honest = cascade.mix(&kp.pk, &inputs, &mut rng);
    assert!(cascade.verify(&kp.pk, &honest).is_ok());
    assert!(cascade.verify_batch(&kp.pk, &honest, 2).is_ok());

    let reject_both = |label: &str, bad: &votegral::shuffle::MixTranscript| {
        assert!(
            cascade.verify(&kp.pk, bad).is_err(),
            "{label}: sequential verifier accepted a non-permutation"
        );
        assert!(
            cascade
                .verify_with(&kp.pk, bad, VerifyMode::Batched, 2)
                .is_err(),
            "{label}: batched verifier accepted a non-permutation"
        );
    };

    for malicious_stage in 0..mixers {
        // Drop: the mixer loses ballot 0 and pads with a fresh dummy so
        // the count still matches.
        let mut bad = honest.clone();
        let pad = encrypt_point(&kp.pk, &EdwardsPoint::IDENTITY, &mut rng).0;
        bad.stages[malicious_stage].outputs[0] = pad;
        reject_both(&format!("drop@{malicious_stage}"), &bad);

        // Duplicate: ballot 1 is emitted twice, displacing ballot 0.
        let mut bad = honest.clone();
        bad.stages[malicious_stage].outputs[0] = bad.stages[malicious_stage].outputs[1];
        reject_both(&format!("duplicate@{malicious_stage}"), &bad);

        // Flip: ballot 2 is replaced by an encryption of the mixer's
        // chosen vote.
        let mut bad = honest.clone();
        let forged = encrypt_point(&kp.pk, &EdwardsPoint::mul_base(&rng.scalar()), &mut rng).0;
        bad.stages[malicious_stage].outputs[2] = forged;
        reject_both(&format!("flip@{malicious_stage}"), &bad);
    }
}

#[test]
fn registration_ledger_tamper_evidence() {
    // Any rewrite of registration history breaks the consistency chain.
    let mut rng = HmacDrbg::from_u64(5);
    let mut system = TripSystem::setup(TripConfig::with_voters(3), &mut rng);
    register_voter(&mut system, VoterId(1), 0, &mut rng).unwrap();
    let old_head = system.ledger.registration.tree_head();
    register_voter(&mut system, VoterId(2), 0, &mut rng).unwrap();
    register_voter(&mut system, VoterId(3), 0, &mut rng).unwrap();
    let new_head = system.ledger.registration.tree_head();

    let proof = system
        .ledger
        .registration
        .prove_consistency(old_head.size as usize);
    assert!(votegral::ledger::verify_consistency_heads(
        &old_head, &new_head, &proof
    ));

    // A head from a *different* history does not chain.
    let mut other_rng = HmacDrbg::from_u64(6);
    let mut other = TripSystem::setup(TripConfig::with_voters(3), &mut other_rng);
    register_voter(&mut other, VoterId(1), 0, &mut other_rng).unwrap();
    register_voter(&mut other, VoterId(2), 0, &mut other_rng).unwrap();
    register_voter(&mut other, VoterId(3), 0, &mut other_rng).unwrap();
    let forged_head = other.ledger.registration.tree_head();
    let forged_proof = other.ledger.registration.prove_consistency(1);
    assert!(!votegral::ledger::verify_consistency_heads(
        &old_head,
        &forged_head,
        &forged_proof
    ));
}
