//! End-to-end integration tests spanning every crate: full elections with
//! coercion scenarios, adversarial tampering, and universal verification,
//! all driven through the phase-typed session API.

use votegral::crypto::HmacDrbg;
use votegral::ledger::VoterId;
use votegral::sim::{FakeCredentialDist, VoteDist};
use votegral::votegral::{ElectionBuilder, VotegralError};

#[test]
fn population_election_matches_ground_truth() {
    // A 8-voter election with realistic D_c / D_v behaviour, decoy votes
    // from every fake credential, and re-voting: the tally must equal the
    // ground truth of last real votes, and verify independently.
    let mut rng = HmacDrbg::from_u64(100);
    let n_voters = 8u64;
    let n_options = 3u32;
    let mut election = ElectionBuilder::new()
        .voters(n_voters)
        .options(n_options)
        .build(&mut rng);
    let d_c = FakeCredentialDist::default();
    let d_v = VoteDist::uniform(n_options);

    // Registration phase: every voter registers with sampled fakes.
    let mut devices = Vec::new();
    for v in 1..=n_voters {
        let n_fakes = d_c.sample(&mut rng);
        let (_, vsd) = election
            .register_and_activate(VoterId(v), n_fakes, &mut rng)
            .expect("registration");
        devices.push(vsd);
    }

    // Voting phase: one real vote each plus a decoy per fake credential.
    let mut voting = election.open_voting();
    let mut expected = vec![0u64; n_options as usize];
    let mut fake_ballots = 0usize;
    for vsd in &devices {
        let vote = d_v.sample(&mut rng);
        expected[vote as usize] += 1;
        voting.cast(&vsd.credentials[0], vote, &mut rng).unwrap();
        for fake in &vsd.credentials[1..] {
            voting.cast(fake, d_v.sample(&mut rng), &mut rng).unwrap();
            fake_ballots += 1;
        }
    }

    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).expect("tally");
    assert_eq!(transcript.result.counts, expected);
    assert_eq!(transcript.result.counted as u64, n_voters);
    assert_eq!(transcript.result.unmatched, fake_ballots);
    let verified = tallying.verify(&transcript).expect("verifies");
    assert_eq!(verified, transcript.result);
}

#[test]
fn coerced_voter_outcome_preserved() {
    // The canonical coercion story: the coercer votes with Alice's fake
    // credential; Alice's secret real vote is the one that counts.
    let mut rng = HmacDrbg::from_u64(101);
    let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
    let (_, alice) = election
        .register_and_activate(VoterId(1), 1, &mut rng)
        .unwrap();
    let mut voting = election.open_voting();
    // Coercer's demanded vote (option 0) with the fake.
    voting.cast(&alice.credentials[1], 0, &mut rng).unwrap();
    // Alice's secret real vote (option 1).
    voting.cast(&alice.credentials[0], 1, &mut rng).unwrap();

    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).unwrap();
    assert_eq!(transcript.result.counts, vec![0, 1]);
    tallying.verify(&transcript).unwrap();
}

#[test]
fn abstention_under_coercion() {
    // A coercer can also demand abstention; with fake credentials the
    // coercer cannot tell whether the voter voted (the paper's coercion
    // goal covers forced abstention).
    let mut rng = HmacDrbg::from_u64(102);
    let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
    let (_, alice) = election
        .register_and_activate(VoterId(1), 1, &mut rng)
        .unwrap();
    // Alice claims to abstain (hands over the fake, casts nothing with it)
    // but secretly votes.
    let mut voting = election.open_voting();
    voting.cast(&alice.credentials[0], 1, &mut rng).unwrap();
    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).unwrap();
    assert_eq!(transcript.result.counts, vec![0, 1]);
    tallying.verify(&transcript).unwrap();
}

#[test]
fn ballot_stuffing_by_outsider_rejected() {
    // An outsider with a self-generated credential (never issued by a
    // kiosk) cannot get a ballot counted: the issuance signature check
    // rejects it at admission, so it never reaches the mix.
    let mut rng = HmacDrbg::from_u64(103);
    let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
    let (_, alice) = election
        .register_and_activate(VoterId(1), 0, &mut rng)
        .unwrap();
    let mut voting = election.open_voting();
    voting.cast(&alice.credentials[0], 0, &mut rng).unwrap();

    // The outsider clones Alice's credential struct but swaps the key.
    let mut forged = alice.credentials[0].clone();
    forged.key = votegral::crypto::schnorr::SigningKey::generate(&mut rng);
    voting
        .cast(&forged, 1, &mut rng)
        .expect("ledger admits syntactically");

    let tallying = voting.close();
    let transcript = tallying.tally(&mut rng).unwrap();
    assert_eq!(
        transcript.rejected, 1,
        "forged ballot rejected at admission"
    );
    assert_eq!(transcript.result.counts, vec![1, 0]);
    tallying.verify(&transcript).unwrap();
}

#[test]
fn vote_out_of_range_rejected_at_cast() {
    let mut rng = HmacDrbg::from_u64(104);
    let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
    let (_, vsd) = election
        .register_and_activate(VoterId(1), 0, &mut rng)
        .unwrap();
    let mut voting = election.open_voting();
    assert_eq!(
        voting.cast(&vsd.credentials[0], 5, &mut rng),
        Err(VotegralError::VoteOutOfRange)
    );
}

#[test]
fn every_tamper_point_is_caught() {
    // Mutate each major transcript section and confirm the verifier
    // pinpoints a failure (universal verifiability end to end).
    let mut rng = HmacDrbg::from_u64(105);
    let mut election = ElectionBuilder::new().voters(3).options(2).build(&mut rng);
    let mut devices = Vec::new();
    for v in 1..=3u64 {
        let (_, vsd) = election
            .register_and_activate(VoterId(v), 0, &mut rng)
            .unwrap();
        devices.push(vsd);
    }
    let mut voting = election.open_voting();
    for (i, vsd) in devices.iter().enumerate() {
        voting
            .cast(&vsd.credentials[0], ((i + 1) % 2) as u32, &mut rng)
            .unwrap();
    }
    let tallying = voting.close();
    let clean = tallying.tally(&mut rng).unwrap();
    tallying.verify(&clean).expect("clean transcript verifies");

    // (1) Claimed counts.
    let mut t = tallying.tally(&mut rng).unwrap();
    t.result.counts.swap(0, 1);
    assert!(tallying.verify(&t).is_err(), "count tampering");

    // (2) Dropped accepted ballot.
    let mut t = tallying.tally(&mut rng).unwrap();
    t.accepted.pop();
    assert!(tallying.verify(&t).is_err(), "ballot suppression");

    // (3) Mixed-output substitution.
    let mut t = tallying.tally(&mut rng).unwrap();
    let last = t.ballot_mix.stages.len() - 1;
    t.ballot_mix.stages[last].outputs.swap(0, 1);
    assert!(tallying.verify(&t).is_err(), "mix tampering");

    // (4) Tagging-round substitution.
    let mut t = tallying.tally(&mut rng).unwrap();
    t.reg_tagging[0].outputs.swap(0, 1);
    assert!(tallying.verify(&t).is_err(), "tagging tampering");

    // (5) Forged opening plaintext.
    let mut t = tallying.tally(&mut rng).unwrap();
    t.key_opening.plaintexts[0] = votegral::crypto::EdwardsPoint::basepoint();
    assert!(tallying.verify(&t).is_err(), "opening tampering");

    // (6) Matching manipulation.
    let mut t = tallying.tally(&mut rng).unwrap();
    t.matched_indices.pop();
    assert!(tallying.verify(&t).is_err(), "match suppression");
}

#[test]
fn multi_election_credential_reuse() {
    // §3.1: credentials are reusable across successive elections — run two
    // rounds over the same registration via `reopen_voting`, with
    // different votes.
    let mut rng = HmacDrbg::from_u64(106);
    let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
    let (_, alice) = election
        .register_and_activate(VoterId(1), 1, &mut rng)
        .unwrap();
    let (_, bob) = election
        .register_and_activate(VoterId(2), 0, &mut rng)
        .unwrap();

    // Election 1.
    let mut voting = election.open_voting();
    voting.cast(&alice.credentials[0], 0, &mut rng).unwrap();
    voting.cast(&bob.credentials[0], 1, &mut rng).unwrap();
    let tallying = voting.close();
    let t1 = tallying.tally(&mut rng).unwrap();
    assert_eq!(t1.result.counts, vec![1, 1]);
    tallying.verify(&t1).unwrap();

    // Election 2 (same credentials, new ballots; in this model the ballot
    // ledger accumulates, so the tally sees the latest ballots per
    // credential — the "revote" across elections).
    let mut voting = tallying.reopen_voting();
    voting.cast(&alice.credentials[0], 1, &mut rng).unwrap();
    voting.cast(&bob.credentials[0], 1, &mut rng).unwrap();
    let tallying = voting.close();
    let t2 = tallying.tally(&mut rng).unwrap();
    assert_eq!(t2.result.counts, vec![0, 2]);
    tallying.verify(&t2).unwrap();
}
