//! Workspace-level property-based tests: protocol invariants under random
//! configurations, decoder totality on adversarial bytes, and determinism.

use proptest::prelude::*;
use votegral::crypto::{CompressedPoint, HmacDrbg, Scalar};
use votegral::ledger::VoterId;
use votegral::trip::TripConfig;
use votegral::votegral::{Ballot, Election};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the population shape, every real vote is counted exactly
    /// once, every fake ballot is discarded, and the transcript verifies.
    #[test]
    fn election_correct_under_random_population(
        seed in any::<u64>(),
        n_voters in 1u64..4,
        n_options in 2u32..4,
        fake_counts in proptest::collection::vec(0usize..3, 3),
        votes in proptest::collection::vec(0u32..4, 3),
    ) {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = Election::new(TripConfig::with_voters(n_voters), n_options, &mut rng);
        let mut expected = vec![0u64; n_options as usize];
        let mut fake_ballots = 0usize;
        for v in 1..=n_voters {
            let n_fakes = fake_counts[(v - 1) as usize];
            let (_, vsd) = election
                .register_and_activate(VoterId(v), n_fakes, &mut rng)
                .expect("registration");
            let vote = votes[(v - 1) as usize] % n_options;
            expected[vote as usize] += 1;
            election.cast(&vsd.credentials[0], vote, &mut rng).expect("real cast");
            for fake in &vsd.credentials[1..] {
                election.cast(fake, (vote + 1) % n_options, &mut rng).expect("fake cast");
                fake_ballots += 1;
            }
        }
        let transcript = election.tally(&mut rng).expect("tally");
        prop_assert_eq!(&transcript.result.counts, &expected);
        prop_assert_eq!(transcript.result.counted as u64, n_voters);
        // Unmatched = fake ballots (+ dummies when fewer than 2 pairs).
        prop_assert!(transcript.result.unmatched >= fake_ballots);
        let verified = election.verify(&transcript).expect("verifies");
        prop_assert_eq!(verified, transcript.result);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ballot decoder is total: arbitrary bytes never panic, and
    /// anything it accepts re-encodes canonically.
    #[test]
    fn ballot_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(ballot) = Ballot::from_bytes(&bytes) {
            // Canonical re-encoding round-trips.
            let re = Ballot::from_bytes(&ballot.to_bytes()).expect("canonical");
            prop_assert_eq!(re, ballot);
        }
    }

    /// Point decompression is total and involutive on its accepted set.
    #[test]
    fn decompression_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(p) = CompressedPoint(bytes).decompress() {
            prop_assert!(p.is_on_curve());
            // Canonical encodings round-trip exactly.
            prop_assert_eq!(p.compress().decompress(), Some(p));
        }
    }

    /// Scalar decoding accepts exactly the canonical range.
    #[test]
    fn scalar_canonical_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(s) = Scalar::from_canonical_bytes(&bytes) {
            prop_assert_eq!(s.to_bytes(), bytes);
        }
    }
}

/// The whole pipeline is deterministic from its seed: two elections run
/// with the same seed produce byte-identical ledger heads and results.
#[test]
fn deterministic_from_seed() {
    let run = |seed: u64| {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = Election::new(TripConfig::with_voters(2), 2, &mut rng);
        for v in 1..=2u64 {
            let (_, vsd) = election
                .register_and_activate(VoterId(v), 1, &mut rng)
                .unwrap();
            election
                .cast(&vsd.credentials[0], (v % 2) as u32, &mut rng)
                .unwrap();
        }
        let transcript = election.tally(&mut rng).unwrap();
        (
            election.trip.ledger.registration.tree_head().root,
            election.trip.ledger.ballots.tree_head().root,
            transcript.result,
        )
    };
    let a = run(777);
    let b = run(777);
    assert_eq!(a.0, b.0, "registration heads identical");
    assert_eq!(a.1, b.1, "ballot heads identical");
    assert_eq!(a.2, b.2, "results identical");
    let c = run(778);
    assert_ne!(a.0, c.0, "different seeds diverge");
}
