//! Workspace-level property-based tests: protocol invariants under random
//! configurations, decoder totality on adversarial bytes, determinism,
//! and backend equivalence.

use proptest::prelude::*;
use votegral::crypto::{CompressedPoint, HmacDrbg, Scalar};
use votegral::ledger::{LedgerBackend, VoterId};
use votegral::trip::vsd::ActivatedCredential;
use votegral::votegral::{Ballot, ElectionBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the population shape, every real vote is counted exactly
    /// once, every fake ballot is discarded, and the transcript verifies.
    #[test]
    fn election_correct_under_random_population(
        seed in any::<u64>(),
        n_voters in 1u64..4,
        n_options in 2u32..4,
        fake_counts in proptest::collection::vec(0usize..3, 3),
        votes in proptest::collection::vec(0u32..4, 3),
    ) {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = ElectionBuilder::new()
            .voters(n_voters)
            .options(n_options)
            .build(&mut rng);
        let mut devices = Vec::new();
        for v in 1..=n_voters {
            let n_fakes = fake_counts[(v - 1) as usize];
            let (_, vsd) = election
                .register_and_activate(VoterId(v), n_fakes, &mut rng)
                .expect("registration");
            devices.push(vsd);
        }
        let mut voting = election.open_voting();
        let mut expected = vec![0u64; n_options as usize];
        let mut fake_ballots = 0usize;
        for (i, vsd) in devices.iter().enumerate() {
            let vote = votes[i] % n_options;
            expected[vote as usize] += 1;
            voting.cast(&vsd.credentials[0], vote, &mut rng).expect("real cast");
            for fake in &vsd.credentials[1..] {
                voting.cast(fake, (vote + 1) % n_options, &mut rng).expect("fake cast");
                fake_ballots += 1;
            }
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).expect("tally");
        prop_assert_eq!(&transcript.result.counts, &expected);
        prop_assert_eq!(transcript.result.counted as u64, n_voters);
        // Unmatched = fake ballots (+ dummies when fewer than 2 pairs).
        prop_assert!(transcript.result.unmatched >= fake_ballots);
        let verified = tallying.verify(&transcript).expect("verifies");
        prop_assert_eq!(verified, transcript.result);
    }

    /// The sharded and in-memory backends are interchangeable: the same
    /// seeded election produces identical counts and transcript verdicts
    /// on both, and `cast_batch` on either matches sequential `cast`.
    #[test]
    fn backends_and_batching_equivalent(
        seed in any::<u64>(),
        n_voters in 1u64..4,
        shards in 1usize..6,
    ) {
        let run = |backend: LedgerBackend, batch: bool| {
            let mut rng = HmacDrbg::from_u64(seed);
            let mut election = ElectionBuilder::new()
                .voters(n_voters)
                .options(2)
                .backend(backend)
                .threads(2)
                .build(&mut rng);
            let voters: Vec<VoterId> = (1..=n_voters).map(VoterId).collect();
            let sessions = election.register_batch(&voters, &mut rng).expect("registers");
            let mut voting = election.open_voting();
            let pairs: Vec<(&ActivatedCredential, u32)> = sessions
                .iter()
                .enumerate()
                .map(|(i, (_, vsd))| (&vsd.credentials[0], (i % 2) as u32))
                .collect();
            if batch {
                voting.cast_batch(&pairs, &mut rng).expect("batch cast");
            } else {
                for (cred, vote) in &pairs {
                    voting.cast(cred, *vote, &mut rng).expect("cast");
                }
            }
            let tallying = voting.close();
            let ballot_head = tallying.ledger().ballots.tree_head().root;
            let transcript = tallying.tally(&mut rng).expect("tally");
            tallying.verify(&transcript).expect("verifies");
            (ballot_head, transcript.result)
        };
        let (head_mem_seq, result_mem_seq) = run(LedgerBackend::InMemory, false);
        let (head_mem_batch, result_mem_batch) = run(LedgerBackend::InMemory, true);
        let (head_sh_batch, result_sh_batch) = run(LedgerBackend::sharded(shards), true);
        // cast_batch ≡ sequential cast: bit-identical ledger heads.
        prop_assert_eq!(head_mem_seq, head_mem_batch);
        prop_assert_eq!(&result_mem_seq, &result_mem_batch);
        // Backends commit differently but count identically.
        prop_assert_eq!(&result_mem_seq.counts, &result_sh_batch.counts);
        prop_assert_eq!(result_mem_seq.counted, result_sh_batch.counted);
        prop_assert_eq!(result_mem_seq.unmatched, result_sh_batch.unmatched);
        let _ = head_sh_batch;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ballot decoder is total: arbitrary bytes never panic, and
    /// anything it accepts re-encodes canonically.
    #[test]
    fn ballot_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(ballot) = Ballot::from_bytes(&bytes) {
            // Canonical re-encoding round-trips.
            let re = Ballot::from_bytes(&ballot.to_bytes()).expect("canonical");
            prop_assert_eq!(re, ballot);
        }
    }

    /// Point decompression is total and involutive on its accepted set.
    #[test]
    fn decompression_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(p) = CompressedPoint(bytes).decompress() {
            prop_assert!(p.is_on_curve());
            // Canonical encodings round-trip exactly.
            prop_assert_eq!(p.compress().decompress(), Some(p));
        }
    }

    /// Scalar decoding accepts exactly the canonical range.
    #[test]
    fn scalar_canonical_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(s) = Scalar::from_canonical_bytes(&bytes) {
            prop_assert_eq!(s.to_bytes(), bytes);
        }
    }
}

/// The whole pipeline is deterministic from its seed: two elections run
/// with the same seed produce byte-identical ledger heads and results.
#[test]
fn deterministic_from_seed() {
    let run = |seed: u64| {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
        let mut devices = Vec::new();
        for v in 1..=2u64 {
            let (_, vsd) = election
                .register_and_activate(VoterId(v), 1, &mut rng)
                .unwrap();
            devices.push(vsd);
        }
        let mut voting = election.open_voting();
        for (v, vsd) in devices.iter().enumerate() {
            voting
                .cast(&vsd.credentials[0], ((v + 1) % 2) as u32, &mut rng)
                .unwrap();
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).unwrap();
        (
            tallying.ledger().registration.tree_head().root,
            tallying.ledger().ballots.tree_head().root,
            transcript.result,
        )
    };
    let a = run(777);
    let b = run(777);
    assert_eq!(a.0, b.0, "registration heads identical");
    assert_eq!(a.1, b.1, "ballot heads identical");
    assert_eq!(a.2, b.2, "results identical");
    let c = run(778);
    assert_ne!(a.0, c.0, "different seeds diverge");
}
