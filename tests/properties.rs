//! Workspace-level property-based tests: protocol invariants under random
//! configurations, decoder totality on adversarial bytes, determinism,
//! and backend equivalence.

use std::path::PathBuf;

use proptest::prelude::*;
use votegral::crypto::schnorr::SigningKey;
use votegral::crypto::{CompressedPoint, HmacDrbg, Scalar};
use votegral::ledger::{BallotRecord, LedgerBackend, TamperEvidentLog, VoterId};
use votegral::shuffle::VerifyMode;
use votegral::trip::vsd::ActivatedCredential;
use votegral::votegral::{Ballot, ElectionBuilder};

/// A fresh scratch directory for durable-backend cases.
fn wal_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vg-props-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Shared honest mix-cascade fixtures for the batch-verification soak:
/// proving is the expensive part, so each `(n, mixers)` combination is
/// mixed once and every soak case clones and tampers it.
mod mix_fixtures {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    use votegral::crypto::drbg::Rng;
    use votegral::crypto::elgamal::{encrypt_point, Ciphertext, ElGamalKeyPair};
    use votegral::crypto::{EdwardsPoint, HmacDrbg, Scalar};
    use votegral::shuffle::{MixCascade, MixTranscript, PairMixTranscript};

    pub struct Fixture {
        pub pk: EdwardsPoint,
        pub cascade: MixCascade,
        pub single: MixTranscript,
        pub pair: PairMixTranscript,
    }

    type Cache = Mutex<HashMap<(usize, usize), Arc<Fixture>>>;

    pub fn get(n: usize, mixers: usize) -> Arc<Fixture> {
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().unwrap();
        map.entry((n, mixers))
            .or_insert_with(|| {
                let mut rng = HmacDrbg::from_u64((n * 101 + mixers) as u64);
                let kp = ElGamalKeyPair::generate(&mut rng);
                let inputs: Vec<Ciphertext> = (1..=n as u64)
                    .map(|i| {
                        let m = EdwardsPoint::mul_base(&Scalar::from_u64(i));
                        encrypt_point(&kp.pk, &m, &mut rng).0
                    })
                    .collect();
                let pair_inputs: Vec<(Ciphertext, Ciphertext)> = (1..=n as u64)
                    .map(|i| {
                        let a = EdwardsPoint::mul_base(&Scalar::from_u64(i));
                        let b = EdwardsPoint::mul_base(&Scalar::from_u64(1000 + i));
                        (
                            encrypt_point(&kp.pk, &a, &mut rng).0,
                            encrypt_point(&kp.pk, &b, &mut rng).0,
                        )
                    })
                    .collect();
                let cascade = MixCascade::new(n, mixers);
                let single = cascade.mix(&kp.pk, &inputs, &mut rng);
                let pair = cascade.mix_pairs(&kp.pk, &pair_inputs, &mut rng);
                Arc::new(Fixture {
                    pk: kp.pk,
                    cascade,
                    single,
                    pair,
                })
            })
            .clone()
    }

    fn bump_point(p: &mut EdwardsPoint) {
        *p += EdwardsPoint::basepoint();
    }

    fn bump_ct(c: &mut Ciphertext, second: bool) {
        if second {
            bump_point(&mut c.c2);
        } else {
            bump_point(&mut c.c1);
        }
    }

    /// Tampers one uniformly chosen field of one uniformly chosen stage
    /// proof (or stage output) of a single cascade.
    pub fn tamper_single(t: &mut MixTranscript, rng: &mut dyn Rng) {
        let k = rng.below(t.stages.len() as u64) as usize;
        let stage = &mut t.stages[k];
        let n = stage.outputs.len();
        let j = rng.below(n as u64) as usize;
        let p = &mut stage.proof;
        match rng.below(17) {
            0 => bump_ct(&mut stage.outputs[j], false),
            1 => bump_ct(&mut stage.outputs[j], true),
            2 => bump_point(&mut p.c_a),
            3 => bump_point(&mut p.c_b),
            4 => bump_point(&mut p.svp.c_d),
            5 => bump_point(&mut p.svp.c_delta),
            6 => bump_point(&mut p.svp.c_big_delta),
            7 => p.svp.a_tilde[j] += Scalar::ONE,
            8 => p.svp.b_tilde[j] += Scalar::ONE,
            9 => p.svp.r_tilde += Scalar::ONE,
            10 => p.svp.s_tilde += Scalar::ONE,
            11 => bump_point(&mut p.mexp.c_d),
            12 => bump_point(&mut p.mexp.e_d.c1),
            13 => bump_point(&mut p.mexp.e_d.c2),
            14 => p.mexp.b_tilde[j] += Scalar::ONE,
            15 => p.mexp.s_tilde += Scalar::ONE,
            _ => p.mexp.rho_tilde += Scalar::ONE,
        }
    }

    /// Tampers one uniformly chosen field of one pair-cascade stage.
    pub fn tamper_pair(t: &mut PairMixTranscript, rng: &mut dyn Rng) {
        let k = rng.below(t.stages.len() as u64) as usize;
        let stage = &mut t.stages[k];
        let n = stage.outputs.len();
        let j = rng.below(n as u64) as usize;
        let p = &mut stage.proof;
        match rng.below(23) {
            0 => bump_ct(&mut stage.outputs[j].0, false),
            1 => bump_ct(&mut stage.outputs[j].0, true),
            2 => bump_ct(&mut stage.outputs[j].1, false),
            3 => bump_ct(&mut stage.outputs[j].1, true),
            4 => bump_point(&mut p.c_a),
            5 => bump_point(&mut p.c_b),
            6 => bump_point(&mut p.svp.c_d),
            7 => bump_point(&mut p.svp.c_delta),
            8 => bump_point(&mut p.svp.c_big_delta),
            9 => p.svp.a_tilde[j] += Scalar::ONE,
            10 => p.svp.b_tilde[j] += Scalar::ONE,
            11 => p.svp.r_tilde += Scalar::ONE,
            12 => p.svp.s_tilde += Scalar::ONE,
            13 => bump_point(&mut p.mexp_a.c_d),
            14 => bump_point(&mut p.mexp_a.e_d.c1),
            15 => bump_point(&mut p.mexp_a.e_d.c2),
            16 => p.mexp_a.b_tilde[j] += Scalar::ONE,
            17 => p.mexp_a.s_tilde += Scalar::ONE,
            18 => p.mexp_a.rho_tilde += Scalar::ONE,
            19 => bump_point(&mut p.mexp_b.c_d),
            20 => bump_point(&mut p.mexp_b.e_d.c2),
            21 => p.mexp_b.b_tilde[j] += Scalar::ONE,
            _ => p.mexp_b.rho_tilde += Scalar::ONE,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the population shape, every real vote is counted exactly
    /// once, every fake ballot is discarded, and the transcript verifies.
    #[test]
    fn election_correct_under_random_population(
        seed in any::<u64>(),
        n_voters in 1u64..4,
        n_options in 2u32..4,
        fake_counts in proptest::collection::vec(0usize..3, 3),
        votes in proptest::collection::vec(0u32..4, 3),
    ) {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = ElectionBuilder::new()
            .voters(n_voters)
            .options(n_options)
            .build(&mut rng);
        let mut devices = Vec::new();
        for v in 1..=n_voters {
            let n_fakes = fake_counts[(v - 1) as usize];
            let (_, vsd) = election
                .register_and_activate(VoterId(v), n_fakes, &mut rng)
                .expect("registration");
            devices.push(vsd);
        }
        let mut voting = election.open_voting();
        let mut expected = vec![0u64; n_options as usize];
        let mut fake_ballots = 0usize;
        for (i, vsd) in devices.iter().enumerate() {
            let vote = votes[i] % n_options;
            expected[vote as usize] += 1;
            voting.cast(&vsd.credentials[0], vote, &mut rng).expect("real cast");
            for fake in &vsd.credentials[1..] {
                voting.cast(fake, (vote + 1) % n_options, &mut rng).expect("fake cast");
                fake_ballots += 1;
            }
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).expect("tally");
        prop_assert_eq!(&transcript.result.counts, &expected);
        prop_assert_eq!(transcript.result.counted as u64, n_voters);
        // Unmatched = fake ballots (+ dummies when fewer than 2 pairs).
        prop_assert!(transcript.result.unmatched >= fake_ballots);
        let verified = tallying.verify(&transcript).expect("verifies");
        prop_assert_eq!(verified, transcript.result);
    }

    /// The sharded, in-memory and durable backends are interchangeable:
    /// the same seeded election produces identical counts and transcript
    /// verdicts on all three, `cast_batch` matches sequential `cast`,
    /// and — because the WAL backend hashes the same flat Merkle tree —
    /// the durable ledger heads are bit-identical to in-memory, not
    /// merely equivalent.
    #[test]
    fn backends_and_batching_equivalent(
        seed in any::<u64>(),
        n_voters in 1u64..4,
        shards in 1usize..6,
    ) {
        let run = |backend: LedgerBackend, batch: bool| {
            let mut rng = HmacDrbg::from_u64(seed);
            let mut election = ElectionBuilder::new()
                .voters(n_voters)
                .options(2)
                .backend(backend)
                .threads(2)
                .build(&mut rng);
            let voters: Vec<VoterId> = (1..=n_voters).map(VoterId).collect();
            let sessions = election.register_batch(&voters, &mut rng).expect("registers");
            let mut voting = election.open_voting();
            let pairs: Vec<(&ActivatedCredential, u32)> = sessions
                .iter()
                .enumerate()
                .map(|(i, (_, vsd))| (&vsd.credentials[0], (i % 2) as u32))
                .collect();
            if batch {
                voting.cast_batch(&pairs, &mut rng).expect("batch cast");
            } else {
                for (cred, vote) in &pairs {
                    voting.cast(cred, *vote, &mut rng).expect("cast");
                }
            }
            let tallying = voting.close();
            let ballot_head = tallying.ledger().ballots.tree_head().root;
            let transcript = tallying.tally(&mut rng).expect("tally");
            tallying.verify(&transcript).expect("verifies");
            (ballot_head, transcript.result)
        };
        let (head_mem_seq, result_mem_seq) = run(LedgerBackend::InMemory, false);
        let (head_mem_batch, result_mem_batch) = run(LedgerBackend::InMemory, true);
        let (head_sh_batch, result_sh_batch) = run(LedgerBackend::sharded(shards), true);
        let dir = wal_dir("equiv");
        let (head_dur_batch, result_dur_batch) = run(
            LedgerBackend::Durable { dir: dir.clone(), fsync: false },
            true,
        );
        let _ = std::fs::remove_dir_all(&dir);
        // cast_batch ≡ sequential cast: bit-identical ledger heads.
        prop_assert_eq!(head_mem_seq, head_mem_batch);
        prop_assert_eq!(&result_mem_seq, &result_mem_batch);
        // The WAL commits the same flat tree: bit-identical heads too.
        prop_assert_eq!(head_mem_seq, head_dur_batch);
        prop_assert_eq!(&result_mem_seq, &result_dur_batch);
        // The sharded backend commits differently but counts identically.
        prop_assert_eq!(&result_mem_seq.counts, &result_sh_batch.counts);
        prop_assert_eq!(result_mem_seq.counted, result_sh_batch.counted);
        prop_assert_eq!(result_mem_seq.unmatched, result_sh_batch.unmatched);
        let _ = head_sh_batch;
    }

    /// Durable-log edge cases at the workspace surface, tempdir-backed:
    /// batch and sequential appends land on bit-identical signed heads
    /// (matching the in-memory reference), an empty `append_batch` is an
    /// indexless no-op even through the persist barrier, inclusion at
    /// the exact head-boundary index verifies (and one past it does
    /// not), and the whole state survives a reopen.
    #[test]
    fn durable_log_edge_cases(
        seed in any::<u64>(),
        n in 1usize..24,
    ) {
        let records = |count: usize| -> Vec<BallotRecord> {
            let mut rng = HmacDrbg::from_u64(seed);
            let key = SigningKey::generate(&mut rng);
            (0..count)
                .map(|i| {
                    let mut payload = vec![0u8; 24 + (i % 7)];
                    votegral::crypto::drbg::Rng::fill_bytes(&mut rng, &mut payload);
                    let signature = key.sign(&BallotRecord::message(&payload));
                    BallotRecord {
                        credential_pk: CompressedPoint(votegral::crypto::drbg::Rng::bytes32(&mut rng)),
                        payload,
                        signature,
                    }
                })
                .collect()
        };
        let operator = || SigningKey::generate(&mut HmacDrbg::from_u64(seed ^ 0x0D));

        let mut reference = TamperEvidentLog::with_backend(operator(), LedgerBackend::InMemory);
        for r in records(n) {
            reference.append(r);
        }

        let seq_dir = wal_dir("edge-seq");
        let batch_dir = wal_dir("edge-batch");
        let mut seq = TamperEvidentLog::with_backend(
            operator(),
            LedgerBackend::Durable { dir: seq_dir.clone(), fsync: false },
        );
        for r in records(n) {
            seq.append(r);
        }
        let mut batch = TamperEvidentLog::with_backend(
            operator(),
            LedgerBackend::Durable { dir: batch_dir.clone(), fsync: false },
        );
        let range = batch.append_batch(records(n), 2);
        prop_assert_eq!(range, 0..n);
        prop_assert_eq!(seq.tree_head().root, batch.tree_head().root);
        prop_assert_eq!(reference.tree_head().root, batch.tree_head().root);

        // Empty batch at the head boundary: no indices, no new head.
        batch.persist().expect("persist");
        let heads_before = batch.durability_stats().heads_persisted;
        let range = batch.append_batch(Vec::new(), 4);
        prop_assert_eq!(range, n..n);
        batch.persist().expect("persist");
        prop_assert_eq!(batch.durability_stats().heads_persisted, heads_before);

        // Inclusion at the exact head boundary index, and one past it.
        let head = batch.tree_head();
        let last = records(n).pop().expect("n >= 1");
        let proof = batch.prove_inclusion(n - 1);
        prop_assert!(TamperEvidentLog::verify_inclusion(&head, &last, n - 1, &proof));
        prop_assert!(!TamperEvidentLog::verify_inclusion(&head, &last, n, &proof));

        // Reopen: same records, same root, same boundary behaviour.
        drop(batch);
        let reopened = TamperEvidentLog::<BallotRecord>::with_backend(
            operator(),
            LedgerBackend::Durable { dir: batch_dir.clone(), fsync: false },
        );
        prop_assert_eq!(reopened.len(), n);
        prop_assert_eq!(reopened.tree_head().root, head.root);
        head.verify(&reopened.operator_key()).expect("head verifies");

        let _ = std::fs::remove_dir_all(&seq_dir);
        let _ = std::fs::remove_dir_all(&batch_dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ballot decoder is total: arbitrary bytes never panic, and
    /// anything it accepts re-encodes canonically.
    #[test]
    fn ballot_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(ballot) = Ballot::from_bytes(&bytes) {
            // Canonical re-encoding round-trips.
            let re = Ballot::from_bytes(&ballot.to_bytes()).expect("canonical");
            prop_assert_eq!(re, ballot);
        }
    }

    /// Point decompression is total and involutive on its accepted set.
    #[test]
    fn decompression_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(p) = CompressedPoint(bytes).decompress() {
            prop_assert!(p.is_on_curve());
            // Canonical encodings round-trip exactly.
            prop_assert_eq!(p.compress().decompress(), Some(p));
        }
    }

    /// Scalar decoding accepts exactly the canonical range.
    #[test]
    fn scalar_canonical_total(bytes in proptest::array::uniform32(any::<u8>())) {
        if let Some(s) = Scalar::from_canonical_bytes(&bytes) {
            prop_assert_eq!(s.to_bytes(), bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Batched cascade verification accepts **iff** per-stage sequential
    /// verification accepts: honest transcripts (random sizes, random
    /// mixer counts, single and pair cascades) pass both ways, and a soak
    /// of single-field tampers — one random field of one random stage's
    /// proof or outputs — is rejected by both; no tamper survives the
    /// random-linear-combination folding.
    #[test]
    fn batch_verification_equivalent_and_tamper_sound(
        n in 2usize..6,
        mixers in 1usize..5,
        use_pair in any::<bool>(),
        tamper_seed in any::<u64>(),
    ) {
        let fx = mix_fixtures::get(n, mixers);
        let mut rng = HmacDrbg::from_u64(tamper_seed);
        // A slice of cases re-checks honest acceptance under both modes;
        // the rest soak tampered-proof rejection.
        let check_honest = tamper_seed.is_multiple_of(8);
        if use_pair {
            if check_honest {
                prop_assert!(fx.cascade.verify_pairs(&fx.pk, &fx.pair).is_ok());
                prop_assert!(fx.cascade.verify_pairs_batch(&fx.pk, &fx.pair, 2).is_ok());
            } else {
                let mut bad = fx.pair.clone();
                mix_fixtures::tamper_pair(&mut bad, &mut rng);
                prop_assert!(fx.cascade.verify_pairs(&fx.pk, &bad).is_err());
                prop_assert!(fx.cascade.verify_pairs_batch(&fx.pk, &bad, 2).is_err());
            }
        } else if check_honest {
            prop_assert!(fx.cascade.verify(&fx.pk, &fx.single).is_ok());
            prop_assert!(fx.cascade.verify_batch(&fx.pk, &fx.single, 2).is_ok());
        } else {
            let mut bad = fx.single.clone();
            mix_fixtures::tamper_single(&mut bad, &mut rng);
            prop_assert!(fx.cascade.verify(&fx.pk, &bad).is_err());
            prop_assert!(fx.cascade.verify_batch(&fx.pk, &bad, 2).is_err());
        }
    }
}

/// Deterministic replay across the batch paths: `cast_batch` + batched
/// tally verification produces a bit-identical `TallyTranscript` (and
/// identical ledger heads) to sequential `cast` + sequential verification
/// under the same DRBG seed — batching changes performance, never bytes.
#[test]
fn batched_pipeline_replays_bit_identically() {
    use votegral::crypto::sha2::Sha256;

    let run = |batch: bool, mode: VerifyMode| {
        let mut rng = HmacDrbg::from_u64(4242);
        let mut election = ElectionBuilder::new().voters(3).options(3).build(&mut rng);
        let voters: Vec<VoterId> = (1..=3).map(VoterId).collect();
        let sessions = election
            .register_batch(&voters, &mut rng)
            .expect("registers");
        let mut voting = election.open_voting();
        let pairs: Vec<(&ActivatedCredential, u32)> = sessions
            .iter()
            .enumerate()
            .map(|(i, (_, vsd))| (&vsd.credentials[0], (i % 3) as u32))
            .collect();
        if batch {
            voting.cast_batch(&pairs, &mut rng).expect("batch cast");
        } else {
            for (cred, vote) in &pairs {
                voting.cast(cred, *vote, &mut rng).expect("cast");
            }
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).expect("tally");
        let verified = tallying
            .verify_with_mode(&transcript, mode)
            .expect("verifies");
        assert_eq!(verified, transcript.result);
        // `TallyTranscript`'s Debug rendering is canonical (compressed
        // points, canonical scalars), so equal digests ⇔ bit-identical
        // transcripts.
        let mut h = Sha256::new();
        h.update(format!("{transcript:?}").as_bytes());
        (
            tallying.ledger().ballots.tree_head().root,
            h.finalize(),
            transcript.result,
        )
    };

    let sequential = run(false, VerifyMode::Sequential);
    let batched = run(true, VerifyMode::Batched);
    assert_eq!(sequential.0, batched.0, "identical ballot ledger heads");
    assert_eq!(sequential.1, batched.1, "bit-identical tally transcripts");
    assert_eq!(sequential.2, batched.2, "identical results");
}

/// The whole pipeline is deterministic from its seed: two elections run
/// with the same seed produce byte-identical ledger heads and results.
#[test]
fn deterministic_from_seed() {
    let run = |seed: u64| {
        let mut rng = HmacDrbg::from_u64(seed);
        let mut election = ElectionBuilder::new().voters(2).options(2).build(&mut rng);
        let mut devices = Vec::new();
        for v in 1..=2u64 {
            let (_, vsd) = election
                .register_and_activate(VoterId(v), 1, &mut rng)
                .unwrap();
            devices.push(vsd);
        }
        let mut voting = election.open_voting();
        for (v, vsd) in devices.iter().enumerate() {
            voting
                .cast(&vsd.credentials[0], ((v + 1) % 2) as u32, &mut rng)
                .unwrap();
        }
        let tallying = voting.close();
        let transcript = tallying.tally(&mut rng).unwrap();
        (
            tallying.ledger().registration.tree_head().root,
            tallying.ledger().ballots.tree_head().root,
            transcript.result,
        )
    };
    let a = run(777);
    let b = run(777);
    assert_eq!(a.0, b.0, "registration heads identical");
    assert_eq!(a.1, b.1, "ballot heads identical");
    assert_eq!(a.2, b.2, "results identical");
    let c = run(778);
    assert_ne!(a.0, c.0, "different seeds diverge");
}
